//! On-sensor estimators: transmission energy (Eq. 13) and per-window
//! retransmission probability (Eq. 14).

use blam_energy_harvest::Ewma;
use blam_units::Joules;
use serde::{Deserialize, Serialize};

/// EWMA estimator of per-exchange transmission energy — Eq. (13):
/// `ê_tx[p] = β·E_tx[p−1] + (1−β)·ê_tx[p−1]`.
///
/// Transmission parameters can change under ADR or the network server,
/// so the node smooths the observed energy instead of trusting the last
/// exchange.
///
/// # Examples
///
/// ```
/// use blam::TxEnergyEstimator;
/// use blam_units::Joules;
///
/// let mut est = TxEnergyEstimator::new(0.5, Joules(0.04));
/// est.observe(Joules(0.08));
/// assert!((est.estimate().0 - 0.06).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TxEnergyEstimator {
    ewma: Ewma,
}

impl TxEnergyEstimator {
    /// Creates an estimator with EWMA weight β and an initial estimate
    /// (typically the nominal single-transmission energy of the node's
    /// radio configuration).
    ///
    /// # Panics
    ///
    /// Panics if `beta` is outside `[0, 1]` or `initial` is negative.
    #[must_use]
    pub fn new(beta: f64, initial: Joules) -> Self {
        assert!(initial.0 >= 0.0, "initial energy must be non-negative");
        TxEnergyEstimator {
            ewma: Ewma::new(beta, initial.0),
        }
    }

    /// Folds in the energy actually spent in the last exchange.
    pub fn observe(&mut self, actual: Joules) {
        self.ewma.update(actual.0.max(0.0));
    }

    /// The current per-exchange energy estimate `ê_tx`.
    #[must_use]
    pub fn estimate(&self) -> Joules {
        Joules(self.ewma.value())
    }
}

/// Per-forecast-window retransmission statistics — Eq. (14).
///
/// For each forecast window index `t` the node counts how often it
/// selected that window (`S_t`) and how many retransmissions each
/// exchange needed (`I_{r,t}`). The cumulative probability
/// `P(r | t) = Σ_{r' ≤ r} I_{r',t} / S_t` follows Eq. (14); the derived
/// [`expected_attempts`](RetxEstimator::expected_attempts) scales the
/// node's energy estimate per candidate window, steering it away from
/// chronically crowded windows.
///
/// # Examples
///
/// ```
/// use blam::RetxEstimator;
///
/// let mut est = RetxEstimator::new(10, 8);
/// est.record(2, 3); // window 2 needed 3 retransmissions
/// est.record(2, 1);
/// assert!((est.expected_attempts(2) - 3.0).abs() < 1e-12); // 1 + mean(3,1)
/// assert_eq!(est.expected_attempts(5), 1.0); // no data: optimistic
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetxEstimator {
    /// `I[t][r]`: times `r` retransmissions were observed in window `t`.
    observations: Vec<Vec<u64>>,
    /// `S[t]`: times window `t` was selected.
    selections: Vec<u64>,
    max_retx: usize,
}

impl RetxEstimator {
    /// Creates an estimator for `windows` forecast windows and at most
    /// `max_retx` retransmissions per exchange (7 for LoRa's 8-transmission
    /// cap).
    ///
    /// # Panics
    ///
    /// Panics if `windows` is zero.
    #[must_use]
    pub fn new(windows: usize, max_retx: usize) -> Self {
        assert!(windows > 0, "need at least one forecast window");
        RetxEstimator {
            observations: vec![vec![0; max_retx + 1]; windows],
            selections: vec![0; windows],
            max_retx,
        }
    }

    /// Number of windows tracked.
    #[must_use]
    pub fn windows(&self) -> usize {
        self.selections.len()
    }

    /// Grows the tracked window count if a longer period appears
    /// (periods are per-node constants in the paper, but the API stays
    /// safe if reconfigured).
    pub fn ensure_windows(&mut self, windows: usize) {
        while self.selections.len() < windows {
            self.observations.push(vec![0; self.max_retx + 1]);
            self.selections.push(0);
        }
    }

    /// Records that an exchange in window `t` used `retx`
    /// retransmissions (clamped to the maximum).
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn record(&mut self, t: usize, retx: usize) {
        let r = retx.min(self.max_retx);
        self.observations[t][r] += 1;
        self.selections[t] += 1;
    }

    /// Eq. (14): the cumulative probability of needing at most `r`
    /// retransmissions in window `t`. Returns 1 for unobserved windows
    /// (vacuously no evidence of retransmissions).
    #[must_use]
    pub fn cumulative_probability(&self, r: usize, t: usize) -> f64 {
        let s = self.selections[t];
        if s == 0 {
            return 1.0;
        }
        let r = r.min(self.max_retx);
        let cum: u64 = self.observations[t][..=r].iter().sum();
        cum as f64 / s as f64
    }

    /// Expected transmissions (1 + mean retransmissions) for window
    /// `t`; 1.0 when the window has never been tried.
    #[must_use]
    pub fn expected_attempts(&self, t: usize) -> f64 {
        let s = self.selections[t];
        if s == 0 {
            return 1.0;
        }
        let total_retx: u64 = self.observations[t]
            .iter()
            .enumerate()
            .map(|(r, &count)| r as u64 * count)
            .sum();
        1.0 + total_retx as f64 / s as f64
    }

    /// Times window `t` has been selected (`S_t`).
    #[must_use]
    pub fn selections(&self, t: usize) -> u64 {
        self.selections[t]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_energy_tracks_ewma() {
        let mut e = TxEnergyEstimator::new(0.5, Joules(0.02));
        assert_eq!(e.estimate(), Joules(0.02));
        e.observe(Joules(0.06));
        assert!((e.estimate().0 - 0.04).abs() < 1e-12);
        e.observe(Joules(0.06));
        assert!((e.estimate().0 - 0.05).abs() < 1e-12);
    }

    #[test]
    fn tx_energy_negative_observation_clamped() {
        let mut e = TxEnergyEstimator::new(1.0, Joules(0.02));
        e.observe(Joules(-5.0));
        assert_eq!(e.estimate(), Joules(0.0));
    }

    #[test]
    fn retx_cumulative_probability_eq14() {
        let mut est = RetxEstimator::new(4, 8);
        // Window 1: observed retx counts 0, 0, 2, 5.
        for r in [0, 0, 2, 5] {
            est.record(1, r);
        }
        assert!((est.cumulative_probability(0, 1) - 0.5).abs() < 1e-12);
        assert!((est.cumulative_probability(1, 1) - 0.5).abs() < 1e-12);
        assert!((est.cumulative_probability(2, 1) - 0.75).abs() < 1e-12);
        assert!((est.cumulative_probability(8, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut est = RetxEstimator::new(2, 8);
        for r in [0, 1, 1, 3, 7, 8] {
            est.record(0, r);
        }
        let mut last = 0.0;
        for r in 0..=8 {
            let p = est.cumulative_probability(r, 0);
            assert!(p >= last);
            last = p;
        }
        assert!((last - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expected_attempts_default_and_mean() {
        let mut est = RetxEstimator::new(3, 8);
        assert_eq!(est.expected_attempts(0), 1.0);
        est.record(0, 4);
        est.record(0, 0);
        assert!((est.expected_attempts(0) - 3.0).abs() < 1e-12);
        assert_eq!(est.selections(0), 2);
    }

    #[test]
    fn retx_clamped_to_max() {
        let mut est = RetxEstimator::new(1, 3);
        est.record(0, 99);
        assert!((est.expected_attempts(0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn ensure_windows_grows() {
        let mut est = RetxEstimator::new(2, 8);
        est.ensure_windows(5);
        assert_eq!(est.windows(), 5);
        est.record(4, 1);
        assert_eq!(est.selections(4), 1);
        // Never shrinks.
        est.ensure_windows(1);
        assert_eq!(est.windows(), 5);
    }
}
