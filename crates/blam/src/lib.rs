//! **BLAM** — the Battery Lifespan-Aware MAC protocol for LPWAN.
//!
//! This crate implements the primary contribution of *"A Battery
//! Lifespan-Aware Protocol for LPWAN"* (ICDCS 2024): a local, online,
//! asynchronous MAC-layer policy that maximizes the minimum battery
//! lifespan of a LoRa network by
//!
//! 1. **delaying each uplink** into the forecast window of the current
//!    sampling period that best trades data utility against battery
//!    degradation impact (Algorithm 1, here
//!    [`select::select_window`]), and
//! 2. **capping the battery state of charge** at a threshold θ to limit
//!    calendar aging (enforced by the
//!    [`battery switch`](blam_battery::PowerSwitch)).
//!
//! Module map:
//!
//! * [`config`] — protocol parameters (forecast window, θ, w_b, β, …).
//! * [`utility`] — packet utility curves; Eq. (16) is
//!   [`Utility::Linear`].
//! * [`dif`] — the Degradation Impact Factor of Eq. (15).
//! * [`estimator`] — the EWMA transmission-energy estimator (Eq. 13)
//!   and the per-window retransmission-probability estimator (Eq. 14).
//! * [`select`] — Algorithm 1: on-sensor forecast-window selection.
//! * [`trace_compress`] — the 4-byte compressed SoC trace nodes
//!   piggyback onto uplinks.
//! * [`dissemination`] — the gateway-side degradation ledger computing
//!   and quantizing each node's normalized degradation `w_u`.
//! * [`protocol`] — [`BlamNode`], the node-side state machine gluing
//!   the pieces together for the simulator or a real MAC.
//! * [`clairvoyant`] — the centralized TDMA formulation of §III-A,
//!   solvable exactly on small instances, used as a reference optimum.
//!
//! # Examples
//!
//! Select a forecast window for a period with sun in the middle:
//!
//! ```
//! use blam::select::{select_window, SelectInput, SelectOutcome};
//! use blam::utility::Utility;
//! use blam_units::Joules;
//!
//! let green = [0.0, 0.0, 0.05, 0.05, 0.0].map(Joules);
//! let tx = [0.04; 5].map(Joules);
//! let input = SelectInput {
//!     battery_energy: Joules(0.01),         // too little for window 0
//!     normalized_degradation: 1.0,          // most degraded node
//!     degradation_weight: 1.0,
//!     green_energy: &green,
//!     tx_energy: &tx,
//!     max_tx_energy: Joules(0.08),
//!     utility: &Utility::Linear,
//! };
//! let SelectOutcome::Selected { window, .. } = select_window(&input) else {
//!     panic!("feasible window exists");
//! };
//! assert_eq!(window, 2); // waits for the sun
//! ```

// `forbid(unsafe_code)` comes from `[workspace.lints]` in the root
// manifest; only the doc requirement stays crate-local.
#![warn(missing_docs)]

pub mod clairvoyant;
pub mod config;
pub mod dif;
pub mod dissemination;
pub mod estimator;
pub mod protocol;
pub mod select;
pub mod trace_compress;
pub mod utility;

pub use config::BlamConfig;
pub use dif::degradation_impact_factor;
pub use dissemination::DegradationLedger;
pub use estimator::{RetxEstimator, TxEnergyEstimator};
pub use protocol::{BlamNode, PlannedTransmission};
pub use select::{select_window, SelectInput, SelectOutcome};
pub use trace_compress::{CompressedSocTrace, SocSample};
pub use utility::Utility;
