//! The Degradation Impact Factor — Eq. (15).

use blam_units::Joules;

/// The Degradation Impact Factor of transmitting in a forecast window:
///
/// ```text
/// DIF[t] = (max(ê_tx, E_g[t]) − E_g[t]) / E_max_tx
/// ```
///
/// * 0 when the window's green energy covers the estimated transmission
///   energy — the battery is untouched, no cycle-aging impact;
/// * up to 1 when the transmission must come entirely from the battery
///   at the worst-case cost.
///
/// The result is clamped to `[0, 1]` (the estimate can exceed the
/// nominal worst case when retransmissions inflate it).
///
/// # Examples
///
/// ```
/// use blam::degradation_impact_factor;
/// use blam_units::Joules;
///
/// let e_max = Joules(0.08);
/// // Sunny window: free transmission.
/// assert_eq!(degradation_impact_factor(Joules(0.04), Joules(0.1), e_max), 0.0);
/// // Dark window: half the worst case comes from the battery.
/// assert_eq!(degradation_impact_factor(Joules(0.04), Joules(0.0), e_max), 0.5);
/// ```
///
/// # Panics
///
/// Panics if `max_tx_energy` is not strictly positive.
#[must_use]
pub fn degradation_impact_factor(
    estimated_tx: Joules,
    green_energy: Joules,
    max_tx_energy: Joules,
) -> f64 {
    assert!(
        max_tx_energy.0 > 0.0,
        "E_max must be positive, got {max_tx_energy}"
    );
    let shortfall = (estimated_tx.max(green_energy) - green_energy).max(Joules::ZERO);
    (shortfall / max_tx_energy).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const E_MAX: Joules = Joules(0.1);

    #[test]
    fn zero_when_green_covers_tx() {
        assert_eq!(
            degradation_impact_factor(Joules(0.05), Joules(0.05), E_MAX),
            0.0
        );
        assert_eq!(
            degradation_impact_factor(Joules(0.05), Joules(0.5), E_MAX),
            0.0
        );
    }

    #[test]
    fn proportional_to_battery_shortfall() {
        let d = degradation_impact_factor(Joules(0.06), Joules(0.02), E_MAX);
        assert!((d - 0.4).abs() < 1e-12);
    }

    #[test]
    fn full_battery_transmission_at_worst_case_is_one() {
        assert_eq!(degradation_impact_factor(E_MAX, Joules::ZERO, E_MAX), 1.0);
    }

    #[test]
    fn clamped_to_one_when_estimate_exceeds_worst_case() {
        // Retransmission-inflated estimate above E_max still yields 1.
        assert_eq!(
            degradation_impact_factor(Joules(0.5), Joules::ZERO, E_MAX),
            1.0
        );
    }

    #[test]
    fn monotone_decreasing_in_green_energy() {
        let mut last = 2.0;
        for g in 0..10 {
            let d = degradation_impact_factor(Joules(0.08), Joules(f64::from(g) * 0.01), E_MAX);
            assert!(d <= last);
            last = d;
        }
    }

    #[test]
    #[should_panic(expected = "E_max must be positive")]
    fn zero_emax_panics() {
        let _ = degradation_impact_factor(Joules(0.1), Joules(0.1), Joules::ZERO);
    }
}
