//! Algorithm 1: on-sensor forecast-window selection.
//!
//! Each sampling period, the node evaluates the objective of Eq. (17)
//!
//! ```text
//! γ_t = (1 − μ[t]) + w_u · DIF[t] · w_b
//! ```
//!
//! for every forecast window `t`, sorts the windows by non-decreasing
//! `γ_t`, and picks the best one whose cumulative energy satisfies the
//! feasibility constraint of Eq. (20): the battery level plus the green
//! energy forecast up to and including window `t` must cover the
//! estimated transmission energy. If no window qualifies the packet is
//! dropped (the battery cannot sustain it) — the `Fail` branch of
//! Algorithm 1.
//!
//! Complexity: `O(|T| log |T|)` per period, as the paper states.

use blam_units::Joules;
use serde::{Deserialize, Serialize};

use crate::dif::degradation_impact_factor;
use crate::utility::Utility;

/// Inputs to one run of Algorithm 1.
#[derive(Debug, Clone, Copy)]
pub struct SelectInput<'a> {
    /// Current battery energy ψ.
    pub battery_energy: Joules,
    /// This node's normalized degradation `w_u ∈ [0, 1]` from the
    /// gateway.
    pub normalized_degradation: f64,
    /// The network-wide degradation importance `w_b ∈ [0, 1]`.
    pub degradation_weight: f64,
    /// Green-energy forecast per window, `Ê_g[t]`; its length defines
    /// `|T|`.
    pub green_energy: &'a [Joules],
    /// Estimated transmission energy per window `ê_tx[t]` (already
    /// scaled by the expected attempts for that window). Must have the
    /// same length as `green_energy`.
    pub tx_energy: &'a [Joules],
    /// Worst-case single-transmission energy `E_max` normalizing the
    /// DIF.
    pub max_tx_energy: Joules,
    /// The utility curve.
    pub utility: &'a Utility,
}

/// Result of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SelectOutcome {
    /// A feasible window was found.
    Selected {
        /// The chosen forecast-window index.
        window: usize,
        /// Its objective value γ.
        objective: f64,
    },
    /// No window can sustain the transmission; drop the packet.
    Fail,
}

impl SelectOutcome {
    /// The chosen window, if any.
    #[must_use]
    pub fn window(&self) -> Option<usize> {
        match *self {
            SelectOutcome::Selected { window, .. } => Some(window),
            SelectOutcome::Fail => None,
        }
    }
}

/// The per-window objective values γ_t of Eq. (17).
///
/// Exposed separately so experiments (Fig. 3) can inspect the whole
/// objective landscape, not just the winner.
#[must_use]
pub fn objectives(input: &SelectInput<'_>) -> Vec<f64> {
    let total = input.green_energy.len();
    (0..total)
        .map(|t| {
            let utility = input.utility.at(t, total);
            let dif = degradation_impact_factor(
                input.tx_energy[t],
                input.green_energy[t],
                input.max_tx_energy,
            );
            (1.0 - utility) + input.normalized_degradation * dif * input.degradation_weight
        })
        .collect()
}

/// Runs Algorithm 1.
///
/// # Panics
///
/// Panics if the forecast and energy-estimate slices differ in length,
/// are empty, or if the weights are outside `[0, 1]`.
#[must_use]
pub fn select_window(input: &SelectInput<'_>) -> SelectOutcome {
    assert_eq!(
        input.green_energy.len(),
        input.tx_energy.len(),
        "green-energy and tx-energy vectors must align"
    );
    assert!(
        !input.green_energy.is_empty(),
        "need at least one forecast window"
    );
    assert!(
        (0.0..=1.0).contains(&input.normalized_degradation),
        "w_u must be in [0,1], got {}",
        input.normalized_degradation
    );
    assert!(
        (0.0..=1.0).contains(&input.degradation_weight),
        "w_b must be in [0,1], got {}",
        input.degradation_weight
    );

    let gammas = objectives(input);

    // Cumulative available energy through window t (Algorithm 1 line 9):
    // battery now plus everything the panel is expected to deliver up to
    // and including t.
    let mut cumulative = Vec::with_capacity(gammas.len());
    let mut acc = input.battery_energy;
    for &g in input.green_energy {
        acc += g;
        cumulative.push(acc);
    }

    // Sort window indices by (γ, index): stable preference for earlier
    // windows on ties, which maximizes utility among equals.
    let mut order: Vec<usize> = (0..gammas.len()).collect();
    order.sort_by(|&a, &b| gammas[a].total_cmp(&gammas[b]).then(a.cmp(&b)));

    for t in order {
        if (cumulative[t] - input.tx_energy[t]).0 >= 0.0 {
            return SelectOutcome::Selected {
                window: t,
                objective: gammas[t],
            };
        }
    }
    SelectOutcome::Fail
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_input<'a>(
        green: &'a [Joules],
        tx: &'a [Joules],
        battery: f64,
        w_u: f64,
    ) -> SelectInput<'a> {
        SelectInput {
            battery_energy: Joules(battery),
            normalized_degradation: w_u,
            degradation_weight: 1.0,
            green_energy: green,
            tx_energy: tx,
            max_tx_energy: Joules(0.08),
            utility: &Utility::Linear,
        }
    }

    #[test]
    fn ample_battery_and_no_degradation_pick_window_zero() {
        let green = [Joules(0.0); 10];
        let tx = [Joules(0.04); 10];
        let out = select_window(&base_input(&green, &tx, 1.0, 0.0));
        assert_eq!(out.window(), Some(0));
    }

    #[test]
    fn degraded_node_waits_for_sun() {
        // Sun arrives at window 3; a fully degraded node defers there.
        let mut green = [Joules(0.0); 8];
        green[3] = Joules(0.05);
        green[4] = Joules(0.05);
        let tx = [Joules(0.04); 8];
        let out = select_window(&base_input(&green, &tx, 1.0, 1.0));
        assert_eq!(out.window(), Some(3));
    }

    #[test]
    fn fresh_node_prioritizes_utility_over_sun() {
        // Same scenario, but w_u = 0 (new battery): utility wins and the
        // node transmits immediately — the Fig. 3 contrast.
        let mut green = [Joules(0.0); 8];
        green[3] = Joules(0.05);
        let tx = [Joules(0.04); 8];
        let out = select_window(&base_input(&green, &tx, 1.0, 0.0));
        assert_eq!(out.window(), Some(0));
    }

    #[test]
    fn infeasible_early_windows_are_skipped() {
        // Battery can't cover window 0; harvest accumulates by window 2.
        let green = [Joules(0.01), Joules(0.01), Joules(0.01), Joules(0.01)].to_vec();
        let tx = [Joules(0.04); 4];
        let out = select_window(&base_input(&green, &tx, 0.01, 0.0));
        // Cumulative: 0.02, 0.03, 0.04, 0.05 → first feasible is window 2.
        assert_eq!(out.window(), Some(2));
    }

    #[test]
    fn fail_when_nothing_is_feasible() {
        let green = [Joules(0.0); 5];
        let tx = [Joules(0.04); 5];
        let out = select_window(&base_input(&green, &tx, 0.0, 1.0));
        assert_eq!(out, SelectOutcome::Fail);
        assert_eq!(out.window(), None);
    }

    #[test]
    fn wb_zero_reduces_to_pure_utility() {
        let mut green = [Joules(0.0); 6];
        green[4] = Joules(1.0);
        let tx = [Joules(0.04); 6];
        let mut input = base_input(&green, &tx, 1.0, 1.0);
        input.degradation_weight = 0.0;
        assert_eq!(select_window(&input).window(), Some(0));
    }

    #[test]
    fn objectives_match_eq17_by_hand() {
        let green = [Joules(0.08), Joules(0.0)];
        let tx = [Joules(0.04); 2];
        let input = base_input(&green, &tx, 1.0, 0.5);
        let g = objectives(&input);
        // t=0: utility 1, DIF 0            → γ = 0.
        // t=1: utility 0.5, DIF 0.04/0.08   → γ = 0.5 + 0.5·0.5·1 = 0.75.
        assert!((g[0] - 0.0).abs() < 1e-12);
        assert!((g[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn tie_breaks_prefer_earlier_window() {
        // Two identical sunny windows: equal γ, earlier index wins.
        let green = [Joules(0.08), Joules(0.08)];
        let tx = [Joules(0.04); 2];
        let mut input = base_input(&green, &tx, 1.0, 1.0);
        input.utility = &Utility::Plateau { plateau_windows: 2 };
        assert_eq!(select_window(&input).window(), Some(0));
    }

    #[test]
    fn higher_tx_estimate_can_flip_the_choice() {
        // Window 0 looks crowded (inflated estimate) → the degraded
        // node prefers the calm sunny window 1.
        let green = [Joules(0.02), Joules(0.06)];
        let tx_quiet = [Joules(0.04), Joules(0.04)];
        let tx_crowded = [Joules(0.12), Joules(0.04)];
        let a = select_window(&base_input(&green, &tx_quiet, 1.0, 1.0));
        let b = select_window(&base_input(&green, &tx_crowded, 1.0, 1.0));
        assert_eq!(a.window(), Some(0));
        assert_eq!(b.window(), Some(1));
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        let green = [Joules(0.0); 3];
        let tx = [Joules(0.0); 2];
        let _ = select_window(&base_input(&green, &tx, 1.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "w_u must be in")]
    fn invalid_wu_panics() {
        let green = [Joules(0.0)];
        let tx = [Joules(0.0)];
        let _ = select_window(&base_input(&green, &tx, 1.0, 1.5));
    }
}
