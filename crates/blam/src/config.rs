//! Protocol configuration.

use blam_units::Duration;
use serde::{Deserialize, Serialize};

use crate::utility::Utility;

/// BLAM protocol parameters for one node.
///
/// The paper's evaluation uses a 1-minute forecast window, `w_b = 1`,
/// EWMA β around 0.5, and sweeps θ over {0.05, 0.5, 1.0} (its H-5,
/// H-50 and H-100 variants).
///
/// # Examples
///
/// ```
/// use blam::BlamConfig;
///
/// let h50 = BlamConfig::h(0.5);
/// assert_eq!(h50.theta, 0.5);
/// let h5 = BlamConfig::h(0.05);
/// assert!(h5.theta < h50.theta);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlamConfig {
    /// Forecast window length (the paper suggests 1–2 min: long enough
    /// for 8 retransmissions at the highest SF, aligned with the
    /// forecaster granularity).
    pub forecast_window: Duration,
    /// Maximum state of charge θ the switch may charge the battery to.
    pub theta: f64,
    /// Importance of degradation over utility, `w_b ∈ [0, 1]`.
    pub degradation_weight: f64,
    /// EWMA weight β for the transmission-energy estimate (Eq. 13).
    pub ewma_beta: f64,
    /// Utility curve.
    pub utility: Utility,
    /// Whether the per-window retransmission estimator (Eq. 14) scales
    /// the energy estimate. Disabled in the `retx_ablation` experiment.
    pub use_retx_estimator: bool,
    /// Whether to select the forecast window with Algorithm 1. When
    /// false the node transmits in window 0 like LoRaWAN but keeps the
    /// θ cap — the paper's H-50C variant.
    pub use_window_selection: bool,
    /// Time-to-live of a disseminated `w_u` byte. Within the TTL the
    /// weight is trusted fully; past it, trust decays linearly toward
    /// the neutral weight over one further TTL (a node that stops
    /// hearing the gateway stops planning around a stale fleet view).
    /// `None` reproduces the paper's behaviour: the last `w_u` is
    /// trusted forever.
    #[serde(default)]
    pub wu_ttl: Option<Duration>,
    /// Depth of the node's compressed-SoC-trace queue. Each sampling
    /// period appends one trace; one trace rides per delivered uplink;
    /// the oldest is discarded when the queue overflows. Depth 1
    /// reproduces the paper's keep-latest behaviour; deeper queues let
    /// a node that was cut off (outage, burst loss) backfill the
    /// gateway ledger on recovery.
    #[serde(default = "default_trace_buffer")]
    pub trace_buffer: usize,
}

fn default_trace_buffer() -> usize {
    1
}

impl BlamConfig {
    /// The paper's `H-θ` configuration: 1-minute windows, `w_b = 1`,
    /// linear utility, β = 0.5.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is outside `[0, 1]`.
    #[must_use]
    pub fn h(theta: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&theta),
            "θ must be in [0,1], got {theta}"
        );
        BlamConfig {
            forecast_window: Duration::from_mins(1),
            theta,
            degradation_weight: 1.0,
            ewma_beta: 0.5,
            utility: Utility::Linear,
            use_retx_estimator: true,
            use_window_selection: true,
            wu_ttl: None,
            trace_buffer: 1,
        }
    }

    /// The paper's H-50C ablation: θ = 0.5 charge clamp only, no
    /// window selection.
    #[must_use]
    pub fn h50c() -> Self {
        BlamConfig {
            use_window_selection: false,
            ..BlamConfig::h(0.5)
        }
    }

    /// Overrides the degradation weight `w_b`.
    ///
    /// # Panics
    ///
    /// Panics if `w_b` is outside `[0, 1]`.
    #[must_use]
    pub fn with_degradation_weight(mut self, w_b: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&w_b),
            "w_b must be in [0,1], got {w_b}"
        );
        self.degradation_weight = w_b;
        self
    }

    /// Overrides the utility curve.
    #[must_use]
    pub fn with_utility(mut self, utility: Utility) -> Self {
        self.utility = utility;
        self
    }

    /// Hardens the configuration against missing feedback: stale `w_u`
    /// decays after 3 days and up to 8 SoC traces are buffered across
    /// failed exchanges. `H-θ` planning is otherwise unchanged; with a
    /// reliable link the hardened node behaves identically.
    #[must_use]
    pub fn hardened(mut self) -> Self {
        self.wu_ttl = Some(Duration::from_days(3));
        self.trace_buffer = 8;
        self
    }

    /// Number of forecast windows in a sampling period of length
    /// `period` (the paper's |T|; at least 1).
    ///
    /// The count is `⌊period / forecast_window⌋`: a trailing partial
    /// window is **dropped**, not rounded up. The remainder (see
    /// [`period_slack`](Self::period_slack)) acts as guard time at the
    /// end of the period — a transmission planned into the last whole
    /// window can still run its retransmissions without spilling into
    /// the next sampling period. Periods shorter than one window
    /// degenerate to a single window covering the whole period, so a
    /// node always has at least one legal transmission slot.
    ///
    /// # Panics
    ///
    /// Panics if `forecast_window` is zero — a zero-length window would
    /// make |T| unbounded and the planner meaningless.
    #[must_use]
    pub fn windows_in_period(&self, period: Duration) -> usize {
        assert!(
            self.forecast_window.as_millis() > 0,
            "forecast_window must be non-zero"
        );
        ((period / self.forecast_window) as usize).max(1)
    }

    /// The tail of `period` not covered by any whole forecast window —
    /// the remainder dropped by [`windows_in_period`](Self::windows_in_period).
    /// Zero when the window divides the period exactly, and zero for
    /// degenerate periods shorter than one window (the single
    /// stretched window absorbs the whole period).
    #[must_use]
    pub fn period_slack(&self, period: Duration) -> Duration {
        if period < self.forecast_window {
            return Duration::from_millis(0);
        }
        period % self.forecast_window
    }
}

impl Default for BlamConfig {
    /// H-50, the paper's headline configuration.
    fn default() -> Self {
        BlamConfig::h(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h_variants() {
        assert_eq!(BlamConfig::h(1.0).theta, 1.0);
        assert_eq!(BlamConfig::default().theta, 0.5);
        assert!(BlamConfig::h50c().theta == 0.5 && !BlamConfig::h50c().use_window_selection);
    }

    #[test]
    fn windows_in_period_counts() {
        let c = BlamConfig::default();
        assert_eq!(c.windows_in_period(Duration::from_mins(10)), 10);
        assert_eq!(c.windows_in_period(Duration::from_mins(16)), 16);
        // Degenerate short periods still yield one window.
        assert_eq!(c.windows_in_period(Duration::from_secs(30)), 1);
    }

    #[test]
    fn partial_trailing_window_is_dropped_as_slack() {
        // 90 s period / 60 s window: one whole window, 30 s of guard
        // time at the end of the period — NOT two windows.
        let c = BlamConfig::default();
        let period = Duration::from_secs(90);
        assert_eq!(c.windows_in_period(period), 1);
        assert_eq!(c.period_slack(period), Duration::from_secs(30));
    }

    #[test]
    fn exact_division_leaves_no_slack() {
        let c = BlamConfig::default();
        // Period equal to one window: exactly one window, no slack.
        assert_eq!(c.windows_in_period(Duration::from_mins(1)), 1);
        assert_eq!(
            c.period_slack(Duration::from_mins(1)),
            Duration::from_millis(0)
        );
        // The paper's 16- and 60-minute periods divide evenly too.
        assert_eq!(
            c.period_slack(Duration::from_mins(60)),
            Duration::from_millis(0)
        );
    }

    #[test]
    fn degenerate_short_period_has_no_slack() {
        // The single stretched window absorbs the whole short period;
        // reporting a "remainder" there would double-count time.
        let c = BlamConfig::default();
        assert_eq!(c.windows_in_period(Duration::from_secs(30)), 1);
        assert_eq!(
            c.period_slack(Duration::from_secs(30)),
            Duration::from_millis(0)
        );
    }

    #[test]
    #[should_panic(expected = "forecast_window must be non-zero")]
    fn zero_length_window_rejected() {
        let mut c = BlamConfig::default();
        c.forecast_window = Duration::from_millis(0);
        let _ = c.windows_in_period(Duration::from_mins(10));
    }

    #[test]
    fn hardened_only_touches_resilience_knobs() {
        let base = BlamConfig::h(0.5);
        let hard = base.clone().hardened();
        assert_eq!(hard.wu_ttl, Some(Duration::from_days(3)));
        assert_eq!(hard.trace_buffer, 8);
        let mut back = hard;
        back.wu_ttl = None;
        back.trace_buffer = 1;
        assert_eq!(back, base);
    }

    #[test]
    fn legacy_config_json_defaults_resilience_fields() {
        // Pre-fault-injection configs had neither field; they must
        // load with the paper's trust-forever / keep-latest semantics.
        let mut v = serde_json::to_value(BlamConfig::h(0.5)).unwrap();
        let obj = v.as_object_mut().unwrap();
        obj.remove("wu_ttl");
        obj.remove("trace_buffer");
        let cfg: BlamConfig = serde_json::from_value(v).unwrap();
        assert_eq!(cfg.wu_ttl, None);
        assert_eq!(cfg.trace_buffer, 1);
        assert_eq!(cfg, BlamConfig::h(0.5));
    }

    #[test]
    #[should_panic(expected = "θ must be in")]
    fn invalid_theta() {
        let _ = BlamConfig::h(-0.1);
    }

    #[test]
    #[should_panic(expected = "w_b must be in")]
    fn invalid_wb() {
        let _ = BlamConfig::default().with_degradation_weight(2.0);
    }
}
