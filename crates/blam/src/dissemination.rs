//! Gateway-side degradation ledger and dissemination.
//!
//! The gateway reconstructs each node's SoC trace from the compressed
//! samples piggybacked on uplinks, runs the (computationally heavy)
//! degradation model there, and once a day computes each node's
//! *normalized degradation* `w_u = D_u / D_max`. The single byte
//! `round(255 · w_u)` rides back to node `u` on the next ACK. Nodes
//! with fresher batteries thus see a small `w_u` and prioritize
//! utility; heavily degraded nodes see `w_u → 1` and conserve their
//! battery — the indirect coordination that maximizes the *minimum*
//! lifespan.

use std::collections::BTreeMap;

use blam_battery::{DegradationConstants, DegradationTracker};
use blam_units::{Celsius, Duration, SimTime};
use serde::{Deserialize, Serialize};

use crate::trace_compress::CompressedSocTrace;

/// Everything needed to rebuild a node's tracker from scratch:
/// commissioning metadata plus every `(time, SoC)` sample in arrival
/// order. Retained only by reference-mode ledgers.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
struct ReplayLog {
    /// `(age, avg_soc, cycle_damage)` from `register_prior_age`.
    prior: Option<(Duration, f64, f64)>,
    samples: Vec<(SimTime, f64)>,
}

/// Gateway-side per-node degradation accounting.
///
/// Keyed by the node's numeric identifier (the caller maps device
/// addresses).
///
/// # Examples
///
/// ```
/// use blam::{CompressedSocTrace, DegradationLedger, SocSample};
/// use blam_units::{Duration, SimTime};
///
/// let mut ledger = DegradationLedger::new(Duration::from_mins(1));
/// let period_start = SimTime::ZERO;
/// ledger.record_trace(7, period_start, &CompressedSocTrace {
///     discharge: SocSample::new(0, 0.45),
///     recharge: SocSample::new(5, 0.50),
/// });
/// let updates = ledger.compute_normalized(SimTime::ZERO + Duration::from_days(1));
/// assert_eq!(updates.len(), 1);
/// assert_eq!(updates[0].0, 7);
/// assert_eq!(updates[0].1, 255); // only node ⇒ it IS the max
/// ```
// Checkpointing serializes the ledger whole: every container is a
// `BTreeMap`, so the serialized bytes are deterministic, and the
// incremental trackers (plus reference-mode replay logs) are exactly
// the state a resumed run needs.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct DegradationLedger {
    forecast_window: Duration,
    /// Incremental per-node trackers, ordered by node id so the daily
    /// pass iterates in dissemination order with no collect-and-sort.
    trackers: BTreeMap<u32, DegradationTracker>,
    /// Anchor of the most recent trace per node. Nodes registered via
    /// commissioning metadata but never heard from have no entry.
    last_heard: BTreeMap<u32, SimTime>,
    temperature: Celsius,
    constants: DegradationConstants,
    /// Reference (oracle) mode: retain every sample and replay a fresh
    /// tracker per node on each dissemination pass — the naive
    /// recompute-everything gateway the incremental path is checked
    /// against. Identical record order makes the two bit-identical.
    reference: bool,
    full_traces: BTreeMap<u32, ReplayLog>,
}

impl DegradationLedger {
    /// Creates a ledger; `forecast_window` converts piggybacked window
    /// indices into timestamps.
    #[must_use]
    pub fn new(forecast_window: Duration) -> Self {
        DegradationLedger::with_constants(
            forecast_window,
            Celsius(25.0),
            DegradationConstants::lmo(),
        )
    }

    /// Creates a ledger computing with custom temperature and
    /// degradation constants (must match what the nodes' batteries
    /// use, or the disseminated ranking drifts).
    #[must_use]
    pub fn with_constants(
        forecast_window: Duration,
        temperature: Celsius,
        constants: DegradationConstants,
    ) -> Self {
        DegradationLedger {
            forecast_window,
            trackers: BTreeMap::new(),
            last_heard: BTreeMap::new(),
            temperature,
            constants,
            reference: false,
            full_traces: BTreeMap::new(),
        }
    }

    /// Switches the ledger into reference (oracle) mode: full traces
    /// are retained and each dissemination pass replays a fresh
    /// [`DegradationTracker`] per node instead of reading the
    /// incremental one. Much slower, bit-identical output — the
    /// differential tests and the perf gate's baseline run use it.
    #[must_use]
    pub fn into_reference(mut self) -> Self {
        self.reference = true;
        self
    }

    /// Whether this ledger runs in reference (replay-per-pass) mode.
    #[must_use]
    pub fn is_reference(&self) -> bool {
        self.reference
    }

    /// Number of nodes with recorded traces.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.trackers.len()
    }

    /// Registers a node whose battery already served `age` before
    /// deployment (commissioning metadata — the gateway cannot infer
    /// prior wear from the SoC traces alone).
    pub fn register_prior_age(
        &mut self,
        node: u32,
        age: Duration,
        prior_avg_soc: f64,
        prior_cycle_damage: f64,
    ) {
        self.trackers.insert(
            node,
            DegradationTracker::with_prior_age(
                self.temperature,
                self.constants,
                age,
                prior_avg_soc,
                prior_cycle_damage,
            ),
        );
        if self.reference {
            // Registration replaces the tracker, so the replay log
            // starts over too.
            self.full_traces.insert(
                node,
                ReplayLog {
                    prior: Some((age, prior_avg_soc, prior_cycle_damage)),
                    samples: Vec::new(),
                },
            );
        }
    }

    /// Ingests one period's compressed trace from `node`, anchored at
    /// the period's start time.
    pub fn record_trace(&mut self, node: u32, period_start: SimTime, trace: &CompressedSocTrace) {
        let tracker = self.trackers.entry(node).or_insert_with(|| {
            DegradationTracker::with_constants(self.temperature, self.constants)
        });
        let mut log = if self.reference {
            Some(self.full_traces.entry(node).or_default())
        } else {
            None
        };
        for s in trace.samples_in_order() {
            let at = period_start + self.forecast_window * u64::from(s.window);
            tracker.record(at, s.soc);
            if let Some(log) = log.as_mut() {
                log.samples.push((at, s.soc));
            }
        }
        let heard = self.last_heard.entry(node).or_insert(period_start);
        *heard = (*heard).max(period_start);
    }

    /// When the gateway last heard from `node` (the anchor of its most
    /// recent trace), if ever.
    #[must_use]
    pub fn last_heard(&self, node: u32) -> Option<SimTime> {
        self.last_heard.get(&node).copied()
    }

    /// A node's absolute degradation at `now` (0 for unknown nodes).
    #[must_use]
    pub fn degradation_of(&self, node: u32, now: SimTime) -> f64 {
        self.trackers.get(&node).map_or(0.0, |t| t.degradation(now))
    }

    /// The daily dissemination pass: every node's normalized
    /// degradation, quantized to a byte. Returns `(node,
    /// round(255·w_u))` pairs sorted by node id.
    ///
    /// Returns an empty vector when no node has reported yet or the
    /// maximum degradation is still zero (all batteries new, `w_u = 0`
    /// for everyone — which is also each node's bootstrap default).
    #[must_use]
    pub fn compute_normalized(&self, now: SimTime) -> Vec<(u32, u8)> {
        self.compute_normalized_bounded(now, None)
    }

    /// [`compute_normalized`](Self::compute_normalized) with a
    /// staleness bound: a node not heard from for longer than
    /// `staleness` has its degradation *frozen* at the last instant
    /// the gateway could still vouch for (`last_heard + staleness`)
    /// instead of being extrapolated to `now`. Nodes registered via
    /// commissioning metadata but never heard from are evaluated at
    /// their commissioning state only. `None` reproduces the unbounded
    /// behaviour exactly.
    #[must_use]
    pub fn compute_normalized_bounded(
        &self,
        now: SimTime,
        staleness: Option<Duration>,
    ) -> Vec<(u32, u8)> {
        // BTreeMap iteration is already ascending by node id, so the
        // pass reads each incremental tracker once, in dissemination
        // order, with no intermediate sort. Reference mode instead
        // replays every node's full trace through a fresh tracker —
        // the same record sequence in the same order, hence
        // bit-identical degradations.
        let degradations: Vec<(u32, f64)> = if self.reference {
            self.full_traces
                .iter()
                .map(|(&id, log)| {
                    let t = self.replay(log);
                    (id, t.degradation(self.eval_time(id, now, staleness)))
                })
                .collect()
        } else {
            self.trackers
                .iter()
                .map(|(&id, t)| (id, t.degradation(self.eval_time(id, now, staleness))))
                .collect()
        };
        let max = degradations.iter().map(|&(_, d)| d).fold(0.0f64, f64::max);
        if max <= 0.0 {
            return Vec::new();
        }
        degradations
            .into_iter()
            .map(|(id, d)| (id, quantize_weight(d / max)))
            .collect()
    }

    /// Rebuilds a node's tracker from its retained commissioning
    /// metadata and full sample log (reference mode only).
    fn replay(&self, log: &ReplayLog) -> DegradationTracker {
        let mut t = match log.prior {
            Some((age, avg_soc, cycle_damage)) => DegradationTracker::with_prior_age(
                self.temperature,
                self.constants,
                age,
                avg_soc,
                cycle_damage,
            ),
            None => DegradationTracker::with_constants(self.temperature, self.constants),
        };
        for &(at, soc) in &log.samples {
            t.record(at, soc);
        }
        t
    }

    /// The instant node `id`'s degradation is evaluated at: `now`,
    /// unless a staleness bound freezes it at `last_heard + bound`.
    fn eval_time(&self, id: u32, now: SimTime, staleness: Option<Duration>) -> SimTime {
        let Some(bound) = staleness else {
            return now;
        };
        let heard = self.last_heard.get(&id).copied().unwrap_or(SimTime::ZERO);
        now.min(heard.checked_add(bound).unwrap_or(SimTime::MAX))
    }
}

/// Quantizes a normalized degradation `w ∈ [0, 1]` into the
/// dissemination byte.
#[must_use]
pub fn quantize_weight(w: f64) -> u8 {
    (w.clamp(0.0, 1.0) * 255.0).round() as u8
}

/// Decodes the dissemination byte back into `w_u ∈ [0, 1]` at the node.
///
/// The byte may have been corrupted in flight; the explicit clamp
/// guarantees the planning weight stays in range for *any* of the 256
/// possible values, whatever the upstream arithmetic does.
#[must_use]
pub fn dequantize_weight(byte: u8) -> f64 {
    (f64::from(byte) / 255.0).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use super::*;
    use crate::trace_compress::SocSample;

    fn trace(w1: u8, s1: f64, w2: u8, s2: f64) -> CompressedSocTrace {
        CompressedSocTrace {
            discharge: SocSample::new(w1, s1),
            recharge: SocSample::new(w2, s2),
        }
    }

    #[test]
    fn quantization_roundtrip() {
        for b in [0u8, 1, 127, 254, 255] {
            assert_eq!(quantize_weight(dequantize_weight(b)), b);
        }
        assert_eq!(quantize_weight(1.5), 255);
        assert_eq!(quantize_weight(-0.5), 0);
    }

    #[test]
    fn most_degraded_node_gets_255() {
        let mut ledger = DegradationLedger::new(Duration::from_mins(1));
        let day = Duration::from_days(1);
        // Node 1 cycles around a high SoC; node 2 around a low SoC.
        for d in 0..200u64 {
            let start = SimTime::ZERO + day * d;
            ledger.record_trace(1, start, &trace(0, 0.85, 30, 1.0));
            ledger.record_trace(2, start, &trace(0, 0.25, 30, 0.4));
        }
        let now = SimTime::ZERO + day * 200;
        assert!(ledger.degradation_of(1, now) > ledger.degradation_of(2, now));
        let updates = ledger.compute_normalized(now);
        let map: std::collections::HashMap<u32, u8> = updates.into_iter().collect();
        assert_eq!(map[&1], 255);
        assert!(map[&2] < 255);
        assert!(map[&2] > 0);
    }

    #[test]
    fn every_possible_byte_decodes_in_range() {
        // A corrupted dissemination byte must still yield a usable
        // planning weight: all 256 values decode into w_u ∈ [0, 1].
        for byte in 0..=u8::MAX {
            let w = dequantize_weight(byte);
            assert!(
                (0.0..=1.0).contains(&w),
                "byte {byte} decoded out of range: {w}"
            );
        }
        assert_eq!(dequantize_weight(0), 0.0);
        assert_eq!(dequantize_weight(255), 1.0);
    }

    #[test]
    fn last_heard_tracks_the_newest_trace_anchor() {
        let mut ledger = DegradationLedger::new(Duration::from_mins(1));
        assert_eq!(ledger.last_heard(1), None);
        let t1 = SimTime::ZERO + Duration::from_hours(2);
        ledger.record_trace(1, t1, &trace(0, 0.5, 30, 0.7));
        assert_eq!(ledger.last_heard(1), Some(t1));
        // An out-of-order (older) trace never moves the anchor back.
        ledger.record_trace(1, SimTime::ZERO, &trace(0, 0.5, 30, 0.7));
        assert_eq!(ledger.last_heard(1), Some(t1));
        // Commissioning metadata alone is not "hearing" the node.
        ledger.register_prior_age(9, Duration::from_days(365), 0.9, 0.0);
        assert_eq!(ledger.last_heard(9), None);
    }

    #[test]
    fn staleness_bound_freezes_silent_nodes() {
        let mut ledger = DegradationLedger::new(Duration::from_mins(1));
        let day = Duration::from_days(1);
        // Both nodes report identical *flat* traces (pure calendar
        // aging, no cycle damage) for 50 days, then node 2 goes silent
        // while node 1 keeps reporting.
        for d in 0..200u64 {
            let start = SimTime::ZERO + day * d;
            ledger.record_trace(1, start, &trace(0, 0.6, 30, 0.6));
            if d < 50 {
                ledger.record_trace(2, start, &trace(0, 0.6, 30, 0.6));
            }
        }
        let now = SimTime::ZERO + day * 200;
        // Unbounded: the gateway extrapolates node 2's calendar aging
        // to `now` — both nodes look equally degraded.
        let unbounded: HashMap<u32, u8> = ledger.compute_normalized(now).into_iter().collect();
        assert_eq!(unbounded[&1], unbounded[&2]);
        // Bounded: node 2's degradation freezes shortly after it went
        // silent, so the node the gateway still hears ranks worse.
        let bounded: HashMap<u32, u8> = ledger
            .compute_normalized_bounded(now, Some(Duration::from_days(3)))
            .into_iter()
            .collect();
        assert_eq!(bounded[&1], 255);
        assert!(
            bounded[&2] < bounded[&1],
            "silent node must not be extrapolated: {} vs {}",
            bounded[&2],
            bounded[&1]
        );
        // No staleness bound delegates to the exact unbounded path.
        assert_eq!(
            ledger.compute_normalized_bounded(now, None),
            ledger.compute_normalized(now)
        );
    }

    #[test]
    fn unknown_node_has_zero_degradation() {
        let ledger = DegradationLedger::new(Duration::from_mins(1));
        assert_eq!(ledger.degradation_of(99, SimTime::from_secs(1)), 0.0);
        assert_eq!(ledger.node_count(), 0);
    }

    #[test]
    fn empty_ledger_disseminates_nothing() {
        let ledger = DegradationLedger::new(Duration::from_mins(1));
        assert!(ledger.compute_normalized(SimTime::from_secs(10)).is_empty());
    }

    #[test]
    fn updates_sorted_by_node_id() {
        let mut ledger = DegradationLedger::new(Duration::from_mins(1));
        let day = Duration::from_days(1);
        for node in [9u32, 3, 7] {
            for d in 0..50u64 {
                ledger.record_trace(node, SimTime::ZERO + day * d, &trace(0, 0.4, 30, 0.6));
            }
        }
        let updates = ledger.compute_normalized(SimTime::ZERO + day * 50);
        let ids: Vec<u32> = updates.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![3, 7, 9]);
    }

    #[test]
    fn incremental_ledger_matches_replay_oracle() {
        // Drive an incremental ledger and a reference (replay-per-pass)
        // ledger through the same trace stream, including a pre-aged
        // node and interleaved dissemination passes; every pass must
        // produce byte-identical updates and bit-identical raw
        // degradations.
        let mut fast = DegradationLedger::new(Duration::from_mins(1));
        let mut slow = DegradationLedger::new(Duration::from_mins(1)).into_reference();
        assert!(!fast.is_reference() && slow.is_reference());
        for l in [&mut fast, &mut slow] {
            l.register_prior_age(4, Duration::from_days(2 * 365), 0.85, 0.001);
        }
        let day = Duration::from_days(1);
        let mut seed = 0xA076_1D64_78BD_642Fu64;
        for d in 0..120u64 {
            let start = SimTime::ZERO + day * d;
            for node in [1u32, 2, 4, 9] {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                let lo = 0.2 + (seed % 400) as f64 / 1000.0;
                let hi = (lo + 0.25).min(1.0);
                let tr = trace((seed % 20) as u8, lo, 30 + (seed % 8) as u8, hi);
                fast.record_trace(node, start, &tr);
                slow.record_trace(node, start, &tr);
            }
            if d % 10 == 9 {
                let now = start + day;
                assert_eq!(
                    fast.compute_normalized(now),
                    slow.compute_normalized(now),
                    "dissemination divergence on day {d}"
                );
                assert_eq!(
                    fast.compute_normalized_bounded(now, Some(Duration::from_days(3))),
                    slow.compute_normalized_bounded(now, Some(Duration::from_days(3)))
                );
                for node in [1u32, 2, 4, 9] {
                    assert_eq!(
                        fast.degradation_of(node, now).to_bits(),
                        slow.degradation_of(node, now).to_bits(),
                        "raw degradation divergence, node {node} day {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_rainflow_agrees_with_ledger_cycle_accounting() {
        // End-to-end cross-check against the batch oracle: feed one
        // node's samples through the ledger and, independently, the
        // same SoC sequence through batch rainflow_count; the weighted
        // cycle damage must match the tracker's cycle component.
        use blam_battery::{rainflow_count, DegradationConstants};
        let mut ledger = DegradationLedger::new(Duration::from_mins(1));
        let day = Duration::from_days(1);
        let mut socs = Vec::new();
        for d in 0..80u64 {
            let lo = 0.3 + f64::from(u32::try_from(d % 5).unwrap()) * 0.02;
            let tr = trace(0, lo, 30, 0.9);
            // samples_in_order yields discharge then recharge here.
            socs.push(lo);
            socs.push(0.9);
            ledger.record_trace(1, SimTime::ZERO + day * d, &tr);
        }
        let k = DegradationConstants::lmo();
        let expected: f64 = rainflow_count(&socs)
            .iter()
            .map(|c| k.cycle_damage(c))
            .sum();
        let tracker = ledger.trackers.get(&1).unwrap();
        let got = tracker.cycle_component() / k.temperature_stress(tracker.temperature());
        assert!(
            (got - expected).abs() < 1e-15,
            "ledger {got} vs batch {expected}"
        );
    }

    #[test]
    fn window_indices_anchor_to_period_start() {
        let mut ledger = DegradationLedger::new(Duration::from_mins(2));
        let start = SimTime::ZERO + Duration::from_hours(5);
        ledger.record_trace(1, start, &trace(3, 0.5, 8, 0.9));
        // The tracker should have an average SoC between the two samples
        // when queried shortly after.
        let avg = ledger
            .trackers
            .get(&1)
            .unwrap()
            .average_soc(start + Duration::from_mins(16));
        assert!(avg > 0.5 && avg < 0.9, "got {avg}");
    }
}
