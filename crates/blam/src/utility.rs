//! Packet utility curves.
//!
//! The paper defines a packet's utility as a monotonically
//! non-increasing function of its transmission delay within the
//! sampling period, from 1 (sent immediately) to 0 (delayed by a full
//! period), and stresses that the protocol is agnostic to the specific
//! curve. Eq. (16) is the linear instance.

use serde::{Deserialize, Serialize};

/// A utility curve: maps a forecast-window index within a period to the
/// utility in `[0, 1]` of transmitting there.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Utility {
    /// Eq. (16): `μ[t] = (T − t) / T` for `T` windows.
    #[default]
    Linear,
    /// `μ[t] = exp(−rate · t / T)`, a gentler early decline for
    /// applications tolerating moderate delays.
    Exponential {
        /// Decay rate over the period (higher = faster loss).
        rate: f64,
    },
    /// Full utility for the first `plateau_windows` windows, then
    /// linear decline to 0 — freshness-insensitive applications.
    Plateau {
        /// Number of windows with utility 1.
        plateau_windows: usize,
    },
}

impl Utility {
    /// Utility of transmitting in window `t` of a period with `total`
    /// windows.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero.
    #[must_use]
    pub fn at(&self, t: usize, total: usize) -> f64 {
        assert!(total > 0, "a period must contain at least one window");
        let t = t.min(total) as f64;
        let total = total as f64;
        match *self {
            Utility::Linear => (total - t) / total,
            Utility::Exponential { rate } => (-rate * t / total).exp(),
            Utility::Plateau { plateau_windows } => {
                let p = plateau_windows.min(total as usize) as f64;
                if t <= p {
                    1.0
                } else {
                    ((total - t) / (total - p).max(1e-12)).max(0.0)
                }
            }
        }
    }

    /// Evaluates the curve over all windows of a period.
    #[must_use]
    pub fn over_period(&self, total: usize) -> Vec<f64> {
        (0..total).map(|t| self.at(t, total)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_matches_eq16() {
        let u = Utility::Linear;
        assert_eq!(u.at(0, 10), 1.0);
        assert_eq!(u.at(5, 10), 0.5);
        assert_eq!(u.at(10, 10), 0.0);
    }

    #[test]
    fn all_curves_monotone_nonincreasing_and_bounded() {
        for u in [
            Utility::Linear,
            Utility::Exponential { rate: 2.0 },
            Utility::Plateau { plateau_windows: 3 },
        ] {
            let vals = u.over_period(16);
            assert!((vals[0] - 1.0).abs() < 1e-12, "{u:?} starts at 1");
            for w in vals.windows(2) {
                assert!(w[1] <= w[0] + 1e-12, "{u:?} not monotone");
            }
            assert!(vals.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn exponential_declines_slower_early() {
        let lin = Utility::Linear;
        let exp = Utility::Exponential { rate: 1.0 };
        // At 20% of the period, e^{-0.2} ≈ 0.82 > 0.8.
        assert!(exp.at(2, 10) > lin.at(2, 10));
    }

    #[test]
    fn plateau_holds_then_declines() {
        let u = Utility::Plateau { plateau_windows: 3 };
        assert_eq!(u.at(0, 10), 1.0);
        assert_eq!(u.at(3, 10), 1.0);
        assert!(u.at(4, 10) < 1.0);
        assert!(u.at(10, 10) <= 0.0 + 1e-12);
    }

    #[test]
    fn index_beyond_period_clamps_to_zero_for_linear() {
        assert_eq!(Utility::Linear.at(99, 10), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one window")]
    fn zero_windows_panics() {
        let _ = Utility::Linear.at(0, 0);
    }
}
