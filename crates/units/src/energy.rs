//! Energy and power quantities.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::Duration;

/// An amount of energy in joules.
///
/// Battery capacities, harvested energy and per-packet transmission costs
/// are all expressed in joules. The inner value is public in the C-struct
/// spirit — this is a passive quantity — but arithmetic should go through
/// the provided operators so units stay consistent.
///
/// # Examples
///
/// ```
/// use blam_units::{Duration, Joules, Watts};
///
/// let battery = Joules(12.0);
/// let drained = battery - Watts(0.001) * Duration::from_hours(1);
/// assert!((drained.0 - 8.4).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Joules(pub f64);

impl Joules {
    /// Zero energy.
    pub const ZERO: Joules = Joules(0.0);

    /// Creates an energy amount from milli-joules.
    #[must_use]
    pub fn from_millijoules(mj: f64) -> Self {
        Joules(mj / 1_000.0)
    }

    /// This energy in milli-joules.
    #[must_use]
    pub fn as_millijoules(self) -> f64 {
        self.0 * 1_000.0
    }

    /// Clamps to the `[lo, hi]` interval.
    #[must_use]
    pub fn clamp(self, lo: Joules, hi: Joules) -> Joules {
        Joules(self.0.clamp(lo.0, hi.0))
    }

    /// The larger of two energies.
    #[must_use]
    pub fn max(self, rhs: Joules) -> Joules {
        Joules(self.0.max(rhs.0))
    }

    /// The smaller of two energies.
    #[must_use]
    pub fn min(self, rhs: Joules) -> Joules {
        Joules(self.0.min(rhs.0))
    }

    /// True if the value is a finite number.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // analyzer: allow(float-eq, reason = "exact-zero display threshold: 0 J must print as J, not mJ")
        if self.0.abs() >= 1.0 || self.0 == 0.0 {
            write!(f, "{:.3} J", self.0)
        } else {
            write!(f, "{:.3} mJ", self.0 * 1_000.0)
        }
    }
}

impl Add for Joules {
    type Output = Joules;
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl AddAssign for Joules {
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

impl Sub for Joules {
    type Output = Joules;
    fn sub(self, rhs: Joules) -> Joules {
        Joules(self.0 - rhs.0)
    }
}

impl SubAssign for Joules {
    fn sub_assign(&mut self, rhs: Joules) {
        self.0 -= rhs.0;
    }
}

impl Neg for Joules {
    type Output = Joules;
    fn neg(self) -> Joules {
        Joules(-self.0)
    }
}

impl Mul<f64> for Joules {
    type Output = Joules;
    fn mul(self, rhs: f64) -> Joules {
        Joules(self.0 * rhs)
    }
}

impl Mul<Joules> for f64 {
    type Output = Joules;
    fn mul(self, rhs: Joules) -> Joules {
        Joules(self * rhs.0)
    }
}

/// Dimensionless ratio of two energies.
impl Div for Joules {
    type Output = f64;
    fn div(self, rhs: Joules) -> f64 {
        self.0 / rhs.0
    }
}

impl Div<f64> for Joules {
    type Output = Joules;
    fn div(self, rhs: f64) -> Joules {
        Joules(self.0 / rhs)
    }
}

/// Average power over a duration.
impl Div<Duration> for Joules {
    type Output = Watts;
    fn div(self, rhs: Duration) -> Watts {
        Watts(self.0 / rhs.as_secs_f64())
    }
}

impl Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        iter.fold(Joules::ZERO, Add::add)
    }
}

/// Power in watts.
///
/// # Examples
///
/// ```
/// use blam_units::{Duration, Joules, Watts};
///
/// let panel = Watts::from_milliwatts(4.0);
/// let harvested: Joules = panel * Duration::from_mins(1);
/// assert!((harvested.0 - 0.24).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Watts(pub f64);

impl Watts {
    /// Zero power.
    pub const ZERO: Watts = Watts(0.0);

    /// Creates power from milliwatts.
    #[must_use]
    pub fn from_milliwatts(mw: f64) -> Self {
        Watts(mw / 1_000.0)
    }

    /// This power in milliwatts.
    #[must_use]
    pub fn as_milliwatts(self) -> f64 {
        self.0 * 1_000.0
    }

    /// Power drawn by a load at `volts` pulling `milliamps`.
    #[must_use]
    pub fn from_volts_milliamps(volts: f64, milliamps: f64) -> Self {
        Watts(volts * milliamps / 1_000.0)
    }

    /// The larger of two powers.
    #[must_use]
    pub fn max(self, rhs: Watts) -> Watts {
        Watts(self.0.max(rhs.0))
    }

    /// The smaller of two powers.
    #[must_use]
    pub fn min(self, rhs: Watts) -> Watts {
        Watts(self.0.min(rhs.0))
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // analyzer: allow(float-eq, reason = "exact-zero display threshold: 0 W must print as W, not mW")
        if self.0.abs() >= 1.0 || self.0 == 0.0 {
            write!(f, "{:.3} W", self.0)
        } else {
            write!(f, "{:.3} mW", self.0 * 1_000.0)
        }
    }
}

impl Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl AddAssign for Watts {
    fn add_assign(&mut self, rhs: Watts) {
        self.0 += rhs.0;
    }
}

impl Sub for Watts {
    type Output = Watts;
    fn sub(self, rhs: Watts) -> Watts {
        Watts(self.0 - rhs.0)
    }
}

impl Mul<f64> for Watts {
    type Output = Watts;
    fn mul(self, rhs: f64) -> Watts {
        Watts(self.0 * rhs)
    }
}

impl Mul<Watts> for f64 {
    type Output = Watts;
    fn mul(self, rhs: Watts) -> Watts {
        Watts(self * rhs.0)
    }
}

/// Power integrated over time.
impl Mul<Duration> for Watts {
    type Output = Joules;
    fn mul(self, rhs: Duration) -> Joules {
        Joules(self.0 * rhs.as_secs_f64())
    }
}

/// Power integrated over time (commutative form).
impl Mul<Watts> for Duration {
    type Output = Joules;
    fn mul(self, rhs: Watts) -> Joules {
        rhs * self
    }
}

impl Sum for Watts {
    fn sum<I: Iterator<Item = Watts>>(iter: I) -> Watts {
        iter.fold(Watts::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts(2.0) * Duration::from_secs(3);
        assert_eq!(e, Joules(6.0));
        assert_eq!(Duration::from_secs(3) * Watts(2.0), Joules(6.0));
    }

    #[test]
    fn energy_over_time_is_power() {
        let p = Joules(6.0) / Duration::from_secs(3);
        assert!((p.0 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn milli_conversions_roundtrip() {
        assert!((Joules::from_millijoules(120.0).as_millijoules() - 120.0).abs() < 1e-12);
        assert!((Watts::from_milliwatts(4.5).as_milliwatts() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn volts_times_milliamps() {
        // SX1276 PA_BOOST: 120 mA at 3.3 V ≈ 0.396 W.
        let p = Watts::from_volts_milliamps(3.3, 120.0);
        assert!((p.0 - 0.396).abs() < 1e-12);
    }

    #[test]
    fn clamp_limits_energy() {
        assert_eq!(Joules(5.0).clamp(Joules::ZERO, Joules(2.0)), Joules(2.0));
        assert_eq!(Joules(-1.0).clamp(Joules::ZERO, Joules(2.0)), Joules::ZERO);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(Joules(1.5).to_string(), "1.500 J");
        assert_eq!(Joules(0.0015).to_string(), "1.500 mJ");
        assert_eq!(Watts(0.004).to_string(), "4.000 mW");
    }

    #[test]
    fn sums_accumulate() {
        let e: Joules = [Joules(1.0), Joules(2.5)].into_iter().sum();
        assert_eq!(e, Joules(3.5));
        let p: Watts = [Watts(0.5), Watts(0.25)].into_iter().sum();
        assert_eq!(p, Watts(0.75));
    }

    #[test]
    fn ratio_of_energies_is_dimensionless() {
        assert!((Joules(3.0) / Joules(6.0) - 0.5).abs() < 1e-12);
    }
}
