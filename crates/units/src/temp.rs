//! Temperature.

use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

/// A temperature in degrees Celsius.
///
/// The battery degradation model's thermal stress factor works with
/// Celsius values internally converted to Kelvin, matching the paper's
/// `(273 + T)` terms.
///
/// # Examples
///
/// ```
/// use blam_units::Celsius;
///
/// let t = Celsius(25.0);
/// assert!((t.as_kelvin() - 298.15).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Celsius(pub f64);

impl Celsius {
    /// Converts to Kelvin.
    #[must_use]
    pub fn as_kelvin(self) -> f64 {
        self.0 + 273.15
    }

    /// The `273 + T` Kelvin approximation used by the paper's
    /// equations (1) and (2).
    #[must_use]
    pub fn as_kelvin_approx(self) -> f64 {
        self.0 + 273.0
    }
}

impl fmt::Display for Celsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} °C", self.0)
    }
}

impl Add<f64> for Celsius {
    type Output = Celsius;
    fn add(self, rhs: f64) -> Celsius {
        Celsius(self.0 + rhs)
    }
}

impl Sub<f64> for Celsius {
    type Output = Celsius;
    fn sub(self, rhs: f64) -> Celsius {
        Celsius(self.0 - rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kelvin_conversions() {
        assert!((Celsius(0.0).as_kelvin() - 273.15).abs() < 1e-12);
        assert!((Celsius(25.0).as_kelvin_approx() - 298.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats_with_unit() {
        assert_eq!(Celsius(25.0).to_string(), "25.0 °C");
    }

    #[test]
    fn offset_arithmetic() {
        assert_eq!(Celsius(20.0) + 5.0, Celsius(25.0));
        assert_eq!(Celsius(20.0) - 5.0, Celsius(15.0));
    }
}
