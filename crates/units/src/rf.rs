//! Radio-frequency quantities: logarithmic power, frequency, distance.

use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::Watts;

/// Absolute RF power in dBm (decibels relative to one milliwatt).
///
/// # Examples
///
/// ```
/// use blam_units::{Db, Dbm};
///
/// let tx = Dbm(14.0);
/// let path_loss = Db(120.0);
/// let rssi = tx - path_loss;
/// assert_eq!(rssi, Dbm(-106.0));
/// assert!((Dbm(0.0).as_watts().as_milliwatts() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Dbm(pub f64);

impl Dbm {
    /// Converts to linear power.
    #[must_use]
    pub fn as_watts(self) -> Watts {
        Watts(10f64.powf(self.0 / 10.0) / 1_000.0)
    }

    /// Converts linear power to dBm.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not strictly positive (the logarithm is undefined).
    #[must_use]
    pub fn from_watts(w: Watts) -> Self {
        assert!(w.0 > 0.0, "dBm conversion requires positive power, got {w}");
        Dbm(10.0 * (w.0 * 1_000.0).log10())
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dBm", self.0)
    }
}

/// A relative level in decibels (gain, loss, SNR, margin).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Db(pub f64);

impl Db {
    /// The linear power ratio this level represents.
    #[must_use]
    pub fn as_linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dB", self.0)
    }
}

impl Add<Db> for Dbm {
    type Output = Dbm;
    fn add(self, rhs: Db) -> Dbm {
        Dbm(self.0 + rhs.0)
    }
}

impl Sub<Db> for Dbm {
    type Output = Dbm;
    fn sub(self, rhs: Db) -> Dbm {
        Dbm(self.0 - rhs.0)
    }
}

/// The level difference between two absolute powers.
impl Sub for Dbm {
    type Output = Db;
    fn sub(self, rhs: Dbm) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl Add for Db {
    type Output = Db;
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}

impl Sub for Db {
    type Output = Db;
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}

/// A frequency in hertz.
///
/// # Examples
///
/// ```
/// use blam_units::Hertz;
///
/// let ch0 = Hertz::from_mhz(902.3);
/// assert_eq!(ch0.as_hz(), 902_300_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Hertz(u64);

impl Hertz {
    /// Creates a frequency from hertz.
    #[must_use]
    pub const fn from_hz(hz: u64) -> Self {
        Hertz(hz)
    }

    /// Creates a frequency from kilohertz.
    #[must_use]
    pub const fn from_khz(khz: u64) -> Self {
        Hertz(khz * 1_000)
    }

    /// Creates a frequency from (possibly fractional) megahertz, rounding
    /// to the nearest hertz.
    #[must_use]
    pub fn from_mhz(mhz: f64) -> Self {
        Hertz((mhz * 1e6).round() as u64)
    }

    /// The frequency in hertz.
    #[must_use]
    pub const fn as_hz(self) -> u64 {
        self.0
    }

    /// The frequency in kilohertz as a float.
    #[must_use]
    pub fn as_khz_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The frequency in megahertz as a float.
    #[must_use]
    pub fn as_mhz_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl fmt::Display for Hertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3} MHz", self.as_mhz_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.1} kHz", self.as_khz_f64())
        } else {
            write!(f, "{} Hz", self.0)
        }
    }
}

/// A distance in meters.
///
/// # Examples
///
/// ```
/// use blam_units::Meters;
///
/// let d = Meters(2_500.0);
/// assert!((d.as_km() - 2.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Meters(pub f64);

impl Meters {
    /// Creates a distance from kilometers.
    #[must_use]
    pub fn from_km(km: f64) -> Self {
        Meters(km * 1_000.0)
    }

    /// The distance in kilometers.
    #[must_use]
    pub fn as_km(self) -> f64 {
        self.0 / 1_000.0
    }
}

impl fmt::Display for Meters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000.0 {
            write!(f, "{:.2} km", self.as_km())
        } else {
            write!(f, "{:.1} m", self.0)
        }
    }
}

impl Add for Meters {
    type Output = Meters;
    fn add(self, rhs: Meters) -> Meters {
        Meters(self.0 + rhs.0)
    }
}

impl Sub for Meters {
    type Output = Meters;
    fn sub(self, rhs: Meters) -> Meters {
        Meters(self.0 - rhs.0)
    }
}

impl Mul<f64> for Meters {
    type Output = Meters;
    fn mul(self, rhs: f64) -> Meters {
        Meters(self.0 * rhs)
    }
}

/// Dimensionless ratio of two distances.
impl Div for Meters {
    type Output = f64;
    fn div(self, rhs: Meters) -> f64 {
        self.0 / rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_watt_roundtrip() {
        for &dbm in &[-137.0, -30.0, 0.0, 14.0, 20.0] {
            let back = Dbm::from_watts(Dbm(dbm).as_watts());
            assert!((back.0 - dbm).abs() < 1e-9, "{dbm} -> {back:?}");
        }
    }

    #[test]
    fn fourteen_dbm_is_about_25_milliwatts() {
        let w = Dbm(14.0).as_watts();
        assert!((w.as_milliwatts() - 25.118_864).abs() < 1e-3);
    }

    #[test]
    fn link_budget_arithmetic() {
        let rssi = Dbm(14.0) - Db(130.0) + Db(3.0);
        assert_eq!(rssi, Dbm(-113.0));
        let snr = rssi - Dbm(-120.0);
        assert_eq!(snr, Db(7.0));
    }

    #[test]
    fn db_linear_ratio() {
        assert!((Db(3.0).as_linear() - 1.995_262).abs() < 1e-5);
        assert!((Db(10.0).as_linear() - 10.0).abs() < 1e-12);
        assert!((Db(-10.0).as_linear() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn hertz_constructors_agree() {
        assert_eq!(Hertz::from_khz(125), Hertz::from_hz(125_000));
        assert_eq!(Hertz::from_mhz(902.3), Hertz::from_hz(902_300_000));
    }

    #[test]
    fn displays() {
        assert_eq!(Hertz::from_khz(125).to_string(), "125.0 kHz");
        assert_eq!(Hertz::from_mhz(902.3).to_string(), "902.300 MHz");
        assert_eq!(Meters::from_km(1.5).to_string(), "1.50 km");
        assert_eq!(Dbm(-120.0).to_string(), "-120.0 dBm");
        assert_eq!(Db(6.0).to_string(), "6.0 dB");
    }

    #[test]
    #[should_panic(expected = "positive power")]
    fn dbm_from_zero_watts_panics() {
        let _ = Dbm::from_watts(Watts(0.0));
    }
}
