//! Shared physical quantities for the `lpwan-blam` workspace.
//!
//! Every crate in the workspace trades in the same handful of physical
//! quantities: simulated time, energy, power, temperature and a few RF
//! units. This crate provides thin, zero-cost newtypes for them so that a
//! [`Joules`] can never be confused with a [`Watts`] value and a
//! millisecond tick can never be confused with a second count
//! (C-NEWTYPE).
//!
//! # Examples
//!
//! ```
//! use blam_units::{Duration, Joules, SimTime, Watts};
//!
//! let start = SimTime::ZERO;
//! let airtime = Duration::from_millis(371);
//! let end = start + airtime;
//! assert_eq!(end.as_millis(), 371);
//!
//! // Power integrated over time yields energy.
//! let radio = Watts(0.4);
//! let spent: Joules = radio * airtime;
//! assert!((spent.0 - 0.1484).abs() < 1e-12);
//! ```

// `forbid(unsafe_code)` comes from `[workspace.lints]` in the root
// manifest; only the doc requirement stays crate-local.
#![warn(missing_docs)]

mod energy;
mod rf;
mod temp;
mod time;

pub use energy::{Joules, Watts};
pub use rf::{Db, Dbm, Hertz, Meters};
pub use temp::Celsius;
pub use time::{Duration, SimTime};
