//! Simulated time: instants and durations with millisecond resolution.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant on the simulated timeline, in whole milliseconds since the
/// start of the simulation.
///
/// Millisecond resolution comfortably covers every timescale in an LPWAN
/// battery-lifespan study: LoRa airtimes are hundreds of milliseconds,
/// forecast windows are minutes, and a `u64` of milliseconds spans more
/// than 500 million years — far beyond the 10–20 year horizons simulated
/// here.
///
/// # Examples
///
/// ```
/// use blam_units::{Duration, SimTime};
///
/// let t = SimTime::ZERO + Duration::from_days(1);
/// assert_eq!(t.as_secs(), 86_400);
/// assert_eq!(t - SimTime::ZERO, Duration::from_hours(24));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; useful as an "infinitely far"
    /// sentinel for event deadlines.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole milliseconds since the origin.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates an instant from whole seconds since the origin.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000)
    }

    /// Whole milliseconds since the origin.
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since the origin (truncating).
    #[must_use]
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the origin as a float.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Whole simulated days since the origin (truncating).
    #[must_use]
    pub const fn as_days(self) -> u64 {
        self.0 / Duration::DAY.as_millis()
    }

    /// Years since the origin as a float, using the 365.25-day Julian year.
    #[must_use]
    pub fn as_years_f64(self) -> f64 {
        self.0 as f64 / (365.25 * Duration::DAY.as_millis() as f64)
    }

    /// The duration since an earlier instant, saturating to zero if
    /// `earlier` is in fact later.
    #[must_use]
    pub const fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_millis(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    #[must_use]
    pub const fn checked_add(self, d: Duration) -> Option<SimTime> {
        match self.0.checked_add(d.as_millis()) {
            Some(ms) => Some(SimTime(ms)),
            None => None,
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0 % 1_000;
        let s = (self.0 / 1_000) % 60;
        let m = (self.0 / 60_000) % 60;
        let h = (self.0 / 3_600_000) % 24;
        let d = self.0 / 86_400_000;
        if d > 0 {
            write!(f, "{d}d {h:02}:{m:02}:{s:02}.{ms:03}")
        } else {
            write!(f, "{h:02}:{m:02}:{s:02}.{ms:03}")
        }
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.as_millis())
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_millis();
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0 - rhs.as_millis())
    }
}

impl Sub for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration::from_millis(self.0 - rhs.0)
    }
}

impl Rem<Duration> for SimTime {
    type Output = Duration;
    fn rem(self, rhs: Duration) -> Duration {
        Duration::from_millis(self.0 % rhs.as_millis())
    }
}

/// A span of simulated time, in whole milliseconds.
///
/// # Examples
///
/// ```
/// use blam_units::Duration;
///
/// let window = Duration::from_mins(1);
/// assert_eq!(window / Duration::from_secs(15), 4);
/// assert_eq!(window * 3, Duration::from_secs(180));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Duration(u64);

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);
    /// One simulated second.
    pub const SECOND: Duration = Duration(1_000);
    /// One simulated minute.
    pub const MINUTE: Duration = Duration(60_000);
    /// One simulated hour.
    pub const HOUR: Duration = Duration(3_600_000);
    /// One simulated day.
    pub const DAY: Duration = Duration(86_400_000);

    /// Creates a duration from whole milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms)
    }

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs * 1_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// millisecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        Duration((secs * 1_000.0).round() as u64)
    }

    /// Creates a duration from whole minutes.
    #[must_use]
    pub const fn from_mins(mins: u64) -> Self {
        Duration(mins * 60_000)
    }

    /// Creates a duration from whole hours.
    #[must_use]
    pub const fn from_hours(hours: u64) -> Self {
        Duration(hours * 3_600_000)
    }

    /// Creates a duration from whole days.
    #[must_use]
    pub const fn from_days(days: u64) -> Self {
        Duration(days * 86_400_000)
    }

    /// Whole milliseconds in this duration.
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds in this duration (truncating).
    #[must_use]
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Hours as a float.
    #[must_use]
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// True if this is the zero-length duration.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// The smaller of two durations.
    #[must_use]
    pub fn min(self, rhs: Duration) -> Duration {
        Duration(self.0.min(rhs.0))
    }

    /// The larger of two durations.
    #[must_use]
    pub fn max(self, rhs: Duration) -> Duration {
        Duration(self.0.max(rhs.0))
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= Duration::DAY.0 {
            write!(f, "{:.2}d", self.0 as f64 / Duration::DAY.0 as f64)
        } else if self.0 >= Duration::HOUR.0 {
            write!(f, "{:.2}h", self.0 as f64 / Duration::HOUR.0 as f64)
        } else if self.0 >= Duration::MINUTE.0 {
            write!(f, "{:.2}min", self.0 as f64 / Duration::MINUTE.0 as f64)
        } else if self.0 >= Duration::SECOND.0 {
            write!(f, "{:.3}s", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}ms", self.0)
        }
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Mul<Duration> for u64 {
    type Output = Duration;
    fn mul(self, rhs: Duration) -> Duration {
        Duration(self * rhs.0)
    }
}

/// Integer division: how many times `rhs` fits into `self`.
impl Div for Duration {
    type Output = u64;
    fn div(self, rhs: Duration) -> u64 {
        self.0 / rhs.0
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Rem for Duration {
    type Output = Duration;
    fn rem(self, rhs: Duration) -> Duration {
        Duration(self.0 % rhs.0)
    }
}

impl std::iter::Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_arithmetic_roundtrips() {
        let t = SimTime::from_secs(90);
        assert_eq!(t + Duration::from_secs(30), SimTime::from_secs(120));
        assert_eq!(SimTime::from_secs(120) - t, Duration::from_secs(30));
        assert_eq!(t - Duration::from_secs(90), SimTime::ZERO);
    }

    #[test]
    fn simtime_saturating_since_clamps() {
        let early = SimTime::from_secs(10);
        let late = SimTime::from_secs(20);
        assert_eq!(late.saturating_since(early), Duration::from_secs(10));
        assert_eq!(early.saturating_since(late), Duration::ZERO);
    }

    #[test]
    fn simtime_unit_conversions() {
        let t = SimTime::from_millis(2 * 86_400_000 + 5_500);
        assert_eq!(t.as_days(), 2);
        assert_eq!(t.as_secs(), 2 * 86_400 + 5);
        assert!((t.as_secs_f64() - (2.0 * 86_400.0 + 5.5)).abs() < 1e-9);
    }

    #[test]
    fn simtime_years_uses_julian_year() {
        let one_year = SimTime::ZERO + Duration::from_hours(24 * 365) + Duration::from_hours(6);
        assert!((one_year.as_years_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_mins(1), Duration::from_secs(60));
        assert_eq!(Duration::from_hours(1), Duration::from_mins(60));
        assert_eq!(Duration::from_days(1), Duration::from_hours(24));
        assert_eq!(Duration::from_secs_f64(1.2345), Duration::from_millis(1235));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn duration_from_negative_seconds_panics() {
        let _ = Duration::from_secs_f64(-0.5);
    }

    #[test]
    fn duration_division_counts_fits() {
        assert_eq!(Duration::from_mins(10) / Duration::from_mins(1), 10);
        assert_eq!(Duration::from_secs(90) / Duration::from_mins(1), 1);
    }

    #[test]
    fn duration_display_picks_natural_scale() {
        assert_eq!(Duration::from_millis(5).to_string(), "5ms");
        assert_eq!(Duration::from_secs(2).to_string(), "2.000s");
        assert_eq!(Duration::from_mins(3).to_string(), "3.00min");
        assert_eq!(Duration::from_days(2).to_string(), "2.00d");
    }

    #[test]
    fn simtime_display_includes_days_only_when_nonzero() {
        assert_eq!(SimTime::from_secs(3_661).to_string(), "01:01:01.000");
        assert_eq!(
            (SimTime::ZERO + Duration::from_days(1)).to_string(),
            "1d 00:00:00.000"
        );
    }

    #[test]
    fn simtime_rem_gives_phase_within_period() {
        let t = SimTime::from_secs(125);
        assert_eq!(t % Duration::from_mins(1), Duration::from_secs(5));
    }

    #[test]
    fn duration_sum_over_iterator() {
        let total: Duration = [Duration::from_secs(1), Duration::from_secs(2)]
            .into_iter()
            .sum();
        assert_eq!(total, Duration::from_secs(3));
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX.checked_add(Duration::from_millis(1)).is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(Duration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }
}
