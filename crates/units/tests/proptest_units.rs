//! Property-based tests for the quantity newtypes.

use blam_units::{Dbm, Duration, Joules, SimTime, Watts};
use proptest::prelude::*;

proptest! {
    /// SimTime/Duration arithmetic is consistent: (t + d) − t == d and
    /// subtraction inverts addition.
    #[test]
    fn time_addition_roundtrips(t in 0u64..10_u64.pow(12), d in 0u64..10_u64.pow(9)) {
        let t0 = SimTime::from_millis(t);
        let d = Duration::from_millis(d);
        prop_assert_eq!((t0 + d) - t0, d);
        prop_assert_eq!((t0 + d) - d, t0);
        prop_assert_eq!((t0 + d).saturating_since(t0), d);
        prop_assert_eq!(t0.saturating_since(t0 + d), Duration::ZERO);
    }

    /// Duration division and multiplication are consistent:
    /// (d / q) * q + (d % q) == d.
    #[test]
    fn duration_divmod(d in 0u64..10_u64.pow(10), q in 1u64..10_u64.pow(6)) {
        let d = Duration::from_millis(d);
        let q = Duration::from_millis(q);
        let n = d / q;
        prop_assert_eq!(q * n + (d % q), d);
        prop_assert!(d % q < q);
    }

    /// Power × time integrates consistently with splitting the interval.
    #[test]
    fn energy_integration_is_additive(p in 0.0f64..10.0, a in 0u64..10_000_000, b in 0u64..10_000_000) {
        let p = Watts(p);
        let whole = p * Duration::from_millis(a + b);
        let split = p * Duration::from_millis(a) + p * Duration::from_millis(b);
        prop_assert!((whole - split).0.abs() < 1e-9 * (1.0 + whole.0.abs()));
    }

    /// Energy / time / power relations roundtrip.
    #[test]
    fn power_energy_roundtrip(e in 0.001f64..1e6, ms in 1u64..10_000_000) {
        let d = Duration::from_millis(ms);
        let p = Joules(e) / d;
        let back = p * d;
        prop_assert!((back.0 - e).abs() < 1e-9 * e);
    }

    /// Clamping keeps energies within bounds and is idempotent.
    #[test]
    fn clamp_idempotent(x in -10.0f64..10.0, lo in 0.0f64..1.0, hi in 1.0f64..5.0) {
        let once = Joules(x).clamp(Joules(lo), Joules(hi));
        prop_assert!(once.0 >= lo && once.0 <= hi);
        prop_assert_eq!(once.clamp(Joules(lo), Joules(hi)), once);
    }

    /// Display formatting never panics across magnitudes.
    #[test]
    fn displays_do_not_panic(x in -1e12f64..1e12, ms in 0u64..10_u64.pow(13)) {
        let _ = Joules(x).to_string();
        let _ = Watts(x).to_string();
        let _ = Dbm(x.clamp(-300.0, 300.0)).to_string();
        let _ = Duration::from_millis(ms).to_string();
        let _ = SimTime::from_millis(ms).to_string();
    }
}
