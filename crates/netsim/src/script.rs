//! Scenario scripts: timed mid-run events that change the deployment
//! while the simulation is running — add a gateway at day 30, churn a
//! fraction of the nodes, flip a [`BlamConfig`] knob.
//!
//! Scripts are part of the [`ScenarioConfig`] (serialized next to the
//! PR-4 fault schedule) and are threaded through the engine the same
//! way: every scripted event is scheduled up front in
//! `schedule_initial_events`, and every draw a script action makes
//! comes from its own named RNG stream keyed by *global* ids. A
//! scripted run is therefore byte-identical across `--shards`/`--jobs`
//! — with the one exception of [`ScriptAction::AddGateway`], which
//! changes the cell structure itself and is restricted to the
//! single-engine mode (checked by [`run_sharded`]).
//!
//! [`BlamConfig`]: blam::BlamConfig
//! [`ScenarioConfig`]: crate::config::ScenarioConfig
//! [`run_sharded`]: crate::shard::run_sharded

use blam_battery::{Battery, PowerSwitch};
use blam_des::{RngSeeder, Simulator};
use blam_lora_phy::Position;
use blam_lorawan::GatewayRadio;
use blam_units::{Duration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::config::Protocol;
use crate::engine::Engine;
use crate::events::Event;

/// One timed change to the running deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScriptAction {
    /// Set the BLAM `w_u` time-to-live (see
    /// [`BlamConfig::wu_ttl`](blam::BlamConfig::wu_ttl)); `None`
    /// disables expiry. A no-op for the LoRaWAN baseline.
    SetWuTtl {
        /// The new TTL, or `None` to trust disseminated weights forever.
        ttl: Option<Duration>,
    },
    /// Set the BLAM SoC trace buffer depth (see
    /// [`BlamConfig::trace_buffer`](blam::BlamConfig::trace_buffer)).
    /// A no-op for the LoRaWAN baseline.
    SetTraceBuffer {
        /// The new buffer depth (≥ 1).
        depth: usize,
    },
    /// Hardware churn: each node is independently replaced with
    /// probability `fraction`. A replaced node reboots (volatile state
    /// wiped, exactly like a fault-injected reboot) and receives a
    /// factory-fresh battery commissioned at the churn instant.
    Churn {
        /// Per-node replacement probability in `[0, 1]`.
        fraction: f64,
    },
    /// Deploy an additional gateway at `(x, y)` meters. Every node
    /// gains a link budget to it and re-homes if the new gateway is
    /// louder than its serving one (keeping its spreading factor —
    /// re-planning SFs mid-run would reshuffle the whole collision
    /// regime). Single-engine mode only.
    AddGateway {
        /// East coordinate in meters.
        x: f64,
        /// North coordinate in meters.
        y: f64,
    },
}

/// A script action and the simulation instant it fires at.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScriptedEvent {
    /// When the action fires (from simulation start).
    pub at: Duration,
    /// What happens.
    pub action: ScriptAction,
}

/// The scenario script: an ordered list of timed events.
///
/// `#[serde(default)]` on the [`ScenarioConfig`] field keeps
/// pre-script scenario JSON loading unchanged, and an empty script is
/// byte-identical to no script at all (nothing is scheduled).
///
/// [`ScenarioConfig`]: crate::config::ScenarioConfig
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ScriptConfig {
    /// The timed events. Order is preserved: events at the same
    /// instant fire in list order (FIFO ties).
    #[serde(default)]
    pub events: Vec<ScriptedEvent>,
}

impl ScriptConfig {
    /// Whether the script schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether any event adds a gateway (restricted to the
    /// single-engine mode — a new gateway changes the cell structure
    /// the sharded coordinator fixed at build time).
    #[must_use]
    pub fn has_add_gateway(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.action, ScriptAction::AddGateway { .. }))
    }

    /// Validates the script against the scenario horizon.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range churn fraction, a zero trace-buffer
    /// depth, a zero `wu_ttl`, a non-finite gateway coordinate, or an
    /// event scheduled at or past the horizon (it would never fire).
    pub fn validate(&self, duration: Duration) {
        for (i, ev) in self.events.iter().enumerate() {
            assert!(
                ev.at < duration,
                "script event {i} at {} never fires within the {duration} horizon",
                ev.at
            );
            match &ev.action {
                ScriptAction::SetWuTtl { ttl } => {
                    assert!(
                        ttl.is_none_or(|t| !t.is_zero()),
                        "script event {i}: wu_ttl of zero expires every weight instantly; \
                         use ttl = null to disable expiry"
                    );
                }
                ScriptAction::SetTraceBuffer { depth } => {
                    assert!(
                        *depth >= 1,
                        "script event {i}: trace_buffer depth must be ≥ 1"
                    );
                }
                ScriptAction::Churn { fraction } => {
                    assert!(
                        (0.0..=1.0).contains(fraction),
                        "script event {i}: churn fraction must be in [0, 1], got {fraction}"
                    );
                }
                ScriptAction::AddGateway { x, y } => {
                    assert!(
                        x.is_finite() && y.is_finite(),
                        "script event {i}: gateway coordinates must be finite"
                    );
                }
            }
        }
    }
}

impl Engine {
    /// Handles one scripted event (the `index`-th entry of the
    /// scenario script).
    pub(crate) fn on_scripted(&mut self, sim: &mut Simulator<Event>, now: SimTime, index: usize) {
        let action = self.cfg.script.events[index].action.clone();
        match action {
            ScriptAction::SetWuTtl { ttl } => {
                if let Protocol::Blam(bc) = &mut self.cfg.protocol {
                    bc.wu_ttl = ttl;
                    self.policy = self.cfg.protocol.policy();
                }
            }
            ScriptAction::SetTraceBuffer { depth } => {
                if let Protocol::Blam(bc) = &mut self.cfg.protocol {
                    bc.trace_buffer = depth;
                    self.policy = self.cfg.protocol.policy();
                }
            }
            ScriptAction::Churn { fraction } => self.script_churn(sim, now, index, fraction),
            ScriptAction::AddGateway { x, y } => self.script_add_gateway(x, y),
        }
    }

    /// Replaces each node independently with probability `fraction`:
    /// a reboot-grade wipe of the volatile state plus a factory-fresh
    /// battery commissioned at `now`.
    ///
    /// The draw for node `g` comes from the `"script-churn"` stream
    /// indexed by `(event index, global id)` — one independent stream
    /// per (event, node), so a cell engine visiting only its own nodes
    /// selects exactly the nodes the single engine would.
    fn script_churn(&mut self, sim: &mut Simulator<Event>, now: SimTime, index: usize, f: f64) {
        let seeder = RngSeeder::new(self.cfg.seed);
        let theta = self.policy.theta();
        let temperature = self.cfg.temperature;
        let constants = self.cfg.degradation;
        for i in 0..self.store.len() {
            let gid = u64::from(self.store.global_id(i));
            let mut rng = seeder.stream_indexed("script-churn", ((index as u64) << 32) | gid);
            if rng.gen::<f64>() >= f {
                continue;
            }
            self.reboot_wipe(sim, now, i);
            // The replacement keeps the node's radio, panel and (if
            // any) supercap — it is a battery swap plus a power-cycle,
            // the common field-maintenance action. The new battery's
            // calendar clock starts at the swap instant.
            let node = self.store.node_mut(i);
            let capacity = node.battery.original_capacity();
            *node.battery = Battery::commissioned_at(capacity, theta, temperature, constants, now);
            *node.switch = PowerSwitch::new(theta);
        }
    }

    /// Deploys one more gateway at `(x, y)`: a new gateway radio, a
    /// link budget per node, and re-homing of every node the new
    /// gateway serves louder than its current one.
    fn script_add_gateway(&mut self, x: f64, y: f64) {
        let pos = Position { x, y };
        self.gateways
            .push(GatewayRadio::new(self.cfg.demod_paths).with_interference(self.cfg.interference));
        let g = self.gateways.len() - 1;
        let path_loss = self.cfg.path_loss;
        let tx_power = self.cfg.tx_power;
        for i in 0..self.store.len() {
            let node = self.store.node_mut(i);
            let d = blam_units::Meters(node.placement.position.distance_to(pos).0.max(1.0));
            // The same budget formula `build_nodes` uses, with the
            // node's static shadowing draw carried over.
            let link = blam_lora_phy::LinkBudget::new(d)
                .with_path_loss(path_loss)
                .with_shadowing(node.placement.link.shadowing);
            node.gateway_links.push(link);
            if link.rssi(tx_power).0 > node.placement.link.rssi(tx_power).0 {
                node.placement.gateway = g;
                node.placement.link = link;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_script() -> ScriptConfig {
        ScriptConfig {
            events: vec![
                ScriptedEvent {
                    at: Duration::from_days(30),
                    action: ScriptAction::AddGateway {
                        x: 1500.0,
                        y: -800.0,
                    },
                },
                ScriptedEvent {
                    at: Duration::from_days(45),
                    action: ScriptAction::Churn { fraction: 0.1 },
                },
                ScriptedEvent {
                    at: Duration::from_days(60),
                    action: ScriptAction::SetWuTtl {
                        ttl: Some(Duration::from_days(3)),
                    },
                },
                ScriptedEvent {
                    at: Duration::from_days(60),
                    action: ScriptAction::SetTraceBuffer { depth: 8 },
                },
            ],
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let script = sample_script();
        let json = serde_json::to_string_pretty(&script).unwrap();
        let back: ScriptConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, script);
        // And a second round trip through the re-serialized text.
        let json2 = serde_json::to_string_pretty(&back).unwrap();
        assert_eq!(json, json2);
    }

    #[test]
    fn empty_script_is_default_and_empty() {
        let script = ScriptConfig::default();
        assert!(script.is_empty());
        assert!(!script.has_add_gateway());
        script.validate(Duration::from_days(1));
    }

    #[test]
    fn has_add_gateway_detects_the_action() {
        assert!(sample_script().has_add_gateway());
        let churn_only = ScriptConfig {
            events: vec![ScriptedEvent {
                at: Duration::from_days(1),
                action: ScriptAction::Churn { fraction: 0.5 },
            }],
        };
        assert!(!churn_only.has_add_gateway());
    }

    #[test]
    #[should_panic(expected = "churn fraction must be in [0, 1]")]
    fn validate_catches_bad_fraction() {
        let script = ScriptConfig {
            events: vec![ScriptedEvent {
                at: Duration::from_days(1),
                action: ScriptAction::Churn { fraction: 1.5 },
            }],
        };
        script.validate(Duration::from_days(2));
    }

    #[test]
    #[should_panic(expected = "never fires")]
    fn validate_catches_event_past_horizon() {
        let script = ScriptConfig {
            events: vec![ScriptedEvent {
                at: Duration::from_days(10),
                action: ScriptAction::Churn { fraction: 0.1 },
            }],
        };
        script.validate(Duration::from_days(5));
    }

    #[test]
    #[should_panic(expected = "trace_buffer depth must be ≥ 1")]
    fn validate_catches_zero_depth() {
        let script = ScriptConfig {
            events: vec![ScriptedEvent {
                at: Duration::from_days(1),
                action: ScriptAction::SetTraceBuffer { depth: 0 },
            }],
        };
        script.validate(Duration::from_days(2));
    }
}
