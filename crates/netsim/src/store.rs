//! Data-oriented node storage: the struct-of-arrays [`NodeStore`] and
//! its per-node mutable view [`NodeMut`].
//!
//! The former `SimNode` struct-of-structs kept every field of every
//! node — hot per-event scalars next to multi-kilobyte cold state
//! (forecaster history, trace queues, rainflow records) — so a
//! million-node run walked sparse cache lines on every event. The
//! store splits that layout:
//!
//! * **Hot columns** — the plan/SoC/timing scalars every event handler
//!   touches (`period_start`, `exchange_epoch`, pending slots, latches)
//!   live in dense parallel `Vec`s indexed by local node index.
//! * **Scratch matrices** — the per-node Algorithm-1 forecast and
//!   Eq. (14) energy buffers are rows of two flat `Joules` matrices
//!   (offsets in `scratch_bounds`), not a `Vec` per node.
//! * **Cold arena** — everything touched at most once per period
//!   (MAC, battery, harvest trace, forecaster, metrics) lives in
//!   [`NodeCold`], one arena slot per node.
//!
//! [`NodeMut`] is the seam that keeps the rest of the crate oblivious
//! to the layout: `store.node_mut(i)` hands out one view bundling
//! disjoint `&mut` borrows of every column plus the cold slot, under
//! the same field names `SimNode` had. [`crate::policy::MacPolicy`]
//! and the event handlers in `nodes.rs` compile against the view;
//! direct column access outside `store.rs`/`nodes.rs` is flagged by
//! the `store-hygiene` lint of `blam-analyze`.
//!
//! A store also knows how to [`split`](NodeStore::split) itself into
//! per-cell sub-stores for the sharded engine: each keeps its nodes'
//! **global** ids (device addresses, telemetry ids and ledger keys stay
//! deployment-wide) while handlers keep indexing densely from zero.

use std::collections::VecDeque;

use blam::utility::Utility;
use blam::{BlamNode, CompressedSocTrace, SocSample};
use blam_battery::{Battery, PowerSwitch, Supercap, SwitchOutcome};
use blam_energy_harvest::DiurnalPersistence;
use blam_energy_harvest::{HarvestSource, NodeHarvest};
use blam_lora_phy::{Channel, LinkBudget, RadioPowerModel, TxConfig, TxEnergyCache};
use blam_lorawan::{AdrCommand, ClassAMac, TransmissionId};
use blam_units::{Duration, Joules, SimTime, Watts};
use serde::{Deserialize, Serialize};

use crate::metrics::NodeMetrics;
use crate::nodes::{NodeForecaster, PacketState};
use crate::policy::PolicyState;
use crate::topology::NodePlacement;

/// Cold per-node state: everything the event handlers touch at most a
/// few times per sampling period. One arena slot per node, indexed by
/// the same local index as the hot columns.
#[derive(Debug)]
pub(crate) struct NodeCold {
    /// Radio situation (serving-gateway link).
    pub(crate) placement: NodePlacement,
    /// Link budgets to every reachable gateway, indexed by the engine's
    /// local gateway index.
    pub(crate) gateway_links: Vec<LinkBudget>,
    /// Receptions in flight at the gateways: (exchange epoch, gateway,
    /// reception id, RSSI dBm).
    pub(crate) inflight: Vec<(u64, usize, TransmissionId, f64)>,
    /// LoRaWAN Class-A MAC.
    pub(crate) mac: ClassAMac,
    /// BLAM protocol state (None for the LoRaWAN baseline).
    pub(crate) blam: Option<BlamNode>,
    /// Policy-private per-node state (wear throttle, power latch, …).
    pub(crate) policy_state: PolicyState,
    /// The rechargeable battery.
    pub(crate) battery: Battery,
    /// Software-defined battery switch (θ-capped for BLAM).
    pub(crate) switch: PowerSwitch,
    /// Optional supercapacitor buffer in front of the battery.
    pub(crate) supercap: Option<Supercap>,
    /// Solar harvest source.
    pub(crate) harvest: NodeHarvest,
    /// Green-energy forecaster.
    pub(crate) forecaster: NodeForecaster,
    /// Radio electrical model.
    pub(crate) radio: RadioPowerModel,
    /// Baseline non-radio draw.
    pub(crate) mcu_sleep: Watts,
    /// Pending ADR command carried by the next ACK.
    pub(crate) pending_adr: Option<AdrCommand>,
    /// Compressed SoC traces awaiting delivery, oldest first.
    pub(crate) trace_queue: VecDeque<(SimTime, CompressedSocTrace)>,
    /// Utility curve used for this node's metric accounting.
    pub(crate) utility: Utility,
    /// Memoized per-attempt transmission energy.
    pub(crate) tx_energy_cache: TxEnergyCache,
    /// Metrics accumulator.
    pub(crate) metrics: NodeMetrics,
}

/// Everything `build_nodes` decides for one node, handed to
/// [`NodeStore::push`]. Runtime-only slots (pending events, latches,
/// scratch rows) start at their defaults.
pub(crate) struct NodeSeed {
    pub(crate) global_id: u32,
    pub(crate) period: Duration,
    pub(crate) windows: usize,
    pub(crate) current_phy_len: usize,
    pub(crate) current_channel: Channel,
    pub(crate) placement: NodePlacement,
    pub(crate) gateway_links: Vec<LinkBudget>,
    pub(crate) mac: ClassAMac,
    pub(crate) blam: Option<BlamNode>,
    pub(crate) policy_state: PolicyState,
    pub(crate) battery: Battery,
    pub(crate) switch: PowerSwitch,
    pub(crate) supercap: Option<Supercap>,
    pub(crate) harvest: NodeHarvest,
    pub(crate) forecaster: NodeForecaster,
    pub(crate) radio: RadioPowerModel,
    pub(crate) mcu_sleep: Watts,
    pub(crate) utility: Utility,
}

/// Struct-of-arrays node storage (see the module docs for the layout).
#[derive(Debug, Default)]
pub(crate) struct NodeStore {
    /// Total nodes in the whole deployment (≥ `len()` for cell splits;
    /// telemetry headers and merge buffers are sized by this).
    total: usize,
    // ---- hot columns, indexed by local node index ----
    pub(crate) global_id: Vec<u32>,
    pub(crate) period: Vec<Duration>,
    pub(crate) windows: Vec<usize>,
    pub(crate) period_start: Vec<SimTime>,
    pub(crate) prev_period_start: Vec<Option<SimTime>>,
    pub(crate) last_settle: Vec<SimTime>,
    pub(crate) exchange_epoch: Vec<u64>,
    pub(crate) current_phy_len: Vec<usize>,
    pub(crate) current_channel: Vec<Channel>,
    pub(crate) pending_deadline: Vec<Option<blam_des::EventId>>,
    pub(crate) pending_weight: Vec<Option<u8>>,
    pub(crate) weight_updated_at: Vec<Option<SimTime>>,
    pub(crate) packet: Vec<Option<PacketState>>,
    pub(crate) discharge_sample: Vec<Option<SocSample>>,
    pub(crate) recharge_sample: Vec<Option<SocSample>>,
    pub(crate) cold_start: Vec<bool>,
    pub(crate) wu_expired_latched: Vec<bool>,
    pub(crate) cap_latched: Vec<bool>,
    /// Row boundaries of the scratch matrices: node `i` owns
    /// `forecast[scratch_bounds[i]..scratch_bounds[i + 1]]` (and the
    /// same row of `plan`), one slot per forecast window.
    pub(crate) scratch_bounds: Vec<usize>,
    /// Flat forecast matrix (green-energy prediction per window).
    pub(crate) forecast: Vec<Joules>,
    /// Flat Eq. (14) per-window energy matrix.
    pub(crate) plan: Vec<Joules>,
    // ---- cold arena ----
    pub(crate) cold: Vec<NodeCold>,
}

impl NodeStore {
    /// An empty store for a deployment of `total` nodes.
    pub(crate) fn with_total(total: usize) -> Self {
        NodeStore {
            total,
            scratch_bounds: vec![0],
            ..NodeStore::default()
        }
    }

    /// Number of nodes in this store (the local count for a cell).
    pub(crate) fn len(&self) -> usize {
        self.cold.len()
    }

    /// Total nodes in the whole deployment.
    pub(crate) fn total(&self) -> usize {
        self.total
    }

    /// The global node id (device address) of local node `i`.
    pub(crate) fn global_id(&self, i: usize) -> u32 {
        self.global_id[i]
    }

    /// The sampling period of local node `i`.
    pub(crate) fn period_of(&self, i: usize) -> Duration {
        self.period[i]
    }

    /// The exchange epoch of local node `i` (stale-event guard).
    pub(crate) fn exchange_epoch_of(&self, i: usize) -> u64 {
        self.exchange_epoch[i]
    }

    /// The current (possibly ADR-adjusted) placement of local node `i`.
    pub(crate) fn placement_of(&self, i: usize) -> NodePlacement {
        self.cold[i].placement
    }

    /// Clones every node's metrics in local order (result assembly).
    pub(crate) fn metrics_snapshot(&self) -> Vec<NodeMetrics> {
        self.cold.iter().map(|c| c.metrics.clone()).collect()
    }

    /// Appends one freshly built node.
    pub(crate) fn push(&mut self, seed: NodeSeed) {
        let NodeSeed {
            global_id,
            period,
            windows,
            current_phy_len,
            current_channel,
            placement,
            gateway_links,
            mac,
            blam,
            policy_state,
            battery,
            switch,
            supercap,
            harvest,
            forecaster,
            radio,
            mcu_sleep,
            utility,
        } = seed;
        self.global_id.push(global_id);
        self.period.push(period);
        self.windows.push(windows);
        self.period_start.push(SimTime::ZERO);
        self.prev_period_start.push(None);
        self.last_settle.push(SimTime::ZERO);
        self.exchange_epoch.push(0);
        self.current_phy_len.push(current_phy_len);
        self.current_channel.push(current_channel);
        self.pending_deadline.push(None);
        self.pending_weight.push(None);
        self.weight_updated_at.push(None);
        self.packet.push(None);
        self.discharge_sample.push(None);
        self.recharge_sample.push(None);
        self.cold_start.push(false);
        self.wu_expired_latched.push(false);
        self.cap_latched.push(false);
        let end = self.forecast.len() + windows;
        self.scratch_bounds.push(end);
        self.forecast.resize(end, Joules(0.0));
        self.plan.resize(end, Joules(0.0));
        self.cold.push(NodeCold {
            placement,
            gateway_links,
            inflight: Vec::new(),
            mac,
            blam,
            policy_state,
            battery,
            switch,
            supercap,
            harvest,
            forecaster,
            radio,
            mcu_sleep,
            pending_adr: None,
            trace_queue: VecDeque::new(),
            utility,
            tx_energy_cache: TxEnergyCache::default(),
            metrics: NodeMetrics::default(),
        });
    }

    /// The mutable view of local node `i`: disjoint `&mut` borrows of
    /// every hot column slot, the node's scratch rows, and the cold
    /// arena slot, under the former `SimNode` field names.
    pub(crate) fn node_mut(&mut self, i: usize) -> NodeMut<'_> {
        let (row_start, row_end) = (self.scratch_bounds[i], self.scratch_bounds[i + 1]);
        let cold = &mut self.cold[i];
        NodeMut {
            id: self.global_id[i],
            period: &mut self.period[i],
            windows: &mut self.windows[i],
            period_start: &mut self.period_start[i],
            prev_period_start: &mut self.prev_period_start[i],
            last_settle: &mut self.last_settle[i],
            exchange_epoch: &mut self.exchange_epoch[i],
            current_phy_len: &mut self.current_phy_len[i],
            current_channel: &mut self.current_channel[i],
            pending_deadline: &mut self.pending_deadline[i],
            pending_weight: &mut self.pending_weight[i],
            weight_updated_at: &mut self.weight_updated_at[i],
            packet: &mut self.packet[i],
            discharge_sample: &mut self.discharge_sample[i],
            recharge_sample: &mut self.recharge_sample[i],
            cold_start: &mut self.cold_start[i],
            wu_expired_latched: &mut self.wu_expired_latched[i],
            cap_latched: &mut self.cap_latched[i],
            forecast_scratch: &mut self.forecast[row_start..row_end],
            plan_scratch: &mut self.plan[row_start..row_end],
            placement: &mut cold.placement,
            gateway_links: &mut cold.gateway_links,
            inflight: &mut cold.inflight,
            mac: &mut cold.mac,
            blam: &mut cold.blam,
            policy_state: &mut cold.policy_state,
            battery: &mut cold.battery,
            switch: &mut cold.switch,
            supercap: &mut cold.supercap,
            harvest: &mut cold.harvest,
            forecaster: &mut cold.forecaster,
            radio: &mut cold.radio,
            mcu_sleep: &mut cold.mcu_sleep,
            pending_adr: &mut cold.pending_adr,
            trace_queue: &mut cold.trace_queue,
            utility: &mut cold.utility,
            tx_energy_cache: &mut cold.tx_energy_cache,
            metrics: &mut cold.metrics,
        }
    }

    /// Splits a freshly built global store into `cells` per-cell
    /// stores. Node `i` lands in `cell_of_node[i]`; within each cell,
    /// nodes keep ascending global-id order, and every sub-store
    /// remembers the deployment-wide `total`. Scratch matrices are
    /// rebuilt per cell (they are plan-time scratch, fully overwritten
    /// before every read).
    ///
    /// # Panics
    ///
    /// Panics if `cell_of_node` is shorter than the store or names a
    /// cell `>= cells`.
    pub(crate) fn split(self, cell_of_node: &[usize], cells: usize) -> Vec<NodeStore> {
        let NodeStore {
            total,
            global_id,
            period,
            windows,
            period_start,
            prev_period_start,
            last_settle,
            exchange_epoch,
            current_phy_len,
            current_channel,
            pending_deadline,
            pending_weight,
            weight_updated_at,
            packet,
            discharge_sample,
            recharge_sample,
            cold_start,
            wu_expired_latched,
            cap_latched,
            scratch_bounds: _,
            forecast: _,
            plan: _,
            cold,
        } = self;
        let mut out: Vec<NodeStore> = (0..cells).map(|_| NodeStore::with_total(total)).collect();
        for (i, cold_slot) in cold.into_iter().enumerate() {
            let cell = cell_of_node[i];
            let dst = &mut out[cell];
            dst.global_id.push(global_id[i]);
            dst.period.push(period[i]);
            dst.windows.push(windows[i]);
            dst.period_start.push(period_start[i]);
            dst.prev_period_start.push(prev_period_start[i]);
            dst.last_settle.push(last_settle[i]);
            dst.exchange_epoch.push(exchange_epoch[i]);
            dst.current_phy_len.push(current_phy_len[i]);
            dst.current_channel.push(current_channel[i]);
            dst.pending_deadline.push(pending_deadline[i]);
            dst.pending_weight.push(pending_weight[i]);
            dst.weight_updated_at.push(weight_updated_at[i]);
            dst.packet.push(packet[i]);
            dst.discharge_sample.push(discharge_sample[i]);
            dst.recharge_sample.push(recharge_sample[i]);
            dst.cold_start.push(cold_start[i]);
            dst.wu_expired_latched.push(wu_expired_latched[i]);
            dst.cap_latched.push(cap_latched[i]);
            let end = dst.forecast.len() + windows[i];
            dst.scratch_bounds.push(end);
            dst.forecast.resize(end, Joules(0.0));
            dst.plan.resize(end, Joules(0.0));
            dst.cold.push(cold_slot);
        }
        out
    }

    /// Restricts every node's gateway link table to the single serving
    /// gateway `g`, which becomes the cell engine's local gateway 0.
    /// Called once right after a [`split`](NodeStore::split); the
    /// cross-cell audibility dropped here is exactly what
    /// [`ShardPlan::boundary`](crate::topology::ShardPlan::boundary)
    /// quantifies.
    pub(crate) fn retain_gateway(&mut self, g: usize) {
        for cold in &mut self.cold {
            let link = cold.gateway_links[g];
            cold.gateway_links.clear();
            cold.gateway_links.push(link);
        }
    }

    /// Bytes of heap memory the hot columns and scratch matrices hold —
    /// the dense working set a scale run's RSS is dominated by (cold
    /// arena slots own further heap behind pointers not counted here).
    pub(crate) fn hot_bytes(&self) -> usize {
        use std::mem::size_of;
        self.global_id.capacity() * size_of::<u32>()
            + self.period.capacity() * size_of::<Duration>()
            + self.windows.capacity() * size_of::<usize>()
            + self.period_start.capacity() * size_of::<SimTime>()
            + self.prev_period_start.capacity() * size_of::<Option<SimTime>>()
            + self.last_settle.capacity() * size_of::<SimTime>()
            + self.exchange_epoch.capacity() * size_of::<u64>()
            + self.current_phy_len.capacity() * size_of::<usize>()
            + self.current_channel.capacity() * size_of::<Channel>()
            + self.pending_deadline.capacity() * size_of::<Option<blam_des::EventId>>()
            + self.pending_weight.capacity() * size_of::<Option<u8>>()
            + self.weight_updated_at.capacity() * size_of::<Option<SimTime>>()
            + self.packet.capacity() * size_of::<Option<PacketState>>()
            + self.discharge_sample.capacity() * size_of::<Option<SocSample>>()
            + self.recharge_sample.capacity() * size_of::<Option<SocSample>>()
            + 3 * self.cold_start.capacity() * size_of::<bool>()
            + self.scratch_bounds.capacity() * size_of::<usize>()
            + (self.forecast.capacity() + self.plan.capacity()) * size_of::<Joules>()
            + self.cold.capacity() * size_of::<NodeCold>()
    }

    /// Captures every mutable column and cold field into a
    /// serializable [`StoreState`] for a mid-run checkpoint.
    ///
    /// The exhaustive destructures (no `..`) are the completeness
    /// guard: adding a column to the store or a field to [`NodeCold`]
    /// without deciding its checkpoint treatment fails to compile
    /// here. Deliberately skipped: the scratch matrices (plan-time
    /// scratch, fully rewritten before every read), and the build-time
    /// constants / pure caches in the cold arena — a restore overlays
    /// the snapshot onto a freshly built store that already carries
    /// them.
    pub(crate) fn checkpoint(&self) -> StoreState {
        let NodeStore {
            total: _,
            global_id,
            period,
            windows,
            period_start,
            prev_period_start,
            last_settle,
            exchange_epoch,
            current_phy_len,
            current_channel,
            pending_deadline,
            pending_weight,
            weight_updated_at,
            packet,
            discharge_sample,
            recharge_sample,
            cold_start,
            wu_expired_latched,
            cap_latched,
            scratch_bounds: _,
            forecast: _,
            plan: _,
            cold,
        } = self;
        let cold = cold
            .iter()
            .map(|slot| {
                let NodeCold {
                    placement,
                    gateway_links,
                    inflight,
                    mac,
                    blam,
                    policy_state,
                    battery,
                    switch,
                    supercap,
                    harvest: _,
                    forecaster,
                    radio: _,
                    mcu_sleep: _,
                    pending_adr,
                    trace_queue,
                    utility: _,
                    tx_energy_cache: _,
                    metrics,
                } = slot;
                ColdState {
                    placement: *placement,
                    gateway_links: gateway_links.clone(),
                    inflight: inflight.clone(),
                    mac: mac.clone(),
                    blam: blam.clone(),
                    policy_state: policy_state.clone(),
                    battery: battery.clone(),
                    switch: *switch,
                    supercap: *supercap,
                    forecaster: forecaster.checkpoint(),
                    pending_adr: *pending_adr,
                    trace_queue: trace_queue.iter().cloned().collect(),
                    metrics: metrics.clone(),
                }
            })
            .collect();
        StoreState {
            global_id: global_id.clone(),
            period: period.clone(),
            windows: windows.clone(),
            period_start: period_start.clone(),
            prev_period_start: prev_period_start.clone(),
            last_settle: last_settle.clone(),
            exchange_epoch: exchange_epoch.clone(),
            current_phy_len: current_phy_len.clone(),
            current_channel: current_channel.clone(),
            pending_deadline: pending_deadline.clone(),
            pending_weight: pending_weight.clone(),
            weight_updated_at: weight_updated_at.clone(),
            packet: packet.clone(),
            discharge_sample: discharge_sample.clone(),
            recharge_sample: recharge_sample.clone(),
            cold_start: cold_start.clone(),
            wu_expired_latched: wu_expired_latched.clone(),
            cap_latched: cap_latched.clone(),
            cold,
        }
    }

    /// Overlays a checkpointed [`StoreState`] onto this freshly built
    /// store.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot describes different nodes (ids or
    /// forecast-window layout) than the rebuilt store — resuming under
    /// a different scenario configuration.
    pub(crate) fn restore_state(&mut self, state: StoreState) {
        assert_eq!(
            state.global_id, self.global_id,
            "snapshot node ids differ from the rebuilt store"
        );
        assert_eq!(
            state.windows, self.windows,
            "snapshot forecast-window layout differs from the rebuilt store"
        );
        self.period = state.period;
        self.period_start = state.period_start;
        self.prev_period_start = state.prev_period_start;
        self.last_settle = state.last_settle;
        self.exchange_epoch = state.exchange_epoch;
        self.current_phy_len = state.current_phy_len;
        self.current_channel = state.current_channel;
        self.pending_deadline = state.pending_deadline;
        self.pending_weight = state.pending_weight;
        self.weight_updated_at = state.weight_updated_at;
        self.packet = state.packet;
        self.discharge_sample = state.discharge_sample;
        self.recharge_sample = state.recharge_sample;
        self.cold_start = state.cold_start;
        self.wu_expired_latched = state.wu_expired_latched;
        self.cap_latched = state.cap_latched;
        for (slot, saved) in self.cold.iter_mut().zip(state.cold) {
            slot.placement = saved.placement;
            slot.gateway_links = saved.gateway_links;
            slot.inflight = saved.inflight;
            slot.mac = saved.mac;
            slot.blam = saved.blam;
            slot.policy_state = saved.policy_state;
            slot.battery = saved.battery;
            slot.switch = saved.switch;
            slot.supercap = saved.supercap;
            slot.forecaster.restore_state(saved.forecaster);
            slot.pending_adr = saved.pending_adr;
            slot.trace_queue = saved.trace_queue.into();
            slot.metrics = saved.metrics;
        }
    }
}

/// Serializable image of one node's mutable cold state (see
/// [`NodeStore::checkpoint`] for what is deliberately skipped).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct ColdState {
    pub(crate) placement: NodePlacement,
    pub(crate) gateway_links: Vec<LinkBudget>,
    pub(crate) inflight: Vec<(u64, usize, TransmissionId, f64)>,
    pub(crate) mac: ClassAMac,
    pub(crate) blam: Option<BlamNode>,
    pub(crate) policy_state: PolicyState,
    pub(crate) battery: Battery,
    pub(crate) switch: PowerSwitch,
    pub(crate) supercap: Option<Supercap>,
    /// `Some` only for the persistence forecaster — the oracle
    /// variants carry no mutable state.
    pub(crate) forecaster: Option<DiurnalPersistence>,
    pub(crate) pending_adr: Option<AdrCommand>,
    pub(crate) trace_queue: Vec<(SimTime, CompressedSocTrace)>,
    pub(crate) metrics: NodeMetrics,
}

/// Serializable image of a [`NodeStore`]'s mutable columns, one vector
/// per column in local node order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct StoreState {
    pub(crate) global_id: Vec<u32>,
    pub(crate) period: Vec<Duration>,
    pub(crate) windows: Vec<usize>,
    pub(crate) period_start: Vec<SimTime>,
    pub(crate) prev_period_start: Vec<Option<SimTime>>,
    pub(crate) last_settle: Vec<SimTime>,
    pub(crate) exchange_epoch: Vec<u64>,
    pub(crate) current_phy_len: Vec<usize>,
    pub(crate) current_channel: Vec<Channel>,
    pub(crate) pending_deadline: Vec<Option<blam_des::EventId>>,
    pub(crate) pending_weight: Vec<Option<u8>>,
    pub(crate) weight_updated_at: Vec<Option<SimTime>>,
    pub(crate) packet: Vec<Option<PacketState>>,
    pub(crate) discharge_sample: Vec<Option<SocSample>>,
    pub(crate) recharge_sample: Vec<Option<SocSample>>,
    pub(crate) cold_start: Vec<bool>,
    pub(crate) wu_expired_latched: Vec<bool>,
    pub(crate) cap_latched: Vec<bool>,
    pub(crate) cold: Vec<ColdState>,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every hot column except the three scratch fields must appear in
    /// the serialized snapshot: 18 column vectors plus the cold
    /// arena. A shrinking count here means a column was dropped from
    /// [`StoreState`] without updating this contract.
    #[test]
    fn snapshot_covers_every_checkpointed_column() {
        let state = NodeStore::with_total(0).checkpoint();
        let json = serde_json::to_value(&state).expect("store state serializes");
        let map = json.as_object().expect("store state is a JSON object");
        assert_eq!(map.len(), 19, "StoreState field count changed: {:?}", {
            let mut keys: Vec<&String> = map.keys().collect();
            keys.sort();
            keys
        });
    }
}

/// Mutable view of one node: the hot-column slots, scratch rows and
/// cold state of a single device, borrowed disjointly from the store.
///
/// This is the node type the engine's event handlers and every
/// [`MacPolicy`](crate::policy::MacPolicy) implementation work
/// against — the storage layout stays private to `store.rs`.
#[derive(Debug)]
pub struct NodeMut<'a> {
    /// Global node id (= LoRaWAN device address). Stable across cell
    /// splits: telemetry, ledger records and frames always carry it.
    pub id: u32,
    /// Sampling period τ.
    pub period: &'a mut Duration,
    /// Forecast windows per period |T|.
    pub windows: &'a mut usize,
    /// Start of the current sampling period (= last generation time).
    pub period_start: &'a mut SimTime,
    /// Start of the previous period (forecaster feedback and trace
    /// anchoring).
    pub prev_period_start: &'a mut Option<SimTime>,
    /// Last energy-settlement instant.
    pub last_settle: &'a mut SimTime,
    /// Monotone exchange counter guarding stale in-flight events.
    pub exchange_epoch: &'a mut u64,
    /// PHY payload length of the uplink currently in flight.
    pub current_phy_len: &'a mut usize,
    /// Channel of the uplink currently in flight.
    pub current_channel: &'a mut Channel,
    /// Pending RX-deadline event (cancelled when the ACK wins).
    pub pending_deadline: &'a mut Option<blam_des::EventId>,
    /// Pending normalized-degradation byte carried by the next ACK.
    pub pending_weight: &'a mut Option<u8>,
    /// When the node last applied a disseminated `w_u` byte.
    pub weight_updated_at: &'a mut Option<SimTime>,
    /// The packet currently being handled.
    pub packet: &'a mut Option<PacketState>,
    /// SoC sample after this period's transmission discharge.
    pub discharge_sample: &'a mut Option<SocSample>,
    /// SoC sample at this period's last recharge.
    pub recharge_sample: &'a mut Option<SocSample>,
    /// Set by a reboot: the next packet transmits immediately.
    pub cold_start: &'a mut bool,
    /// Edge-trigger latch for the `WuExpired` telemetry event.
    pub wu_expired_latched: &'a mut bool,
    /// Edge-trigger latch for the `SocCapped` telemetry event.
    pub cap_latched: &'a mut bool,
    /// This node's row of the flat forecast matrix (one slot per
    /// forecast window), fully rewritten by every plan.
    pub forecast_scratch: &'a mut [Joules],
    /// This node's row of the flat Eq. (14) energy matrix.
    pub plan_scratch: &'a mut [Joules],
    /// Radio situation (serving-gateway link).
    pub placement: &'a mut NodePlacement,
    /// Link budgets to every reachable gateway (local gateway index).
    pub gateway_links: &'a mut Vec<LinkBudget>,
    /// Receptions in flight at the gateways: (exchange epoch, gateway,
    /// reception id, RSSI dBm).
    pub inflight: &'a mut Vec<(u64, usize, TransmissionId, f64)>,
    /// LoRaWAN Class-A MAC.
    pub mac: &'a mut ClassAMac,
    /// BLAM protocol state (None for the LoRaWAN baseline).
    pub blam: &'a mut Option<BlamNode>,
    /// Policy-private per-node state ([`PolicyState::Stateless`] for
    /// policies without one).
    pub policy_state: &'a mut PolicyState,
    /// The rechargeable battery.
    pub battery: &'a mut Battery,
    /// Software-defined battery switch (θ-capped for BLAM).
    pub switch: &'a mut PowerSwitch,
    /// Optional supercapacitor buffer in front of the battery.
    pub supercap: &'a mut Option<Supercap>,
    /// Solar harvest source.
    pub harvest: &'a mut NodeHarvest,
    /// Green-energy forecaster.
    pub forecaster: &'a mut NodeForecaster,
    /// Radio electrical model.
    pub radio: &'a mut RadioPowerModel,
    /// Baseline non-radio draw.
    pub mcu_sleep: &'a mut Watts,
    /// Pending ADR command carried by the next ACK.
    pub pending_adr: &'a mut Option<AdrCommand>,
    /// Compressed SoC traces awaiting delivery, oldest first (anchor
    /// time, trace).
    pub trace_queue: &'a mut VecDeque<(SimTime, CompressedSocTrace)>,
    /// Utility curve used for this node's metric accounting.
    pub utility: &'a mut Utility,
    /// Memoized per-attempt transmission energy.
    pub tx_energy_cache: &'a mut TxEnergyCache,
    /// Metrics accumulator.
    pub metrics: &'a mut NodeMetrics,
}

impl NodeMut<'_> {
    /// The node's uplink radio configuration.
    #[must_use]
    pub fn tx_config(&self) -> TxConfig {
        self.mac.params().tx
    }

    /// Total baseline sleep draw (MCU + radio sleep).
    #[must_use]
    pub fn sleep_power(&self) -> Watts {
        *self.mcu_sleep + self.radio.sleep_power_draw()
    }

    /// The forecast-window index of `at` within the current period
    /// (clamped to the last window).
    #[must_use]
    pub fn window_index(&self, at: SimTime, window: Duration) -> usize {
        let idx = (at.saturating_since(*self.period_start) / window) as usize;
        idx.min(self.windows.saturating_sub(1))
    }

    /// Settles energy bookkeeping up to `now`: harvest since the last
    /// settlement and baseline sleep draw flow through the switch,
    /// together with `extra_demand` (a transmission or receive-window
    /// cost landing at `now`).
    ///
    /// Records the period's recharge sample whenever the battery
    /// charged, mirroring the hardware interrupt the paper uses to
    /// capture the last recharge transition.
    pub fn settle(
        &mut self,
        now: SimTime,
        extra_demand: Joules,
        forecast_window: Duration,
    ) -> SwitchOutcome {
        let from = *self.last_settle;
        let mut harvested = if now > from {
            self.harvest.energy_between(from, now)
        } else {
            Joules::ZERO
        };
        let mut demand = self.sleep_power() * now.saturating_since(from) + extra_demand;
        // A supercapacitor buffer, when present, absorbs surplus and
        // serves demand before the battery is touched — shielding the
        // battery's rainflow record from shallow transmission cycles.
        if let Some(cap) = self.supercap.as_mut() {
            cap.leak(now.saturating_since(from));
            let direct = harvested.min(demand);
            let mut surplus = harvested - direct;
            let mut shortfall = demand - direct;
            shortfall -= cap.discharge(shortfall);
            surplus -= cap.charge(surplus);
            harvested = direct + surplus;
            demand = direct + shortfall;
        }
        let out = self.switch.step(now, &mut *self.battery, harvested, demand);
        *self.last_settle = now;
        if out.charged.0 > 0.0 {
            let w = self.window_index(now, forecast_window) as u8;
            *self.recharge_sample = Some(SocSample::new(w, self.battery.soc()));
        }
        if out.deficit.0 > 0.0 {
            self.metrics.brownout_events += 1;
        }
        out
    }
}
