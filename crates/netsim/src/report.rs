//! Human-readable run reports.
//!
//! A [`RunResult`] carries everything the experiments need; this module
//! renders the summary views shared by the CLI, the examples and the
//! experiment binaries, so the formatting (and its tests) live in one
//! place.

use std::fmt::Write as _;

use crate::engine::RunResult;

/// Renders the headline metrics of a run as an aligned text block.
///
/// # Examples
///
/// ```no_run
/// use blam_netsim::{config::Protocol, report, Scenario};
///
/// let run = Scenario::testbed(Protocol::h(1.0), 1).run();
/// println!("{}", report::summary(&run));
/// ```
#[must_use]
pub fn summary(run: &RunResult) -> String {
    let n = &run.network;
    let mut out = String::new();
    let _ = writeln!(out, "protocol            : {}", run.label);
    let _ = writeln!(
        out,
        "packets             : {} generated, {} delivered",
        n.generated, n.delivered
    );
    let _ = writeln!(out, "PRR                 : {:.2}%", 100.0 * n.prr);
    let _ = writeln!(out, "avg utility         : {:.3}", n.avg_utility);
    let _ = writeln!(
        out,
        "avg latency (deliv) : {:.1} s",
        n.avg_latency_delivered_secs
    );
    let _ = writeln!(out, "avg RETX            : {:.3}", n.avg_retx);
    let _ = writeln!(
        out,
        "TX energy (Eq. 6)   : {:.1} J",
        n.total_tx_energy_eq6.0
    );
    let _ = writeln!(
        out,
        "degradation         : mean {:.5}, max {:.5}, variance {:.3e}",
        n.degradation.mean, n.degradation.max, n.degradation.variance
    );
    let _ = match run.first_eol {
        Some((node, at)) => writeln!(out, "first EoL           : node {node} at {at}"),
        None => writeln!(out, "first EoL           : not reached"),
    };
    out
}

/// Minimum label-column width: wide enough for the `MAC` header and
/// the historical two-policy table layout.
const MIN_LABEL_WIDTH: usize = 8;

fn row_with_width(run: &RunResult, width: usize) -> String {
    let n = &run.network;
    format!(
        "{:<width$} {:>6.1}% {:>9.3} {:>10.1}s {:>8.2} {:>12.5}",
        run.label,
        100.0 * n.prr,
        n.avg_utility,
        n.avg_latency_delivered_secs,
        n.avg_retx,
        n.degradation.mean,
    )
}

fn header_with_width(width: usize) -> String {
    format!(
        "{:<width$} {:>7} {:>9} {:>11} {:>8} {:>12}",
        "MAC", "PRR", "utility", "latency", "RETX", "mean deg."
    )
}

/// Renders one row of a protocol-comparison table (pair with
/// [`comparison_header`]). Fixed legacy label width — for tables over
/// policies with longer labels use [`comparison_table`], which sizes
/// the label column to its contents.
#[must_use]
pub fn comparison_row(run: &RunResult) -> String {
    row_with_width(run, MIN_LABEL_WIDTH)
}

/// The header line matching [`comparison_row`].
#[must_use]
pub fn comparison_header() -> String {
    header_with_width(MIN_LABEL_WIDTH)
}

/// Renders a full protocol-comparison table — header plus one row per
/// run — with the label column sized to the widest label, so any
/// number of policies with labels of any length stay aligned.
#[must_use]
pub fn comparison_table(runs: &[RunResult]) -> String {
    let width = runs
        .iter()
        .map(|r| r.label.len())
        .chain(std::iter::once(MIN_LABEL_WIDTH))
        .max()
        .unwrap_or(MIN_LABEL_WIDTH);
    let mut out = String::new();
    let _ = writeln!(out, "{}", header_with_width(width));
    for run in runs {
        let _ = writeln!(out, "{}", row_with_width(run, width));
    }
    out
}

/// Renders the per-month maximum-degradation series (the Fig. 7 view).
#[must_use]
pub fn degradation_series(run: &RunResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:>8} {:>12}", "years", "max deg.");
    for s in &run.samples {
        let _ = writeln!(out, "{:>8.2} {:>12.5}", s.at.as_years_f64(), s.max_total());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Protocol;
    use crate::Scenario;
    use blam_units::Duration;

    fn tiny_run() -> RunResult {
        Scenario::large_scale(5, Protocol::h(0.5), 3)
            .with_duration(Duration::from_days(2))
            .with_sample_interval(Duration::from_days(1))
            .run()
    }

    #[test]
    fn summary_contains_all_headline_metrics() {
        let run = tiny_run();
        let text = summary(&run);
        for needle in [
            "protocol",
            "H-50",
            "PRR",
            "utility",
            "latency",
            "RETX",
            "TX energy",
            "degradation",
            "first EoL",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn comparison_row_aligns_with_header() {
        let run = tiny_run();
        let header = comparison_header();
        let row = comparison_row(&run);
        assert!(row.starts_with("H-50"));
        // Same column structure: equal field counts.
        assert_eq!(
            header.split_whitespace().count(),
            row.split_whitespace().count() + 1, // "mean deg." is two words
        );
    }

    #[test]
    fn comparison_table_sizes_label_column_to_widest_policy() {
        // "Batteryless" (11 chars) overflows the legacy 8-char label
        // column; the table must widen every row in lockstep.
        let days = Duration::from_days(2);
        let runs: Vec<RunResult> = Protocol::zoo()
            .into_iter()
            .map(|p| Scenario::large_scale(4, p, 3).with_duration(days).run())
            .collect();
        let table = comparison_table(&runs);
        let lines: Vec<&str> = table.lines().collect();
        // Header + one row per policy.
        assert_eq!(lines.len(), runs.len() + 1);
        // Every label survives intact (no truncation).
        for run in &runs {
            assert!(
                lines.iter().any(|l| l.starts_with(run.label.as_str())),
                "missing row for {} in:\n{table}",
                run.label
            );
        }
        // Columns stay aligned: the numeric block starts at the same
        // offset on every line, one past the widest label.
        let width = runs.iter().map(|r| r.label.len()).max().unwrap();
        for line in &lines {
            assert!(
                line.len() > width && line.as_bytes()[width] == b' ',
                "label column broke alignment: {line:?}"
            );
        }
    }

    #[test]
    fn degradation_series_has_one_line_per_sample() {
        let run = tiny_run();
        let text = degradation_series(&run);
        assert_eq!(text.lines().count(), run.samples.len() + 1);
    }
}
