//! The node layer: per-device state and the node lifecycle handlers —
//! generate → select window → transmit → retransmit — plus SoC/harvest
//! settlement and periodic degradation sampling. Protocol decisions are
//! delegated to the engine's [`MacPolicy`].
//!
//! Node state itself lives in the data-oriented `NodeStore` (see
//! `store.rs`): hot per-event scalars in dense columns, cold state in a
//! side arena. The handlers here — and every policy — work against the
//! [`NodeMut`] view, never the columns directly, so the layout can
//! evolve without touching the lifecycle.

use blam::{CompressedSocTrace, SocSample};
use blam_battery::{Battery, PowerSwitch, EOL_DEGRADATION};
use blam_des::Simulator;
use blam_energy_harvest::{
    DiurnalPersistence, Forecaster, HarvestSource, NodeHarvest, NoisyOracle, Oracle, SolarField,
};
use blam_lora_phy::{Bandwidth, CodingRate, Position, TxConfig};
use blam_lorawan::{
    ClassAMac, DeviceAddr, MacAction, MacParams, TxReport, Uplink, UplinkTransmission,
};
use blam_telemetry::{DropReason, EventKind, FaultKind};
use blam_units::{Dbm, Duration, Joules, SimTime, Watts};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::config::{ForecasterKind, ScenarioConfig};
use crate::engine::Engine;
use crate::events::Event;
use crate::metrics::DegradationSample;
use crate::policy::MacPolicy;
use crate::radio::rx_window_timeout;
use crate::store::{NodeSeed, NodeStore};
use crate::topology::Topology;

pub use crate::store::NodeMut;

/// The green-energy forecaster variants a node can run.
#[derive(Debug, Clone)]
pub enum NodeForecaster {
    /// Time-of-day persistence over locally observed harvest.
    Persistence(DiurnalPersistence),
    /// Clairvoyant (ablation upper bound).
    Oracle(Oracle<NodeHarvest>),
    /// Clairvoyant with multiplicative log-normal error (ablation).
    Noisy(NoisyOracle<NodeHarvest>),
}

impl Forecaster for NodeForecaster {
    fn observe(&mut self, start: SimTime, window: Duration, energy: Joules) {
        match self {
            NodeForecaster::Persistence(f) => f.observe(start, window, energy),
            NodeForecaster::Oracle(f) => f.observe(start, window, energy),
            NodeForecaster::Noisy(f) => f.observe(start, window, energy),
        }
    }

    fn predict(&self, start: SimTime, window: Duration) -> Joules {
        match self {
            NodeForecaster::Persistence(f) => f.predict(start, window),
            NodeForecaster::Oracle(f) => f.predict(start, window),
            NodeForecaster::Noisy(f) => f.predict(start, window),
        }
    }
}

impl NodeForecaster {
    /// The mutable forecaster state worth checkpointing: only the
    /// persistence forecaster learns from observations — the oracle
    /// variants are pure functions of the (build-time) harvest trace.
    pub(crate) fn checkpoint(&self) -> Option<DiurnalPersistence> {
        match self {
            NodeForecaster::Persistence(f) => Some(f.clone()),
            NodeForecaster::Oracle(_) | NodeForecaster::Noisy(_) => None,
        }
    }

    /// Overlays state captured by [`Self::checkpoint`] onto this
    /// freshly built forecaster.
    pub(crate) fn restore_state(&mut self, state: Option<DiurnalPersistence>) {
        if let (NodeForecaster::Persistence(f), Some(saved)) = (self, state) {
            *f = saved;
        }
    }
}

/// The in-flight packet of the current sampling period.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct PacketState {
    /// When the application generated the packet.
    pub generated_at: SimTime,
    /// The forecast window chosen for it.
    pub window: usize,
}

/// Constructs every end device of a scenario: radio configuration,
/// battery sizing, panel sizing, forecaster, and the policy-installed
/// protocol state. Draw order on `node_rng` (period, then shading, per
/// node) is part of the crate's determinism contract — changing it
/// changes every seeded experiment.
pub(crate) fn build_nodes(
    cfg: &ScenarioConfig,
    policy: &dyn MacPolicy,
    topology: &Topology,
    field: &SolarField,
    gw_positions: &[Position],
    node_rng: &mut ChaCha8Rng,
) -> NodeStore {
    let payload_overhead = policy.payload_overhead();
    let theta = policy.theta();
    let mut store = NodeStore::with_total(cfg.nodes);
    for i in 0..cfg.nodes {
        let placement = topology.placements[i];
        let tx = TxConfig::new(placement.sf, Bandwidth::Khz125, CodingRate::Cr4_5)
            .with_power(cfg.tx_power);
        // Whole-minute periods (as in the paper's "[16, 60] Min"
        // draw): nodes sharing a period stay phase-locked, which
        // is what creates the persistent collisions Eq. (14)
        // learns to escape.
        let period = Duration::from_mins(node_rng.gen_range(
            (cfg.period_min.as_millis() / 60_000)..=(cfg.period_max.as_millis() / 60_000),
        ));
        let windows = cfg.windows_in(period);
        let phy_len = cfg.payload_bytes + payload_overhead + blam_lorawan::MAC_OVERHEAD_BYTES;
        let tx_energy = cfg.radio.tx_energy(&tx, phy_len);
        let rx_energy = cfg.radio.rx_energy(rx_window_timeout(&cfg.plan) * 2);
        let sleep = cfg.mcu_sleep + cfg.radio.sleep_power_draw();

        // Battery sized to `battery_days` of average operation.
        let packets_per_day = 86_400.0 / period.as_secs_f64();
        let daily = sleep * Duration::from_days(1) + (tx_energy + rx_energy) * packets_per_day;
        let capacity = daily * cfg.battery_days;

        // Panel sized so peak power funds `solar_peak_tx_multiple`
        // transmissions per forecast window (the paper's rule).
        let peak =
            Watts(cfg.solar_peak_tx_multiple * tx_energy.0 / cfg.forecast_window.as_secs_f64());
        let region = field.region(i).clone();
        let shading = node_rng.gen_range(0.7..=1.0);
        let factor = (peak.0 / region.peak_power().0 * shading).min(1.0);
        let harvest = NodeHarvest::new(region, factor);

        let forecaster = match cfg.forecaster {
            ForecasterKind::DiurnalPersistence => {
                NodeForecaster::Persistence(DiurnalPersistence::new(cfg.forecast_window, 0.3))
            }
            ForecasterKind::Oracle => NodeForecaster::Oracle(Oracle::new(harvest.clone())),
            ForecasterKind::Noisy(sigma) => NodeForecaster::Noisy(NoisyOracle::new(
                harvest.clone(),
                sigma,
                cfg.seed ^ (i as u64),
            )),
        };

        // Eq. (15)'s E_max is the node's own worst-case single
        // transmission: its radio configuration at maximum
        // power. Normalizing per node lets the DIF span its
        // full [0, 1] range for every node regardless of SF.
        let e_max = cfg.radio.tx_energy(&tx.with_power(Dbm(20.0)), phy_len);
        let crate::policy::NodeProtocolState {
            blam,
            utility,
            policy: policy_state,
        } = policy.node_state(tx_energy, e_max, windows);

        let supercap = cfg
            .supercap_tx_multiple
            .map(|m| blam_battery::Supercap::new(tx_energy * m, Watts::from_milliwatts(0.001)));
        let gateway_links: Vec<_> = gw_positions
            .iter()
            .map(|&gp| {
                let d = blam_units::Meters(placement.position.distance_to(gp).0.max(1.0));
                blam_lora_phy::LinkBudget::new(d)
                    .with_path_loss(cfg.path_loss)
                    .with_shadowing(placement.link.shadowing)
            })
            .collect();
        let battery = if (i as f64) < cfg.aged_fraction * cfg.nodes as f64 {
            // Pre-aged battery: served `aged_years` near-full
            // (the LoRaWAN charging habit) with one shallow
            // cycle per day.
            let age = Duration::from_days((cfg.aged_years * 365.0) as u64);
            let daily = blam_battery::Cycle::full(0.95, 0.7);
            let prior_cycles = cfg.degradation.cycle_damage(&daily) * cfg.aged_years * 365.0;
            Battery::pre_aged(
                capacity,
                theta,
                cfg.temperature,
                cfg.degradation,
                age,
                0.85,
                prior_cycles,
            )
        } else {
            Battery::with_constants(capacity, theta, cfg.temperature, cfg.degradation)
        };
        store.push(NodeSeed {
            global_id: i as u32,
            period,
            windows,
            current_phy_len: phy_len,
            current_channel: cfg.plan.uplink[0],
            placement,
            gateway_links,
            mac: ClassAMac::new(MacParams {
                device: DeviceAddr(i as u32),
                plan: cfg.plan.clone(),
                tx,
                duty_cycle: cfg.duty_cycle,
                rx_window: rx_window_timeout(&cfg.plan),
                ..MacParams::default()
            }),
            blam,
            policy_state,
            battery,
            switch: PowerSwitch::new(theta),
            supercap,
            harvest,
            forecaster,
            radio: cfg.radio.clone(),
            mcu_sleep: cfg.mcu_sleep,
            utility,
        });
        // Commissioning pass: the policy may reallocate radio
        // parameters (Long-Lived LoRa's SF assignment) now that the
        // node is in the store. Draws no randomness, so policies using
        // the default no-op stay byte-identical to pre-hook builds.
        policy.on_commission(&mut store.node_mut(i));
    }
    store
}

impl Engine {
    /// Electrical energy of one uplink attempt at node `i`'s current
    /// radio configuration and in-flight payload length. The optimized
    /// engine reads the node's [`TxEnergyCache`]; the reference engine
    /// recomputes from the uncached Semtech formula every call. Both
    /// produce bit-identical joules.
    ///
    /// [`TxEnergyCache`]: blam_lora_phy::TxEnergyCache
    pub(crate) fn uplink_tx_energy(&mut self, i: usize) -> Joules {
        let reference = self.cfg.reference_impl;
        let node = self.store.node_mut(i);
        let cfg = node.tx_config();
        if reference {
            node.radio.tx_energy_direct(&cfg, *node.current_phy_len)
        } else {
            node.tx_energy_cache
                .energy(node.radio, &cfg, *node.current_phy_len)
        }
    }

    pub(crate) fn on_generate(&mut self, sim: &mut Simulator<Event>, now: SimTime, i: usize) {
        let window = self.cfg.forecast_window;
        // Next period's generation first, so a drop below can't stall
        // the node. Real crystals drift: each period slips by a small
        // uniform draw.
        let period = self.store.period_of(i);
        let drift_cap = self.cfg.period_drift.as_millis();
        let drifted = if drift_cap > 0 {
            let slip = self.mac_rng.gen_range(0..=2 * drift_cap);
            period + Duration::from_millis(slip) - Duration::from_millis(drift_cap)
        } else {
            period
        };
        sim.schedule(now + drifted, Event::Generate { node: i });

        // Conclude a still-running exchange from the previous period.
        if !self.store.node_mut(i).mac.is_idle() {
            if let Some(id) = self.store.node_mut(i).pending_deadline.take() {
                sim.cancel(id);
            }
            let report = self.store.node_mut(i).mac.abort(now);
            if let Some(report) = report {
                self.finish_exchange(now, i, &report);
            }
        }

        let policy = &self.policy;
        let mut node = self.store.node_mut(i);
        node.metrics.generated += 1;

        // Fold the finished period into protocol state (SoC trace for
        // the next uplink, forecaster feedback), then roll the period
        // bookkeeping over.
        policy.on_period_rollover(&mut node, now, window);

        *node.prev_period_start = Some(*node.period_start);
        *node.period_start = now;
        *node.discharge_sample = None;
        *node.recharge_sample = None;
        if self.telemetry_on() {
            self.emit(now, i, EventKind::PacketGenerated);
        }
        self.settle_node(now, i, Joules::ZERO);

        // Decide when to transmit.
        let policy = &self.policy;
        let mut node = self.store.node_mut(i);
        let chosen = policy.select_window(&mut node, now, window);

        match chosen {
            None => {
                // Algorithm 1 FAIL: drop the packet.
                node.metrics.dropped_no_window += 1;
                node.metrics.concluded += 1;
                node.metrics.latency_sum += *node.period;
                if self.telemetry_on() {
                    self.emit(
                        now,
                        i,
                        EventKind::PacketDropped {
                            reason: DropReason::NoWindow,
                        },
                    );
                }
            }
            Some(decision) => {
                let w = decision.window;
                node.metrics.record_window(w);
                *node.packet = Some(PacketState {
                    generated_at: now,
                    window: w,
                });
                let epoch = *node.exchange_epoch;
                // Degradation-ladder telemetry: a stale w_u losing
                // trust (edge-triggered) and the cold-start fallback.
                let mut wu_age = None;
                if decision.wu_trust < 1.0 && !*node.wu_expired_latched {
                    *node.wu_expired_latched = true;
                    wu_age = Some(
                        node.weight_updated_at
                            .map_or(0, |at| now.saturating_since(at).as_millis()),
                    );
                }
                if self.telemetry_on() {
                    if let Some(age_ms) = wu_age {
                        self.emit(now, i, EventKind::WuExpired { age_ms });
                    }
                    if decision.fallback {
                        self.emit(now, i, EventKind::FallbackWindow);
                    }
                }
                // Random offset within the window halves collision odds
                // without a measurable utility change (§III-B, "Network
                // dynamics and channel access").
                let jitter =
                    Duration::from_millis(self.mac_rng.gen_range(0..=(window.as_millis() / 2)));
                sim.schedule(
                    now + window * w as u64 + jitter,
                    Event::StartTx { node: i, epoch },
                );
                if self.telemetry_on() {
                    self.emit(
                        now,
                        i,
                        EventKind::WindowSelected {
                            window: w as u32,
                            dif: decision.dif,
                            utility_loss: decision.utility_loss,
                        },
                    );
                }
            }
        }
    }

    pub(crate) fn on_start_tx(
        &mut self,
        sim: &mut Simulator<Event>,
        now: SimTime,
        i: usize,
        epoch: u64,
    ) {
        if epoch != self.store.exchange_epoch_of(i) {
            // The node rebooted after this start was scheduled; the
            // packet it belonged to was already accounted as dropped.
            return;
        }
        self.settle_node(now, i, Joules::ZERO);
        let node = self.store.node_mut(i);
        if !node.mac.is_idle() {
            // Should not happen (exchanges are aborted at generation),
            // but stay safe: drop this packet.
            node.metrics.dropped_brownout += 1;
            node.metrics.concluded += 1;
            node.metrics.latency_sum += *node.period;
            *node.packet = None;
            if self.telemetry_on() {
                self.emit(
                    now,
                    i,
                    EventKind::PacketDropped {
                        reason: DropReason::MacBusy,
                    },
                );
            }
            return;
        }

        let piggyback = (!node.trace_queue.is_empty()).then_some(CompressedSocTrace::ENCODED_LEN);
        let mut frame = Uplink::confirmed(self.cfg.payload_bytes);
        frame.piggyback_len = piggyback.unwrap_or(0);
        *node.current_phy_len = frame.phy_payload_len();

        // Brownout check: the battery (plus harvest during the airtime,
        // which is negligible) must fund at least the first attempt —
        // and the policy's transmit gate must be clear (the battery-
        // less capacitor threshold refuses here).
        let required = self.uplink_tx_energy(i);
        let policy = &self.policy;
        let mut node = self.store.node_mut(i);
        if node.battery.stored() < required || !policy.clear_to_send(&mut node, now, required) {
            node.metrics.dropped_brownout += 1;
            node.metrics.concluded += 1;
            node.metrics.latency_sum += *node.period;
            *node.packet = None;
            if self.telemetry_on() {
                self.emit(
                    now,
                    i,
                    EventKind::PacketDropped {
                        reason: DropReason::Brownout,
                    },
                );
            }
            return;
        }

        let actions = node.mac.send(now, frame, &mut self.mac_rng);
        self.apply_actions(sim, now, i, &actions);
    }

    pub(crate) fn on_tx_end(
        &mut self,
        sim: &mut Simulator<Event>,
        now: SimTime,
        i: usize,
        epoch: u64,
    ) {
        let window = self.cfg.forecast_window;
        // Pay for the transmission.
        let tx_cost = self.uplink_tx_energy(i);
        self.settle_node(now, i, tx_cost);
        self.store.node_mut(i).metrics.tx_energy_electrical += tx_cost;
        // Record the discharge transition for the compressed trace —
        // through the (possibly faulty) SoC sensor, which misreads the
        // value the node reports without touching the real battery.
        {
            let mut soc = self.store.node_mut(i).battery.soc();
            if self.faults.sensor_enabled() {
                soc = self.faults.sensor_soc(i, soc);
                if self.telemetry_on() {
                    self.emit(
                        now,
                        i,
                        EventKind::FaultInjected {
                            fault: FaultKind::SensorNoise,
                        },
                    );
                }
            }
            let node = self.store.node_mut(i);
            let w = node.window_index(now, window) as u8;
            *node.discharge_sample = Some(SocSample::new(w, soc));
        }

        // The uplink counts if any gateway decoded it.
        let best_rx = self.conclude_receptions(i, epoch);
        if epoch != self.store.exchange_epoch_of(i) {
            // The exchange this transmission belonged to was aborted at
            // the next period's generation; the energy is spent and the
            // gateway entries concluded, but the MAC has moved on.
            return;
        }
        // Capture the on-air frame before feeding the MAC: an
        // unconfirmed exchange completes (and clears its frame) inside
        // on_tx_completed.
        let frame = self.current_frame(i);
        let actions = self.store.node_mut(i).mac.on_tx_completed(now);
        self.apply_actions(sim, now, i, &actions);

        let Some((rx_gateway, _)) = best_rx else {
            return;
        };
        // The uplink decoded: the server answers with an ACK in RX1.
        self.on_uplink_decoded(sim, now, i, epoch, rx_gateway, &frame);
    }

    /// The frame currently in flight for node `i` (from its MAC).
    pub(crate) fn current_frame(&self, i: usize) -> Uplink {
        self.store.cold[i]
            .mac
            .current_frame()
            .expect("a received uplink implies an exchange in progress")
    }

    pub(crate) fn on_ack_arrival(
        &mut self,
        sim: &mut Simulator<Event>,
        now: SimTime,
        i: usize,
        epoch: u64,
    ) {
        if epoch != self.store.exchange_epoch_of(i) {
            return;
        }
        self.settle_node(now, i, Joules::ZERO);
        if let Some(id) = self.store.node_mut(i).pending_deadline.take() {
            sim.cancel(id);
        }
        if let Some(byte) = self.store.node_mut(i).pending_weight.take() {
            // The dissemination byte may arrive bit-corrupted; decode
            // clamps, so even a damaged byte yields a valid w_u — the
            // node just plans around a wrong fleet view until the next
            // dissemination overwrites it.
            let corrupted = self.faults.corrupt_weight(i, byte);
            let byte = corrupted.unwrap_or(byte);
            if self.telemetry_on() {
                if corrupted.is_some() {
                    self.emit(
                        now,
                        i,
                        EventKind::FaultInjected {
                            fault: FaultKind::WeightCorrupted,
                        },
                    );
                }
                self.emit(now, i, EventKind::DisseminationApplied { weight: byte });
            }
            let policy = &self.policy;
            let mut node = self.store.node_mut(i);
            policy.on_ack_weight(&mut node, byte);
            *node.weight_updated_at = Some(now);
            *node.wu_expired_latched = false;
        }
        if let Some(cmd) = self.store.node_mut(i).pending_adr.take() {
            let node = self.store.node_mut(i);
            let new_cfg = node.tx_config().with_sf(cmd.sf).with_power(cmd.power);
            node.mac.set_tx_config(new_cfg);
            node.placement.sf = cmd.sf;
            // The BLAM EWMA (Eq. 13) absorbs the energy change over the
            // following periods — exactly why the paper smooths instead
            // of trusting the last exchange.
        }
        let actions = self.store.node_mut(i).mac.on_ack(now);
        self.apply_actions(sim, now, i, &actions);
    }

    pub(crate) fn on_rx_deadline(
        &mut self,
        sim: &mut Simulator<Event>,
        now: SimTime,
        i: usize,
        epoch: u64,
    ) {
        if epoch != self.store.exchange_epoch_of(i) {
            return;
        }
        *self.store.node_mut(i).pending_deadline = None;
        let actions = self
            .store
            .node_mut(i)
            .mac
            .on_rx_deadline(now, &mut self.mac_rng);
        self.apply_actions(sim, now, i, &actions);
    }

    pub(crate) fn on_retransmit(
        &mut self,
        sim: &mut Simulator<Event>,
        now: SimTime,
        i: usize,
        epoch: u64,
    ) {
        if epoch != self.store.exchange_epoch_of(i) {
            return;
        }
        self.settle_node(now, i, Joules::ZERO);
        // Brownout guard for the retransmission.
        let required = self.uplink_tx_energy(i);
        if self.store.node_mut(i).battery.stored() < required {
            self.store.node_mut(i).metrics.brownout_events += 1;
            if self.telemetry_on() {
                let deficit = required - self.store.node_mut(i).battery.stored();
                self.emit(
                    now,
                    i,
                    EventKind::Brownout {
                        deficit_j: deficit.0,
                    },
                );
            }
            let report = self.store.node_mut(i).mac.abort(now);
            if let Some(report) = report {
                self.finish_exchange(now, i, &report);
            }
            return;
        }
        // Policy transmit gate (same instant the radio would key up):
        // a battery-less node whose capacitor slipped below the
        // cut-off since the backoff was scheduled gives up the
        // exchange rather than transmit under-threshold.
        let policy = &self.policy;
        let mut node = self.store.node_mut(i);
        if !policy.clear_to_send(&mut node, now, required) {
            let report = self.store.node_mut(i).mac.abort(now);
            if let Some(report) = report {
                self.finish_exchange(now, i, &report);
            }
            return;
        }
        let actions = self
            .store
            .node_mut(i)
            .mac
            .on_retransmit_time(now, &mut self.mac_rng);
        self.apply_actions(sim, now, i, &actions);
    }

    pub(crate) fn apply_actions(
        &mut self,
        sim: &mut Simulator<Event>,
        now: SimTime,
        i: usize,
        actions: &[MacAction],
    ) {
        for action in actions {
            match *action {
                MacAction::Transmit(tx) => {
                    let epoch = self.store.exchange_epoch_of(i);
                    // One Gilbert–Elliott step per attempt, before any
                    // per-gateway work, so the chain's draw count never
                    // depends on the deployment.
                    let uplink_lost =
                        self.faults.uplink_loss_enabled() && self.faults.uplink_lost(i);
                    let node = self.store.node_mut(i);
                    *node.current_channel = tx.channel;
                    node.metrics.transmissions += 1;
                    node.metrics.tx_energy_eq6 += blam_lora_phy::energy::tx_energy_eq6(
                        &tx.config,
                        tx.frame.phy_payload_len(),
                    );
                    debug_assert!(
                        node.inflight.iter().all(|&(e, ..)| e != epoch),
                        "overlapping transmissions within one exchange"
                    );
                    let device = DeviceAddr(node.id);
                    let rssis: Vec<f64> = node
                        .gateway_links
                        .iter()
                        .map(|l| l.rssi(tx.config.power).0)
                        .collect();
                    let mut outage_skips = 0u32;
                    for (g, rssi) in rssis.into_iter().enumerate() {
                        // A burst-lost frame reaches no gateway; a
                        // gateway down for any part of the airtime
                        // misses it too. The node still pays the full
                        // transmit energy either way.
                        if uplink_lost {
                            continue;
                        }
                        if self.faults.gateway_down_during(g, now, now + tx.airtime) {
                            outage_skips += 1;
                            continue;
                        }
                        let descriptor = UplinkTransmission {
                            device,
                            channel: tx.channel,
                            sf: tx.config.sf,
                            rssi: Dbm(rssi),
                            start: now,
                            end: now + tx.airtime,
                        };
                        let tid = self.gateways[g].begin_uplink(descriptor);
                        self.store.node_mut(i).inflight.push((epoch, g, tid, rssi));
                    }
                    if self.telemetry_on() {
                        if uplink_lost {
                            self.emit(
                                now,
                                i,
                                EventKind::FaultInjected {
                                    fault: FaultKind::UplinkLost,
                                },
                            );
                        }
                        for _ in 0..outage_skips {
                            self.emit(
                                now,
                                i,
                                EventKind::FaultInjected {
                                    fault: FaultKind::GatewayOutage,
                                },
                            );
                        }
                    }
                    sim.schedule(now + tx.airtime, Event::TxEnd { node: i, epoch });
                    if self.telemetry_on() {
                        let soc = self.store.node_mut(i).battery.soc();
                        self.emit(
                            now,
                            i,
                            EventKind::TxAttempt {
                                sf: tx.config.sf.as_u8(),
                                airtime_ms: tx.airtime.as_millis(),
                                soc,
                            },
                        );
                    }
                }
                MacAction::ScheduleRxDeadline(at) => {
                    let epoch = self.store.exchange_epoch_of(i);
                    let id = sim.schedule(at, Event::RxDeadline { node: i, epoch });
                    *self.store.node_mut(i).pending_deadline = Some(id);
                }
                MacAction::ScheduleRetransmit(at) => {
                    let epoch = self.store.exchange_epoch_of(i);
                    sim.schedule(at, Event::Retransmit { node: i, epoch });
                }
                MacAction::Complete(report) => {
                    self.finish_exchange(now, i, &report);
                }
            }
        }
    }

    pub(crate) fn finish_exchange(&mut self, now: SimTime, i: usize, report: &TxReport) {
        let window = self.cfg.forecast_window;
        let rx_cost = self.store.node_mut(i).radio.rx_energy(report.total_rx_time);
        self.settle_node(now, i, rx_cost);

        let telemetry_on = self.telemetry_on();
        let mut event = None;
        let policy = &self.policy;
        let mut node = self.store.node_mut(i);
        node.metrics.concluded += 1;
        node.metrics.retransmissions += u64::from(report.transmissions.saturating_sub(1));

        let packet = node.packet.take();
        if report.delivered {
            node.metrics.delivered += 1;
            let mut latency_ms = 0;
            if let Some(p) = packet {
                let latency = now.saturating_since(p.generated_at);
                node.metrics.latency_sum += latency;
                node.metrics.latency_delivered_sum += latency;
                let idx = ((latency / window) as usize).min(*node.windows);
                node.metrics.utility_sum += node.utility.at(idx, *node.windows);
                latency_ms = latency.as_millis();
            }
            if telemetry_on {
                event = Some(EventKind::AckReceived { latency_ms });
            }
        } else {
            node.metrics.failed_no_ack += 1;
            node.metrics.latency_sum += *node.period;
            if telemetry_on {
                event = Some(EventKind::ExchangeFailed {
                    attempts: u32::from(report.transmissions),
                });
            }
        }

        // An undelivered exchange leaves its SoC traces queued: they
        // ride the next uplink instead of being lost with the ACK.
        let mut requeue = None;
        if !report.delivered && telemetry_on {
            let queued = node.trace_queue.len() as u32;
            if queued > 0 {
                requeue = Some(EventKind::TraceRequeued { queued });
            }
        }

        policy.on_exchange_complete(&mut node, packet, report);
        *node.exchange_epoch += 1;
        if let Some(kind) = event {
            self.emit(now, i, kind);
        }
        if let Some(kind) = requeue {
            self.emit(now, i, kind);
        }
    }

    /// Fault injection: the node loses power and reboots. Everything
    /// volatile is wiped — the forecaster's learned history, queued SoC
    /// traces, the pending `w_u` byte and ADR command, the current
    /// exchange — while flash-persisted state (protocol estimators,
    /// radio parameters) survives. The next packet transmits in the
    /// immediate window until the forecaster has observations again.
    pub(crate) fn on_reboot(&mut self, sim: &mut Simulator<Event>, now: SimTime, i: usize) {
        self.reboot_wipe(sim, now, i);
        if let Some(at) = self.faults.next_reboot(i, now) {
            sim.schedule(at, Event::Reboot { node: i });
        }
    }

    /// The reboot wipe itself, without rescheduling the fault layer's
    /// next reboot — shared by [`Engine::on_reboot`] and the scenario
    /// script's churn action (a replaced node power-cycles exactly like
    /// a rebooted one, but must not fork the fault-reboot chain).
    pub(crate) fn reboot_wipe(&mut self, sim: &mut Simulator<Event>, now: SimTime, i: usize) {
        let window = self.cfg.forecast_window;
        self.settle_node(now, i, Joules::ZERO);

        // Conclude whatever exchange was in progress; a packet still
        // waiting for its forecast window dies with the reboot.
        if let Some(id) = self.store.node_mut(i).pending_deadline.take() {
            sim.cancel(id);
        }
        if !self.store.node_mut(i).mac.is_idle() {
            let report = self.store.node_mut(i).mac.abort(now);
            if let Some(report) = report {
                self.finish_exchange(now, i, &report);
            }
        } else if self.store.node_mut(i).packet.take().is_some() {
            let node = self.store.node_mut(i);
            node.metrics.dropped_brownout += 1;
            node.metrics.concluded += 1;
            node.metrics.latency_sum += *node.period;
            if self.telemetry_on() {
                self.emit(
                    now,
                    i,
                    EventKind::PacketDropped {
                        reason: DropReason::Brownout,
                    },
                );
            }
        }

        let node = self.store.node_mut(i);
        node.trace_queue.clear();
        *node.pending_weight = None;
        *node.pending_adr = None;
        *node.discharge_sample = None;
        *node.recharge_sample = None;
        *node.weight_updated_at = None;
        *node.wu_expired_latched = false;
        *node.cold_start = true;
        // The persistence forecaster's history lives in RAM; it
        // restarts empty. The oracle variants model out-of-band
        // knowledge and survive by construction.
        if matches!(node.forecaster, NodeForecaster::Persistence(_)) {
            *node.forecaster = NodeForecaster::Persistence(DiurnalPersistence::new(window, 0.3));
        }
        if let Some(blam) = node.blam.as_mut() {
            blam.clear_weight();
        }
        // Invalidate every event scheduled against the pre-reboot
        // lifetime (StartTx, TxEnd, deadlines, retransmits).
        *node.exchange_epoch += 1;

        // The policy resets whatever of its private state lives in RAM
        // (Long-Lived wear, the battery-less power latch).
        let policy = &self.policy;
        let mut node = self.store.node_mut(i);
        policy.on_reboot(&mut node);

        if self.telemetry_on() {
            self.emit(
                now,
                i,
                EventKind::FaultInjected {
                    fault: FaultKind::Reboot,
                },
            );
        }
    }

    pub(crate) fn on_sample(&mut self, sim: &mut Simulator<Event>, now: SimTime) {
        let count = self.store.len();
        let mut per_node = Vec::with_capacity(count);
        for i in 0..count {
            self.settle_node(now, i, Joules::ZERO);
            let node = self.store.node_mut(i);
            let d = node.battery.refresh_degradation(now);
            node.metrics.final_degradation = d;
            per_node.push(node.battery.tracker().breakdown(now));
            let id = node.id as usize;
            if d >= EOL_DEGRADATION && self.first_eol.is_none() {
                // Recorded under the node's *global* id so cell results
                // merge without remapping (identical to the local index
                // in the single-engine path).
                self.first_eol = Some((id, now));
                if self.cfg.stop_at_first_eol {
                    self.halted = true;
                }
            }
        }
        self.samples.push(DegradationSample { at: now, per_node });
        if !self.halted {
            sim.schedule(now + self.cfg.sample_interval, Event::Sample);
        }
    }
}
