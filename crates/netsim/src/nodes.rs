//! The node layer: per-device state and the node lifecycle handlers —
//! generate → select window → transmit → retransmit — plus SoC/harvest
//! settlement and periodic degradation sampling. Protocol decisions are
//! delegated to the engine's [`MacPolicy`](crate::policy::MacPolicy).

use blam::utility::Utility;
use blam::{BlamNode, CompressedSocTrace, SocSample};
use blam_battery::{Battery, PowerSwitch, Supercap, SwitchOutcome, EOL_DEGRADATION};
use blam_des::Simulator;
use blam_energy_harvest::{
    DiurnalPersistence, Forecaster, HarvestSource, NodeHarvest, NoisyOracle, Oracle, SolarField,
};
use blam_lora_phy::{
    Bandwidth, CodingRate, LinkBudget, Position, RadioPowerModel, TxConfig, TxEnergyCache,
};
use blam_lorawan::{
    ClassAMac, DeviceAddr, MacAction, MacParams, TransmissionId, TxReport, Uplink,
    UplinkTransmission,
};
use blam_telemetry::{DropReason, EventKind, FaultKind};
use blam_units::{Dbm, Duration, Joules, SimTime, Watts};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

use crate::config::{ForecasterKind, ScenarioConfig};
use crate::engine::Engine;
use crate::events::Event;
use crate::metrics::{DegradationSample, NodeMetrics};
use crate::policy::MacPolicy;
use crate::radio::rx_window_timeout;
use crate::topology::{NodePlacement, Topology};

/// The green-energy forecaster variants a node can run.
#[derive(Debug, Clone)]
pub enum NodeForecaster {
    /// Time-of-day persistence over locally observed harvest.
    Persistence(DiurnalPersistence),
    /// Clairvoyant (ablation upper bound).
    Oracle(Oracle<NodeHarvest>),
    /// Clairvoyant with multiplicative log-normal error (ablation).
    Noisy(NoisyOracle<NodeHarvest>),
}

impl Forecaster for NodeForecaster {
    fn observe(&mut self, start: SimTime, window: Duration, energy: Joules) {
        match self {
            NodeForecaster::Persistence(f) => f.observe(start, window, energy),
            NodeForecaster::Oracle(f) => f.observe(start, window, energy),
            NodeForecaster::Noisy(f) => f.observe(start, window, energy),
        }
    }

    fn predict(&self, start: SimTime, window: Duration) -> Joules {
        match self {
            NodeForecaster::Persistence(f) => f.predict(start, window),
            NodeForecaster::Oracle(f) => f.predict(start, window),
            NodeForecaster::Noisy(f) => f.predict(start, window),
        }
    }
}

/// The in-flight packet of the current sampling period.
#[derive(Debug, Clone, Copy)]
pub struct PacketState {
    /// When the application generated the packet.
    pub generated_at: SimTime,
    /// The forecast window chosen for it.
    pub window: usize,
}

/// One simulated end device.
#[derive(Debug)]
pub struct SimNode {
    /// Node index (= device address).
    pub id: usize,
    /// Radio situation (serving-gateway link).
    pub placement: NodePlacement,
    /// Link budgets to every gateway, indexed by gateway id.
    pub gateway_links: Vec<LinkBudget>,
    /// Receptions in flight at the gateways: (exchange epoch, gateway,
    /// reception id, RSSI dBm). Epoch-tagged so a stale TxEnd (from an
    /// exchange aborted mid-airtime) cannot conclude a successor
    /// exchange's receptions early.
    pub inflight: Vec<(u64, usize, TransmissionId, f64)>,
    /// LoRaWAN Class-A MAC.
    pub mac: ClassAMac,
    /// BLAM protocol state (None for the LoRaWAN baseline).
    pub blam: Option<BlamNode>,
    /// The rechargeable battery.
    pub battery: Battery,
    /// Software-defined battery switch (θ-capped for BLAM).
    pub switch: PowerSwitch,
    /// Optional supercapacitor buffer in front of the battery.
    pub supercap: Option<Supercap>,
    /// Solar harvest source.
    pub harvest: NodeHarvest,
    /// Green-energy forecaster.
    pub forecaster: NodeForecaster,
    /// Sampling period τ.
    pub period: Duration,
    /// Forecast windows per period |T|.
    pub windows: usize,
    /// Radio electrical model.
    pub radio: RadioPowerModel,
    /// Baseline non-radio draw.
    pub mcu_sleep: Watts,
    /// Last energy-settlement instant.
    pub last_settle: SimTime,
    /// Start of the current sampling period (= last generation time).
    pub period_start: SimTime,
    /// Start of the previous period (for forecaster feedback and trace
    /// anchoring).
    pub prev_period_start: Option<SimTime>,
    /// The packet currently being handled.
    pub packet: Option<PacketState>,
    /// SoC sample after this period's transmission discharge.
    pub discharge_sample: Option<SocSample>,
    /// SoC sample at this period's last recharge.
    pub recharge_sample: Option<SocSample>,
    /// Pending normalized-degradation byte carried by the next ACK.
    pub pending_weight: Option<u8>,
    /// Pending ADR command carried by the next ACK.
    pub pending_adr: Option<blam_lorawan::AdrCommand>,
    /// Pending RX-deadline event (cancelled when the ACK wins).
    pub pending_deadline: Option<blam_des::EventId>,
    /// Compressed SoC traces awaiting delivery, oldest first (anchor
    /// time, trace). Depth is [`blam::BlamConfig::trace_buffer`]; with
    /// the default depth 1 this is exactly the paper's single pending
    /// trace, while hardened variants buffer across failed exchanges
    /// and backfill the gateway ledger on recovery.
    pub trace_queue: VecDeque<(SimTime, CompressedSocTrace)>,
    /// When the node last applied a disseminated `w_u` byte (for the
    /// TTL-based trust decay; volatile — wiped by a reboot).
    pub weight_updated_at: Option<SimTime>,
    /// Edge-trigger latch for the `WuExpired` telemetry event.
    pub wu_expired_latched: bool,
    /// Set by a reboot: the forecaster was wiped, so the next packet
    /// skips Algorithm 1 and transmits in the immediate window.
    pub cold_start: bool,
    /// PHY payload length of the uplink currently in flight.
    pub current_phy_len: usize,
    /// Channel of the uplink currently in flight.
    pub current_channel: blam_lora_phy::Channel,
    /// Monotone exchange counter guarding stale in-flight events: a
    /// TxEnd/ACK/deadline/retransmit event only applies if its epoch
    /// matches (the exchange it belonged to was not aborted).
    pub exchange_epoch: u64,
    /// Whether the last settlement spilled harvest at the θ cap —
    /// edge-triggers the `SocCapped` telemetry event. Only maintained
    /// while telemetry is enabled; never read by the simulation.
    pub cap_latched: bool,
    /// Utility curve used for this node's metric accounting.
    pub utility: Utility,
    /// Memoized per-attempt transmission energy. A node's radio
    /// configuration and payload length are stable between ADR
    /// commands, so virtually every attempt after the first is a hit;
    /// the cache recomputes (bit-identically) whenever either changes.
    pub tx_energy_cache: TxEnergyCache,
    /// Scratch for the green-energy forecast built each plan — reused
    /// across periods so Algorithm 1 stays off the allocator.
    pub forecast_scratch: Vec<Joules>,
    /// Scratch for the Eq. (14) per-window energy estimates, handed to
    /// [`BlamNode::plan_with_scratch`].
    pub plan_scratch: Vec<Joules>,
    /// Metrics accumulator.
    pub metrics: NodeMetrics,
}

impl SimNode {
    /// The node's uplink radio configuration.
    #[must_use]
    pub fn tx_config(&self) -> TxConfig {
        self.mac.params().tx
    }

    /// Total baseline sleep draw (MCU + radio sleep).
    #[must_use]
    pub fn sleep_power(&self) -> Watts {
        self.mcu_sleep + self.radio.sleep_power_draw()
    }

    /// The forecast-window index of `at` within the current period
    /// (clamped to the last window).
    #[must_use]
    pub fn window_index(&self, at: SimTime, window: Duration) -> usize {
        let idx = (at.saturating_since(self.period_start) / window) as usize;
        idx.min(self.windows.saturating_sub(1))
    }

    /// Settles energy bookkeeping up to `now`: harvest since the last
    /// settlement and baseline sleep draw flow through the switch,
    /// together with `extra_demand` (a transmission or receive-window
    /// cost landing at `now`).
    ///
    /// Records the period's recharge sample whenever the battery
    /// charged, mirroring the hardware interrupt the paper uses to
    /// capture the last recharge transition.
    pub fn settle(
        &mut self,
        now: SimTime,
        extra_demand: Joules,
        forecast_window: Duration,
    ) -> SwitchOutcome {
        let from = self.last_settle;
        let mut harvested = if now > from {
            self.harvest.energy_between(from, now)
        } else {
            Joules::ZERO
        };
        let mut demand = self.sleep_power() * now.saturating_since(from) + extra_demand;
        // A supercapacitor buffer, when present, absorbs surplus and
        // serves demand before the battery is touched — shielding the
        // battery's rainflow record from shallow transmission cycles.
        if let Some(cap) = &mut self.supercap {
            cap.leak(now.saturating_since(from));
            let direct = harvested.min(demand);
            let mut surplus = harvested - direct;
            let mut shortfall = demand - direct;
            shortfall -= cap.discharge(shortfall);
            surplus -= cap.charge(surplus);
            harvested = direct + surplus;
            demand = direct + shortfall;
        }
        let out = self.switch.step(now, &mut self.battery, harvested, demand);
        self.last_settle = now;
        if out.charged.0 > 0.0 {
            let w = self.window_index(now, forecast_window) as u8;
            self.recharge_sample = Some(SocSample::new(w, self.battery.soc()));
        }
        if out.deficit.0 > 0.0 {
            self.metrics.brownout_events += 1;
        }
        out
    }
}

/// Constructs every end device of a scenario: radio configuration,
/// battery sizing, panel sizing, forecaster, and the policy-installed
/// protocol state. Draw order on `node_rng` (period, then shading, per
/// node) is part of the crate's determinism contract — changing it
/// changes every seeded experiment.
pub(crate) fn build_nodes(
    cfg: &ScenarioConfig,
    policy: &dyn MacPolicy,
    topology: &Topology,
    field: &SolarField,
    gw_positions: &[Position],
    node_rng: &mut ChaCha8Rng,
) -> Vec<SimNode> {
    let payload_overhead = policy.payload_overhead();
    let theta = policy.theta();
    (0..cfg.nodes)
        .map(|i| {
            let placement = topology.placements[i];
            let tx = TxConfig::new(placement.sf, Bandwidth::Khz125, CodingRate::Cr4_5)
                .with_power(cfg.tx_power);
            // Whole-minute periods (as in the paper's "[16, 60] Min"
            // draw): nodes sharing a period stay phase-locked, which
            // is what creates the persistent collisions Eq. (14)
            // learns to escape.
            let period = Duration::from_mins(node_rng.gen_range(
                (cfg.period_min.as_millis() / 60_000)..=(cfg.period_max.as_millis() / 60_000),
            ));
            let windows = cfg.windows_in(period);
            let phy_len = cfg.payload_bytes + payload_overhead + blam_lorawan::MAC_OVERHEAD_BYTES;
            let tx_energy = cfg.radio.tx_energy(&tx, phy_len);
            let rx_energy = cfg.radio.rx_energy(rx_window_timeout(&cfg.plan) * 2);
            let sleep = cfg.mcu_sleep + cfg.radio.sleep_power_draw();

            // Battery sized to `battery_days` of average operation.
            let packets_per_day = 86_400.0 / period.as_secs_f64();
            let daily = sleep * Duration::from_days(1) + (tx_energy + rx_energy) * packets_per_day;
            let capacity = daily * cfg.battery_days;

            // Panel sized so peak power funds `solar_peak_tx_multiple`
            // transmissions per forecast window (the paper's rule).
            let peak =
                Watts(cfg.solar_peak_tx_multiple * tx_energy.0 / cfg.forecast_window.as_secs_f64());
            let region = field.region(i).clone();
            let shading = node_rng.gen_range(0.7..=1.0);
            let factor = (peak.0 / region.peak_power().0 * shading).min(1.0);
            let harvest = NodeHarvest::new(region, factor);

            let forecaster = match cfg.forecaster {
                ForecasterKind::DiurnalPersistence => {
                    NodeForecaster::Persistence(DiurnalPersistence::new(cfg.forecast_window, 0.3))
                }
                ForecasterKind::Oracle => NodeForecaster::Oracle(Oracle::new(harvest.clone())),
                ForecasterKind::Noisy(sigma) => NodeForecaster::Noisy(NoisyOracle::new(
                    harvest.clone(),
                    sigma,
                    cfg.seed ^ (i as u64),
                )),
            };

            // Eq. (15)'s E_max is the node's own worst-case single
            // transmission: its radio configuration at maximum
            // power. Normalizing per node lets the DIF span its
            // full [0, 1] range for every node regardless of SF.
            let e_max = cfg.radio.tx_energy(&tx.with_power(Dbm(20.0)), phy_len);
            let (blam, utility) = policy.node_state(tx_energy, e_max, windows);

            let supercap = cfg
                .supercap_tx_multiple
                .map(|m| blam_battery::Supercap::new(tx_energy * m, Watts::from_milliwatts(0.001)));
            let gateway_links: Vec<_> = gw_positions
                .iter()
                .map(|&gp| {
                    let d = blam_units::Meters(placement.position.distance_to(gp).0.max(1.0));
                    blam_lora_phy::LinkBudget::new(d)
                        .with_path_loss(cfg.path_loss)
                        .with_shadowing(placement.link.shadowing)
                })
                .collect();
            SimNode {
                id: i,
                placement,
                gateway_links,
                inflight: Vec::new(),
                mac: ClassAMac::new(MacParams {
                    device: DeviceAddr(i as u32),
                    plan: cfg.plan.clone(),
                    tx,
                    duty_cycle: cfg.duty_cycle,
                    rx_window: rx_window_timeout(&cfg.plan),
                    ..MacParams::default()
                }),
                blam,
                battery: if (i as f64) < cfg.aged_fraction * cfg.nodes as f64 {
                    // Pre-aged battery: served `aged_years` near-full
                    // (the LoRaWAN charging habit) with one shallow
                    // cycle per day.
                    let age = Duration::from_days((cfg.aged_years * 365.0) as u64);
                    let daily = blam_battery::Cycle::full(0.95, 0.7);
                    let prior_cycles =
                        cfg.degradation.cycle_damage(&daily) * cfg.aged_years * 365.0;
                    Battery::pre_aged(
                        capacity,
                        theta,
                        cfg.temperature,
                        cfg.degradation,
                        age,
                        0.85,
                        prior_cycles,
                    )
                } else {
                    Battery::with_constants(capacity, theta, cfg.temperature, cfg.degradation)
                },
                switch: PowerSwitch::new(theta),
                supercap,
                harvest,
                forecaster,
                period,
                windows,
                radio: cfg.radio.clone(),
                mcu_sleep: cfg.mcu_sleep,
                last_settle: SimTime::ZERO,
                period_start: SimTime::ZERO,
                prev_period_start: None,
                packet: None,
                discharge_sample: None,
                recharge_sample: None,
                pending_weight: None,
                pending_adr: None,
                pending_deadline: None,
                trace_queue: VecDeque::new(),
                weight_updated_at: None,
                wu_expired_latched: false,
                cold_start: false,
                current_phy_len: phy_len,
                current_channel: cfg.plan.uplink[0],
                exchange_epoch: 0,
                cap_latched: false,
                utility,
                tx_energy_cache: TxEnergyCache::default(),
                forecast_scratch: Vec::new(),
                plan_scratch: Vec::new(),
                metrics: NodeMetrics::default(),
            }
        })
        .collect()
}

impl Engine {
    /// Electrical energy of one uplink attempt at node `i`'s current
    /// radio configuration and in-flight payload length. The optimized
    /// engine reads the node's [`TxEnergyCache`]; the reference engine
    /// recomputes from the uncached Semtech formula every call. Both
    /// produce bit-identical joules.
    pub(crate) fn uplink_tx_energy(&mut self, i: usize) -> Joules {
        let node = &mut self.nodes[i];
        let cfg = node.tx_config();
        if self.cfg.reference_impl {
            node.radio.tx_energy_direct(&cfg, node.current_phy_len)
        } else {
            node.tx_energy_cache
                .energy(&node.radio, &cfg, node.current_phy_len)
        }
    }

    pub(crate) fn on_generate(&mut self, sim: &mut Simulator<Event>, now: SimTime, i: usize) {
        let window = self.cfg.forecast_window;
        // Next period's generation first, so a drop below can't stall
        // the node. Real crystals drift: each period slips by a small
        // uniform draw.
        let period = self.nodes[i].period;
        let drift_cap = self.cfg.period_drift.as_millis();
        let drifted = if drift_cap > 0 {
            let slip = self.mac_rng.gen_range(0..=2 * drift_cap);
            period + Duration::from_millis(slip) - Duration::from_millis(drift_cap)
        } else {
            period
        };
        sim.schedule(now + drifted, Event::Generate { node: i });

        // Conclude a still-running exchange from the previous period.
        if !self.nodes[i].mac.is_idle() {
            let node = &mut self.nodes[i];
            if let Some(id) = node.pending_deadline.take() {
                sim.cancel(id);
            }
            if let Some(report) = node.mac.abort(now) {
                self.finish_exchange(now, i, &report);
            }
        }

        let policy = &self.policy;
        let node = &mut self.nodes[i];
        node.metrics.generated += 1;

        // Fold the finished period into protocol state (SoC trace for
        // the next uplink, forecaster feedback), then roll the period
        // bookkeeping over.
        policy.on_period_rollover(node, now, window);

        node.prev_period_start = Some(node.period_start);
        node.period_start = now;
        node.discharge_sample = None;
        node.recharge_sample = None;
        if self.telemetry_on() {
            self.emit(now, i, EventKind::PacketGenerated);
        }
        self.settle_node(now, i, Joules::ZERO);

        // Decide when to transmit.
        let policy = &self.policy;
        let chosen = policy.select_window(&mut self.nodes[i], now, window);

        match chosen {
            None => {
                // Algorithm 1 FAIL: drop the packet.
                let node = &mut self.nodes[i];
                node.metrics.dropped_no_window += 1;
                node.metrics.concluded += 1;
                node.metrics.latency_sum += node.period;
                if self.telemetry_on() {
                    self.emit(
                        now,
                        i,
                        EventKind::PacketDropped {
                            reason: DropReason::NoWindow,
                        },
                    );
                }
            }
            Some(decision) => {
                let w = decision.window;
                let node = &mut self.nodes[i];
                node.metrics.record_window(w);
                node.packet = Some(PacketState {
                    generated_at: now,
                    window: w,
                });
                let epoch = node.exchange_epoch;
                // Degradation-ladder telemetry: a stale w_u losing
                // trust (edge-triggered) and the cold-start fallback.
                let mut wu_age = None;
                if decision.wu_trust < 1.0 && !node.wu_expired_latched {
                    node.wu_expired_latched = true;
                    wu_age = Some(
                        node.weight_updated_at
                            .map_or(0, |at| now.saturating_since(at).as_millis()),
                    );
                }
                if self.telemetry_on() {
                    if let Some(age_ms) = wu_age {
                        self.emit(now, i, EventKind::WuExpired { age_ms });
                    }
                    if decision.fallback {
                        self.emit(now, i, EventKind::FallbackWindow);
                    }
                }
                // Random offset within the window halves collision odds
                // without a measurable utility change (§III-B, "Network
                // dynamics and channel access").
                let jitter =
                    Duration::from_millis(self.mac_rng.gen_range(0..=(window.as_millis() / 2)));
                sim.schedule(
                    now + window * w as u64 + jitter,
                    Event::StartTx { node: i, epoch },
                );
                if self.telemetry_on() {
                    self.emit(
                        now,
                        i,
                        EventKind::WindowSelected {
                            window: w as u32,
                            dif: decision.dif,
                            utility_loss: decision.utility_loss,
                        },
                    );
                }
            }
        }
    }

    pub(crate) fn on_start_tx(
        &mut self,
        sim: &mut Simulator<Event>,
        now: SimTime,
        i: usize,
        epoch: u64,
    ) {
        if epoch != self.nodes[i].exchange_epoch {
            // The node rebooted after this start was scheduled; the
            // packet it belonged to was already accounted as dropped.
            return;
        }
        self.settle_node(now, i, Joules::ZERO);
        let node = &mut self.nodes[i];
        if !node.mac.is_idle() {
            // Should not happen (exchanges are aborted at generation),
            // but stay safe: drop this packet.
            node.metrics.dropped_brownout += 1;
            node.metrics.concluded += 1;
            node.metrics.latency_sum += node.period;
            node.packet = None;
            if self.telemetry_on() {
                self.emit(
                    now,
                    i,
                    EventKind::PacketDropped {
                        reason: DropReason::MacBusy,
                    },
                );
            }
            return;
        }

        let piggyback = (!node.trace_queue.is_empty()).then_some(CompressedSocTrace::ENCODED_LEN);
        let mut frame = Uplink::confirmed(self.cfg.payload_bytes);
        frame.piggyback_len = piggyback.unwrap_or(0);
        node.current_phy_len = frame.phy_payload_len();

        // Brownout check: the battery (plus harvest during the airtime,
        // which is negligible) must fund at least the first attempt.
        let required = self.uplink_tx_energy(i);
        let node = &mut self.nodes[i];
        if node.battery.stored() < required {
            node.metrics.dropped_brownout += 1;
            node.metrics.concluded += 1;
            node.metrics.latency_sum += node.period;
            node.packet = None;
            if self.telemetry_on() {
                self.emit(
                    now,
                    i,
                    EventKind::PacketDropped {
                        reason: DropReason::Brownout,
                    },
                );
            }
            return;
        }

        let actions = node.mac.send(now, frame, &mut self.mac_rng);
        self.apply_actions(sim, now, i, &actions);
    }

    pub(crate) fn on_tx_end(
        &mut self,
        sim: &mut Simulator<Event>,
        now: SimTime,
        i: usize,
        epoch: u64,
    ) {
        let window = self.cfg.forecast_window;
        // Pay for the transmission.
        let tx_cost = self.uplink_tx_energy(i);
        self.settle_node(now, i, tx_cost);
        self.nodes[i].metrics.tx_energy_electrical += tx_cost;
        // Record the discharge transition for the compressed trace —
        // through the (possibly faulty) SoC sensor, which misreads the
        // value the node reports without touching the real battery.
        {
            let mut soc = self.nodes[i].battery.soc();
            if self.faults.sensor_enabled() {
                soc = self.faults.sensor_soc(i, soc);
                if self.telemetry_on() {
                    self.emit(
                        now,
                        i,
                        EventKind::FaultInjected {
                            fault: FaultKind::SensorNoise,
                        },
                    );
                }
            }
            let node = &mut self.nodes[i];
            let w = node.window_index(now, window) as u8;
            node.discharge_sample = Some(SocSample::new(w, soc));
        }

        // The uplink counts if any gateway decoded it.
        let best_rx = self.conclude_receptions(i, epoch);
        if epoch != self.nodes[i].exchange_epoch {
            // The exchange this transmission belonged to was aborted at
            // the next period's generation; the energy is spent and the
            // gateway entries concluded, but the MAC has moved on.
            return;
        }
        // Capture the on-air frame before feeding the MAC: an
        // unconfirmed exchange completes (and clears its frame) inside
        // on_tx_completed.
        let frame = self.current_frame(i);
        let actions = self.nodes[i].mac.on_tx_completed(now);
        self.apply_actions(sim, now, i, &actions);

        let Some((rx_gateway, _)) = best_rx else {
            return;
        };
        // The uplink decoded: the server answers with an ACK in RX1.
        self.on_uplink_decoded(sim, now, i, epoch, rx_gateway, &frame);
    }

    /// The frame currently in flight for node `i` (from its MAC).
    pub(crate) fn current_frame(&self, i: usize) -> Uplink {
        self.nodes[i]
            .mac
            .current_frame()
            .expect("a received uplink implies an exchange in progress")
    }

    pub(crate) fn on_ack_arrival(
        &mut self,
        sim: &mut Simulator<Event>,
        now: SimTime,
        i: usize,
        epoch: u64,
    ) {
        if epoch != self.nodes[i].exchange_epoch {
            return;
        }
        self.settle_node(now, i, Joules::ZERO);
        if let Some(id) = self.nodes[i].pending_deadline.take() {
            sim.cancel(id);
        }
        if let Some(byte) = self.nodes[i].pending_weight.take() {
            // The dissemination byte may arrive bit-corrupted; decode
            // clamps, so even a damaged byte yields a valid w_u — the
            // node just plans around a wrong fleet view until the next
            // dissemination overwrites it.
            let corrupted = self.faults.corrupt_weight(i, byte);
            let byte = corrupted.unwrap_or(byte);
            if self.telemetry_on() {
                if corrupted.is_some() {
                    self.emit(
                        now,
                        i,
                        EventKind::FaultInjected {
                            fault: FaultKind::WeightCorrupted,
                        },
                    );
                }
                self.emit(now, i, EventKind::DisseminationApplied { weight: byte });
            }
            let policy = &self.policy;
            policy.on_ack_weight(&mut self.nodes[i], byte);
            self.nodes[i].weight_updated_at = Some(now);
            self.nodes[i].wu_expired_latched = false;
        }
        if let Some(cmd) = self.nodes[i].pending_adr.take() {
            let node = &mut self.nodes[i];
            let new_cfg = node.tx_config().with_sf(cmd.sf).with_power(cmd.power);
            node.mac.set_tx_config(new_cfg);
            node.placement.sf = cmd.sf;
            // The BLAM EWMA (Eq. 13) absorbs the energy change over the
            // following periods — exactly why the paper smooths instead
            // of trusting the last exchange.
        }
        let actions = self.nodes[i].mac.on_ack(now);
        self.apply_actions(sim, now, i, &actions);
    }

    pub(crate) fn on_rx_deadline(
        &mut self,
        sim: &mut Simulator<Event>,
        now: SimTime,
        i: usize,
        epoch: u64,
    ) {
        if epoch != self.nodes[i].exchange_epoch {
            return;
        }
        self.nodes[i].pending_deadline = None;
        let actions = self.nodes[i].mac.on_rx_deadline(now, &mut self.mac_rng);
        self.apply_actions(sim, now, i, &actions);
    }

    pub(crate) fn on_retransmit(
        &mut self,
        sim: &mut Simulator<Event>,
        now: SimTime,
        i: usize,
        epoch: u64,
    ) {
        if epoch != self.nodes[i].exchange_epoch {
            return;
        }
        self.settle_node(now, i, Joules::ZERO);
        // Brownout guard for the retransmission.
        let required = self.uplink_tx_energy(i);
        if self.nodes[i].battery.stored() < required {
            self.nodes[i].metrics.brownout_events += 1;
            if self.telemetry_on() {
                let deficit = required - self.nodes[i].battery.stored();
                self.emit(
                    now,
                    i,
                    EventKind::Brownout {
                        deficit_j: deficit.0,
                    },
                );
            }
            if let Some(report) = self.nodes[i].mac.abort(now) {
                self.finish_exchange(now, i, &report);
            }
            return;
        }
        let actions = self.nodes[i].mac.on_retransmit_time(now, &mut self.mac_rng);
        self.apply_actions(sim, now, i, &actions);
    }

    pub(crate) fn apply_actions(
        &mut self,
        sim: &mut Simulator<Event>,
        now: SimTime,
        i: usize,
        actions: &[MacAction],
    ) {
        for action in actions {
            match *action {
                MacAction::Transmit(tx) => {
                    let epoch = self.nodes[i].exchange_epoch;
                    // One Gilbert–Elliott step per attempt, before any
                    // per-gateway work, so the chain's draw count never
                    // depends on the deployment.
                    let uplink_lost =
                        self.faults.uplink_loss_enabled() && self.faults.uplink_lost(i);
                    let node = &mut self.nodes[i];
                    node.current_channel = tx.channel;
                    node.metrics.transmissions += 1;
                    node.metrics.tx_energy_eq6 += blam_lora_phy::energy::tx_energy_eq6(
                        &tx.config,
                        tx.frame.phy_payload_len(),
                    );
                    debug_assert!(
                        node.inflight.iter().all(|&(e, ..)| e != epoch),
                        "overlapping transmissions within one exchange"
                    );
                    let rssis: Vec<f64> = node
                        .gateway_links
                        .iter()
                        .map(|l| l.rssi(tx.config.power).0)
                        .collect();
                    let mut outage_skips = 0u32;
                    for (g, rssi) in rssis.into_iter().enumerate() {
                        // A burst-lost frame reaches no gateway; a
                        // gateway down for any part of the airtime
                        // misses it too. The node still pays the full
                        // transmit energy either way.
                        if uplink_lost {
                            continue;
                        }
                        if self.faults.gateway_down_during(g, now, now + tx.airtime) {
                            outage_skips += 1;
                            continue;
                        }
                        let descriptor = UplinkTransmission {
                            device: DeviceAddr(i as u32),
                            channel: tx.channel,
                            sf: tx.config.sf,
                            rssi: Dbm(rssi),
                            start: now,
                            end: now + tx.airtime,
                        };
                        let tid = self.gateways[g].begin_uplink(descriptor);
                        self.nodes[i].inflight.push((epoch, g, tid, rssi));
                    }
                    if self.telemetry_on() {
                        if uplink_lost {
                            self.emit(
                                now,
                                i,
                                EventKind::FaultInjected {
                                    fault: FaultKind::UplinkLost,
                                },
                            );
                        }
                        for _ in 0..outage_skips {
                            self.emit(
                                now,
                                i,
                                EventKind::FaultInjected {
                                    fault: FaultKind::GatewayOutage,
                                },
                            );
                        }
                    }
                    sim.schedule(now + tx.airtime, Event::TxEnd { node: i, epoch });
                    if self.telemetry_on() {
                        let soc = self.nodes[i].battery.soc();
                        self.emit(
                            now,
                            i,
                            EventKind::TxAttempt {
                                sf: tx.config.sf.as_u8(),
                                airtime_ms: tx.airtime.as_millis(),
                                soc,
                            },
                        );
                    }
                }
                MacAction::ScheduleRxDeadline(at) => {
                    let epoch = self.nodes[i].exchange_epoch;
                    let id = sim.schedule(at, Event::RxDeadline { node: i, epoch });
                    self.nodes[i].pending_deadline = Some(id);
                }
                MacAction::ScheduleRetransmit(at) => {
                    let epoch = self.nodes[i].exchange_epoch;
                    sim.schedule(at, Event::Retransmit { node: i, epoch });
                }
                MacAction::Complete(report) => {
                    self.finish_exchange(now, i, &report);
                }
            }
        }
    }

    pub(crate) fn finish_exchange(&mut self, now: SimTime, i: usize, report: &TxReport) {
        let window = self.cfg.forecast_window;
        let rx_cost = self.nodes[i].radio.rx_energy(report.total_rx_time);
        self.settle_node(now, i, rx_cost);

        let telemetry_on = self.telemetry_on();
        let mut event = None;
        let policy = &self.policy;
        let node = &mut self.nodes[i];
        node.metrics.concluded += 1;
        node.metrics.retransmissions += u64::from(report.transmissions.saturating_sub(1));

        let packet = node.packet.take();
        if report.delivered {
            node.metrics.delivered += 1;
            let mut latency_ms = 0;
            if let Some(p) = packet {
                let latency = now.saturating_since(p.generated_at);
                node.metrics.latency_sum += latency;
                node.metrics.latency_delivered_sum += latency;
                let idx = ((latency / window) as usize).min(node.windows);
                node.metrics.utility_sum += node.utility.at(idx, node.windows);
                latency_ms = latency.as_millis();
            }
            if telemetry_on {
                event = Some(EventKind::AckReceived { latency_ms });
            }
        } else {
            node.metrics.failed_no_ack += 1;
            node.metrics.latency_sum += node.period;
            if telemetry_on {
                event = Some(EventKind::ExchangeFailed {
                    attempts: u32::from(report.transmissions),
                });
            }
        }

        // An undelivered exchange leaves its SoC traces queued: they
        // ride the next uplink instead of being lost with the ACK.
        let mut requeue = None;
        if !report.delivered && telemetry_on {
            let queued = node.trace_queue.len() as u32;
            if queued > 0 {
                requeue = Some(EventKind::TraceRequeued { queued });
            }
        }

        policy.on_exchange_complete(node, packet, report);
        node.exchange_epoch += 1;
        if let Some(kind) = event {
            self.emit(now, i, kind);
        }
        if let Some(kind) = requeue {
            self.emit(now, i, kind);
        }
    }

    /// Fault injection: the node loses power and reboots. Everything
    /// volatile is wiped — the forecaster's learned history, queued SoC
    /// traces, the pending `w_u` byte and ADR command, the current
    /// exchange — while flash-persisted state (protocol estimators,
    /// radio parameters) survives. The next packet transmits in the
    /// immediate window until the forecaster has observations again.
    pub(crate) fn on_reboot(&mut self, sim: &mut Simulator<Event>, now: SimTime, i: usize) {
        let window = self.cfg.forecast_window;
        self.settle_node(now, i, Joules::ZERO);

        // Conclude whatever exchange was in progress; a packet still
        // waiting for its forecast window dies with the reboot.
        if let Some(id) = self.nodes[i].pending_deadline.take() {
            sim.cancel(id);
        }
        if !self.nodes[i].mac.is_idle() {
            if let Some(report) = self.nodes[i].mac.abort(now) {
                self.finish_exchange(now, i, &report);
            }
        } else if self.nodes[i].packet.take().is_some() {
            let node = &mut self.nodes[i];
            node.metrics.dropped_brownout += 1;
            node.metrics.concluded += 1;
            node.metrics.latency_sum += node.period;
            if self.telemetry_on() {
                self.emit(
                    now,
                    i,
                    EventKind::PacketDropped {
                        reason: DropReason::Brownout,
                    },
                );
            }
        }

        let node = &mut self.nodes[i];
        node.trace_queue.clear();
        node.pending_weight = None;
        node.pending_adr = None;
        node.discharge_sample = None;
        node.recharge_sample = None;
        node.weight_updated_at = None;
        node.wu_expired_latched = false;
        node.cold_start = true;
        // The persistence forecaster's history lives in RAM; it
        // restarts empty. The oracle variants model out-of-band
        // knowledge and survive by construction.
        if matches!(node.forecaster, NodeForecaster::Persistence(_)) {
            node.forecaster = NodeForecaster::Persistence(DiurnalPersistence::new(window, 0.3));
        }
        if let Some(blam) = node.blam.as_mut() {
            blam.clear_weight();
        }
        // Invalidate every event scheduled against the pre-reboot
        // lifetime (StartTx, TxEnd, deadlines, retransmits).
        node.exchange_epoch += 1;

        if self.telemetry_on() {
            self.emit(
                now,
                i,
                EventKind::FaultInjected {
                    fault: FaultKind::Reboot,
                },
            );
        }
        if let Some(at) = self.faults.next_reboot(i, now) {
            sim.schedule(at, Event::Reboot { node: i });
        }
    }

    pub(crate) fn on_sample(&mut self, sim: &mut Simulator<Event>, now: SimTime) {
        let mut per_node = Vec::with_capacity(self.nodes.len());
        for i in 0..self.nodes.len() {
            self.settle_node(now, i, Joules::ZERO);
            let d = self.nodes[i].battery.refresh_degradation(now);
            self.nodes[i].metrics.final_degradation = d;
            per_node.push(self.nodes[i].battery.tracker().breakdown(now));
            if d >= EOL_DEGRADATION && self.first_eol.is_none() {
                self.first_eol = Some((i, now));
                if self.cfg.stop_at_first_eol {
                    self.halted = true;
                }
            }
        }
        self.samples.push(DegradationSample { at: now, per_node });
        if !self.halted {
            sim.schedule(now + self.cfg.sample_interval, Event::Sample);
        }
    }
}
