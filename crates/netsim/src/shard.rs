//! Cell-sharded execution: one discrete-event simulator per gateway
//! cell, synchronized at dissemination epochs, merged deterministically.
//!
//! # Model
//!
//! The semantic unit is the **cell** — one per gateway, holding the
//! nodes that gateway serves ([`ShardPlan`]). Each cell runs its own
//! [`Engine`] over its own [`Simulator`], with its own MAC stream
//! (`"mac"` indexed by cell), its own gateway radio, network server and
//! ADR engine, and fault streams seeded by *global* node and gateway
//! ids (`FaultLayer::build_scoped`). Cells interact only through the
//! gateway-side degradation ledger, and only at **epoch barriers**: the
//! dissemination instants `E_k = k · dissemination_interval`.
//!
//! At every barrier the coordinator
//!
//! 1. runs every cell up to (exclusively) `E_k`,
//! 2. drains each cell's buffered SoC traces — in cell order — into
//!    the one global [`DegradationLedger`],
//! 3. computes the normalized degradation bytes once, globally, and
//!    routes each byte to its owner's cell server as ACK piggyback,
//! 4. drains each cell's telemetry trace buffer — in cell order — onto
//!    the shared trace file.
//!
//! Because cells never interact *between* barriers and all cross-cell
//! state moves in fixed cell order *at* barriers, the result is a pure
//! function of the scenario: `--shards N --jobs M` is byte-identical to
//! `--shards 1 --jobs 1` by construction. `shards` only groups cells
//! into execution groups and `jobs` only sizes the worker pool; neither
//! can reorder any draw.
//!
//! # Relation to the single-engine mode
//!
//! Sharded execution is a distinct mode, not a parallelization of
//! [`Engine::run`]: the monolithic engine draws all MAC jitter from one
//! stream in global event order and lets every gateway hear every
//! node, neither of which decomposes. A cell engine keeps only the
//! serving-gateway link (the audibility given up is quantified by
//! [`ShardPlan::boundary`]) and draws from a per-cell MAC stream. Both
//! modes share the crate-private `global_build`, so topology, harvest
//! fields, node
//! hardware and commissioning are bit-identical between them.

use blam::DegradationLedger;
use blam_des::{RngSeeder, Simulator};
use blam_lorawan::{AdrEngine, DeviceAddr, GatewayRadio, NetworkServer};
use blam_telemetry::{NullSink, TelemetryReport};
use blam_units::SimTime;
use std::io::{self, Write};

use crate::checkpoint::{
    config_fingerprint, read_snapshot, write_snapshot, CheckpointConfig, SnapshotFile,
    SnapshotPayload, SnapshotRead, SNAPSHOT_VERSION,
};
use crate::config::ScenarioConfig;
use crate::engine::{global_build, Engine, GlobalBuild, LedgerMode, RunResult};
use crate::events::Event;
use crate::faults::FaultLayer;
use crate::metrics::{DegradationSample, NetworkMetrics, NodeMetrics};
use crate::telemetry::{SharedBuffer, SharedTraceWriter, TelemetryOptions};
use crate::topology::{ShardPlan, Topology};

/// One cell's engine and its private event queue.
struct CellSim {
    engine: Engine,
    sim: Simulator<Event>,
}

impl CellSim {
    /// Runs this cell to the barrier and checks it actually got there:
    /// after a windowed `run_until` no pending event may predate the
    /// barrier the coordinator is about to act at.
    fn run_to(&mut self, barrier: SimTime) {
        let CellSim { engine, sim } = self;
        sim.run_until(barrier, |sim, now, ev| engine.handle(sim, now, ev));
        debug_assert!(
            sim.next_event_time().is_none_or(|t| t >= barrier),
            "cell holds an event older than the barrier it reached"
        );
    }
}

/// Runs a scenario in the cell-sharded mode and returns the merged
/// result. `shards` groups the cells into execution groups and `jobs`
/// sizes the worker pool; both are clamped to sane ranges and neither
/// affects the result.
///
/// # Panics
///
/// Panics if the configuration fails validation, requests
/// `stop_at_first_eol` (an inherently global early exit the windowed
/// barriers cannot honor without a global event order), or configures a
/// trace file that cannot be created.
#[must_use]
pub fn run_sharded(
    cfg: &ScenarioConfig,
    shards: usize,
    jobs: usize,
    opts: &TelemetryOptions,
) -> RunResult {
    match run_sharded_inner(cfg, shards, jobs, opts, None, &mut || true) {
        // With no checkpoint configured the inner loop touches no
        // files and `keep_going` never fires, so both failure arms are
        // unreachable by construction.
        Ok(Some(result)) => result,
        // analyzer: allow(panic-hygiene, reason = "unreachable: keep_going is constantly true")
        Ok(None) => unreachable!("uninterruptible sharded run reported an interruption"),
        // analyzer: allow(panic-hygiene, reason = "unreachable: no checkpoint path means no I/O")
        Err(e) => unreachable!("uncheckpointed sharded run hit snapshot I/O: {e}"),
    }
}

/// Runs a scenario in the cell-sharded mode like [`run_sharded`],
/// snapshotting all cells plus the global ledger to `ckpt.path` at
/// epoch barriers and resuming from that file when a valid snapshot
/// for the same launch configuration exists.
///
/// `keep_going` is polled at every barrier; returning `false` abandons
/// the run with `Ok(None)`, leaving the snapshot for the next attempt.
/// On completion the snapshot file is removed and the result is
/// byte-identical to an uninterrupted [`run_sharded`] at any shard and
/// worker count.
///
/// # Errors
///
/// Fails on snapshot I/O errors, or when the snapshot on disk belongs
/// to a different launch configuration or execution mode. A
/// torn/corrupt snapshot is quarantined to `<path>.corrupt` and the
/// run restarts fresh.
///
/// # Panics
///
/// As [`run_sharded`].
pub fn run_sharded_checkpointed(
    cfg: &ScenarioConfig,
    shards: usize,
    jobs: usize,
    opts: &TelemetryOptions,
    ckpt: &CheckpointConfig,
    mut keep_going: impl FnMut() -> bool,
) -> io::Result<Option<RunResult>> {
    run_sharded_inner(cfg, shards, jobs, opts, Some(ckpt), &mut keep_going)
}

fn run_sharded_inner(
    cfg: &ScenarioConfig,
    shards: usize,
    jobs: usize,
    opts: &TelemetryOptions,
    ckpt: Option<&CheckpointConfig>,
    keep_going: &mut dyn FnMut() -> bool,
) -> io::Result<Option<RunResult>> {
    assert!(
        !cfg.stop_at_first_eol,
        "stop_at_first_eol requires the single-engine mode: cells advance \
         through time windows and cannot stop at a global first EoL"
    );
    assert!(
        !cfg.script.has_add_gateway(),
        "AddGateway script events require the single-engine mode: the sharded \
         coordinator fixes the gateway cell structure at build time"
    );
    let GlobalBuild {
        policy,
        topology,
        store,
        phases,
        ledger,
    } = global_build(cfg);
    let label = policy.label();
    drop(policy); // each cell engine builds its own copy below
    let plan = ShardPlan::build(cfg, &topology, shards);
    let cells = plan.cells();
    let horizon = SimTime::ZERO + cfg.duration;
    let seeder = RngSeeder::new(cfg.seed);

    // analyzer: allow(panic-hygiene, reason = "config error before any cell starts; batch runs abort on an uncreatable trace file too")
    let writer = opts.open_writer().expect("creating the sharded trace file");
    let buffers: Vec<Option<SharedBuffer>> = (0..cells)
        .map(|_| writer.as_ref().map(|_| SharedBuffer::default()))
        .collect();

    let stores = store.split(&plan.cell_of_node, cells);
    let mut cell_sims: Vec<CellSim> = stores
        .into_iter()
        .enumerate()
        .map(|(c, mut store)| {
            store.retain_gateway(c);
            let cell_topology = Topology {
                placements: plan.cell_nodes[c]
                    .iter()
                    .map(|&id| topology.placements[id as usize])
                    .collect(),
            };
            let cell_phases = plan.cell_nodes[c]
                .iter()
                .map(|&id| phases[id as usize])
                .collect();
            let faults =
                FaultLayer::build_scoped(&cfg.faults, &seeder, &plan.cell_nodes[c], &[c], horizon);
            let mut engine = Engine {
                gateways: vec![
                    GatewayRadio::new(cfg.demod_paths).with_interference(cfg.interference)
                ],
                server: NetworkServer::new(),
                adr: cfg.adr.then(AdrEngine::standard),
                ledger: LedgerMode::Deferred(Vec::new()),
                policy: cfg.protocol.policy(),
                faults,
                mac_rng: seeder.stream_indexed("mac", c as u64),
                topology: cell_topology,
                store,
                phases: cell_phases,
                cfg: cfg.clone(),
                halted: false,
                first_eol: None,
                samples: Vec::new(),
                telemetry: opts
                    .sink_for_cell(c as u32, buffers[c].clone())
                    .unwrap_or_else(|| Box::new(NullSink)),
            };
            let mut sim: Simulator<Event> = if cfg.reference_impl {
                Simulator::reference()
            } else {
                Simulator::new()
            };
            engine
                .telemetry
                .begin(&label, cfg.seed, engine.store.total() as u32);
            engine.schedule_initial_events(&mut sim);
            CellSim { engine, sim }
        })
        .collect();

    // Resume: a valid snapshot for this launch configuration replaces
    // every cell's state and simulator plus the global ledger, and the
    // barrier loop continues at the epoch after the one on disk.
    let mut ledger = ledger;
    let mut epoch = 1u64;
    let config_fnv = config_fingerprint(cfg);
    if let Some(ckpt) = ckpt {
        match read_snapshot(&ckpt.path)? {
            SnapshotRead::Valid(file) if file.config_fnv == config_fnv => {
                let SnapshotPayload::Sharded {
                    cells: states,
                    ledger: saved_ledger,
                } = file.payload
                else {
                    return Err(io::Error::other(
                        "snapshot was taken by the single engine; resume without sharding",
                    ));
                };
                if states.len() != cell_sims.len() {
                    return Err(io::Error::other(format!(
                        "snapshot holds {} cells but the deployment builds {}",
                        states.len(),
                        cell_sims.len()
                    )));
                }
                for (cs, state) in cell_sims.iter_mut().zip(states) {
                    cs.sim = cs.engine.restore_state(state);
                }
                ledger = saved_ledger;
                epoch = file.epoch + 1;
            }
            SnapshotRead::Valid(_) => {
                return Err(io::Error::other(
                    "snapshot belongs to a different scenario configuration",
                ));
            }
            SnapshotRead::Absent | SnapshotRead::Quarantined => {}
        }
    }

    // The epoch-barrier loop: exactly the instants the single engine
    // processes its Dissemination events at (k·D for k·D < horizon;
    // run_until is horizon-exclusive, so everything strictly before the
    // barrier has settled when the ledger acts). The checkpoint hook
    // sits after the barrier's cross-cell work — a snapshot at epoch k
    // captures cells that have fully absorbed epoch k's dissemination.
    loop {
        let barrier = SimTime::ZERO + cfg.dissemination_interval * epoch;
        if barrier >= horizon {
            break;
        }
        if !keep_going() {
            return Ok(None);
        }
        run_cells_until(&mut cell_sims, &plan, jobs, barrier);
        drain_traces(&mut cell_sims, &mut ledger);
        let normalized = ledger.compute_normalized_bounded(barrier, cfg.faults.ledger_staleness);
        for (id, byte) in normalized {
            let cell = plan.cell_of_node[id as usize];
            cell_sims[cell]
                .engine
                .server
                .set_piggyback(DeviceAddr(id), byte);
        }
        flush_cell_traces(&buffers, writer.as_ref());
        if let Some(ckpt) = ckpt {
            if epoch % ckpt.every_epochs.max(1) == 0 {
                let file = SnapshotFile {
                    version: SNAPSHOT_VERSION,
                    config_fnv,
                    epoch,
                    payload: SnapshotPayload::Sharded {
                        cells: cell_sims
                            .iter()
                            .map(|cs| cs.engine.checkpoint_state(&cs.sim))
                            .collect(),
                        ledger: ledger.clone(),
                    },
                };
                write_snapshot(&ckpt.path, &file)?;
            }
        }
        epoch += 1;
    }
    if !keep_going() {
        return Ok(None);
    }
    run_cells_until(&mut cell_sims, &plan, jobs, horizon);
    // Traces decoded after the last barrier still inform the final
    // gateway-side estimates, exactly as they inform the single
    // engine's ledger before its end-of-run readout.
    drain_traces(&mut cell_sims, &mut ledger);
    flush_cell_traces(&buffers, writer.as_ref());
    if let Some(writer) = &writer {
        let mut w = writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // analyzer: allow(panic-hygiene, reason = "a silently truncated trace is worse than an abort; matches the batch runner's write policy")
        w.flush().expect("flushing sharded trace");
    }

    let results: Vec<RunResult> = cell_sims
        .into_iter()
        .map(|cs| {
            let events = cs.sim.processed();
            cs.engine.finalize(horizon, events)
        })
        .collect();
    if let Some(ckpt) = ckpt {
        // The snapshot is a mid-run artifact; a finished run leaves a
        // clean directory (best effort — the result is already safe).
        let _ = std::fs::remove_file(&ckpt.path);
    }
    Ok(Some(merge_results(
        cfg, &plan, topology, &ledger, results, horizon, &label,
    )))
}

/// Drains every cell's deferred SoC traces into the global ledger, in
/// cell order (within a cell, decode order is preserved). Part of the
/// determinism contract: this is the only path trace records take to
/// the ledger in sharded mode.
fn drain_traces(cell_sims: &mut [CellSim], ledger: &mut DegradationLedger) {
    for cs in cell_sims.iter_mut() {
        if let LedgerMode::Deferred(pending) = &mut cs.engine.ledger {
            for (id, anchor, trace) in pending.drain(..) {
                ledger.record_trace(id, anchor, &trace);
            }
        }
    }
}

/// Appends every cell's buffered trace lines to the shared trace file,
/// in cell order. Recorders write whole lines, so each drained buffer
/// ends on a line boundary.
fn flush_cell_traces(buffers: &[Option<SharedBuffer>], writer: Option<&SharedTraceWriter>) {
    let Some(writer) = writer else { return };
    let mut w = writer
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for buffer in buffers.iter().flatten() {
        let bytes = buffer.drain();
        if !bytes.is_empty() {
            // analyzer: allow(panic-hygiene, reason = "a silently truncated trace is worse than an abort; matches the batch runner's write policy")
            w.write_all(&bytes).expect("writing sharded trace");
        }
    }
}

/// Advances every cell to `barrier` using up to `jobs` worker threads.
///
/// Cells are sliced into contiguous per-shard chunks (cell → shard is
/// non-decreasing in [`ShardPlan::build`]) and the chunks are dealt
/// round-robin to workers. Cells are mutually independent between
/// barriers, so neither the grouping nor the thread schedule can
/// change any result — parallelism here is pure wall-clock.
fn run_cells_until(cell_sims: &mut [CellSim], plan: &ShardPlan, jobs: usize, barrier: SimTime) {
    let jobs = jobs.max(1);
    if jobs == 1 || plan.shards == 1 {
        for cs in cell_sims.iter_mut() {
            cs.run_to(barrier);
        }
        return;
    }
    let mut chunks: Vec<&mut [CellSim]> = Vec::with_capacity(plan.shards);
    let mut rest = cell_sims;
    for s in 0..plan.shards {
        let count = plan.shard_of_cell.iter().filter(|&&x| x == s).count();
        let (head, tail) = rest.split_at_mut(count);
        chunks.push(head);
        rest = tail;
    }
    let workers = jobs.min(plan.shards);
    let mut per_worker: Vec<Vec<&mut [CellSim]>> = (0..workers).map(|_| Vec::new()).collect();
    for (s, chunk) in chunks.into_iter().enumerate() {
        per_worker[s % workers].push(chunk);
    }
    std::thread::scope(|scope| {
        for assigned in per_worker {
            scope.spawn(move || {
                for chunk in assigned {
                    for cs in chunk.iter_mut() {
                        cs.run_to(barrier);
                    }
                }
            });
        }
    });
}

/// Merges per-cell results into one deployment-wide [`RunResult`],
/// scattering every per-node vector by global id and recomputing the
/// network aggregate — deterministic because each node lives in exactly
/// one cell and cells are visited in index order.
fn merge_results(
    cfg: &ScenarioConfig,
    plan: &ShardPlan,
    mut topology: Topology,
    ledger: &DegradationLedger,
    results: Vec<RunResult>,
    horizon: SimTime,
    label: &str,
) -> RunResult {
    let total = plan.cell_of_node.len();
    let mut nodes = vec![NodeMetrics::default(); total];
    for (c, res) in results.iter().enumerate() {
        for (local, &id) in plan.cell_nodes[c].iter().enumerate() {
            nodes[id as usize] = res.nodes[local].clone();
            topology.placements[id as usize] = res.topology.placements[local];
        }
    }

    // Every cell schedules Sample events on the identical interval and
    // never halts early (stop_at_first_eol is rejected up front), so
    // the per-cell snapshot timelines line up index for index.
    let sample_count = results.first().map_or(0, |r| r.samples.len());
    debug_assert!(results.iter().all(|r| r.samples.len() == sample_count));
    let samples: Vec<DegradationSample> = (0..sample_count)
        .map(|s| {
            let mut per_node = vec![Default::default(); total];
            for (c, res) in results.iter().enumerate() {
                for (local, &id) in plan.cell_nodes[c].iter().enumerate() {
                    per_node[id as usize] = res.samples[s].per_node[local];
                }
            }
            DegradationSample {
                at: results[0].samples[s].at,
                per_node,
            }
        })
        .collect();

    // Cell engines record first EoL under global ids already; the
    // network-wide first is the earliest, ties broken by node id — the
    // same (time, id) order the single engine's id-ascending sample
    // loop produces.
    let first_eol = results
        .iter()
        .filter_map(|r| r.first_eol)
        .min_by_key(|&(id, t)| (t, id));

    let gateway_degradation_estimates = (0..total)
        .map(|id| ledger.degradation_of(id as u32, horizon))
        .collect();

    let mut telemetry: Option<TelemetryReport> = None;
    for res in &results {
        if let Some(report) = &res.telemetry {
            match &mut telemetry {
                Some(merged) => merged.merge(report),
                None => telemetry = Some(report.clone()),
            }
        }
    }

    RunResult {
        label: label.to_owned(),
        seed: cfg.seed,
        network: NetworkMetrics::aggregate(&nodes),
        nodes,
        samples,
        first_eol,
        gateway_degradation_estimates,
        topology,
        events_processed: results.iter().map(|r| r.events_processed).sum(),
        sim_end: horizon,
        telemetry,
    }
}
