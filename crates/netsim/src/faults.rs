//! Deterministic fault injection for the simulator.
//!
//! The engine is ideal by default: every uplink that clears the link
//! budget is demodulated, every ACK arrives, nodes never lose power
//! mid-run, and SoC telemetry is exact. [`FaultConfig`] introduces the
//! non-ideal world the paper's testbed lived in — gateway outages,
//! Gilbert–Elliott burst loss on both link directions, node reboots
//! that wipe volatile protocol state, SoC sensor error, and corrupted
//! dissemination bytes — without giving up replayability.
//!
//! # Determinism contract
//!
//! Every fault draw comes from its own named per-entity ChaCha stream
//! (`fault-ul`, `fault-dl`, `fault-reboot`, `fault-sensor`,
//! `fault-weight` indexed by node; `fault-outage` indexed by gateway),
//! derived statelessly from the scenario seed. Consequences:
//!
//! * faulted runs replay byte-identically at any `--jobs N`;
//! * enabling one fault family never perturbs the draws of another,
//!   nor the engine's pre-existing `mac`/`nodes`/`solar` streams;
//! * with [`FaultConfig::default`] (all faults off) the layer creates
//!   no streams and draws nothing — runs are byte-identical to the
//!   fault-free engine.
//!
//! The layer schedules no discrete events of its own except node
//! reboots; loss and outages are evaluated inline at the affected
//! radio operations.

use blam_des::RngSeeder;
use blam_units::{Duration, SimTime};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A fixed, operator-scheduled gateway outage window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageWindow {
    /// Gateway index into the scenario's gateway list.
    pub gateway: usize,
    /// Outage start (inclusive).
    pub start: SimTime,
    /// Outage end (exclusive).
    pub end: SimTime,
}

/// Randomly drawn gateway outages: alternating exponential up/down
/// intervals, drawn per gateway from the `fault-outage` stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomOutages {
    /// Mean time between outages (up time).
    pub mean_up: Duration,
    /// Mean outage length (down time).
    pub mean_down: Duration,
}

/// Two-state Gilbert–Elliott loss process.
///
/// The chain starts in the Good state and advances once per evaluated
/// transmission; each evaluation then draws a loss with the state's
/// probability. `loss_good = loss_bad` degenerates to Bernoulli loss.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliott {
    /// P(Good → Bad) per evaluated transmission.
    pub p_bad: f64,
    /// P(Bad → Good) per evaluated transmission.
    pub p_good: f64,
    /// Loss probability while in the Good state.
    pub loss_good: f64,
    /// Loss probability while in the Bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// A bursty channel with roughly `loss` average loss: the chain
    /// spends ~30% of attempts in the Bad state, where loss is
    /// concentrated.
    #[must_use]
    pub fn burst(loss: f64) -> Self {
        let loss = loss.clamp(0.0, 1.0);
        GilbertElliott {
            p_bad: 0.15,
            p_good: 0.35,
            loss_good: loss * 0.25,
            loss_bad: (loss * 2.5).min(1.0),
        }
    }

    /// State-independent (Bernoulli) loss with probability `loss`.
    /// `uniform(1.0)` models a link that never works.
    #[must_use]
    pub fn uniform(loss: f64) -> Self {
        let loss = loss.clamp(0.0, 1.0);
        GilbertElliott {
            p_bad: 0.0,
            p_good: 0.0,
            loss_good: loss,
            loss_bad: loss,
        }
    }

    fn validate(&self, what: &str) -> Result<(), String> {
        for (name, p) in [
            ("p_bad", self.p_bad),
            ("p_good", self.p_good),
            ("loss_good", self.loss_good),
            ("loss_bad", self.loss_bad),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{what}.{name} must be in [0, 1], got {p}"));
            }
        }
        Ok(())
    }
}

/// Node reboots at exponentially distributed intervals. A reboot wipes
/// volatile state: forecaster history, the queued SoC traces, the
/// pending `w_u` byte and any in-progress exchange.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RebootFaults {
    /// Mean time between reboots, per node.
    pub mean_interval: Duration,
}

/// SoC sensor error applied to the samples a node *reports* (the
/// compressed trace it piggybacks). The true battery state is never
/// touched — only the gateway's view of it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SocSensorFaults {
    /// Standard deviation of zero-mean Gaussian read noise, in SoC
    /// units (fraction of capacity).
    pub sigma: f64,
    /// Constant additive bias, in SoC units.
    pub bias: f64,
}

/// Which faults to inject, and how hard. All fields default to "off";
/// [`FaultConfig::default`] is the contractually fault-free
/// configuration, byte-identical to the engine without this layer.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct FaultConfig {
    /// Operator-scheduled gateway outages.
    pub scheduled_outages: Vec<OutageWindow>,
    /// Randomly drawn gateway outages.
    pub random_outages: Option<RandomOutages>,
    /// Burst loss on uplinks (data frames toward the gateway).
    pub uplink_loss: Option<GilbertElliott>,
    /// Burst loss on downlinks (ACKs toward the node).
    pub downlink_loss: Option<GilbertElliott>,
    /// Node reboots wiping volatile protocol state.
    pub reboots: Option<RebootFaults>,
    /// SoC sensor noise/bias on reported (not true) state of charge.
    pub soc_sensor: Option<SocSensorFaults>,
    /// Probability that an applied dissemination byte arrives
    /// bit-corrupted.
    pub weight_corruption: Option<f64>,
    /// Degradation-ledger staleness bound: the gateway stops
    /// extrapolating a node's degradation this long after last hearing
    /// from it. `None` keeps the (ideal-world) unbounded
    /// extrapolation.
    pub ledger_staleness: Option<Duration>,
}

impl FaultConfig {
    /// True when any fault family is configured.
    #[must_use]
    pub fn any_enabled(&self) -> bool {
        !self.scheduled_outages.is_empty()
            || self.random_outages.is_some()
            || self.uplink_loss.is_some()
            || self.downlink_loss.is_some()
            || self.reboots.is_some()
            || self.soc_sensor.is_some()
            || self.weight_corruption.is_some()
            || self.ledger_staleness.is_some()
    }

    /// The canonical "everything at once" schedule used by
    /// `blam-sim chaos` and the resilience sweep: burst loss on both
    /// directions, random outages at the given duty cycle, reboots,
    /// sensor error, corrupted bytes and a bounded ledger.
    ///
    /// `outage_duty` is the long-run fraction of time a gateway is
    /// down (0 disables outages); `loss` is the approximate average
    /// loss on each direction.
    #[must_use]
    pub fn chaos(loss: f64, outage_duty: f64, reboot_mean: Duration) -> Self {
        let random_outages = (outage_duty > 0.0).then(|| {
            let duty = outage_duty.clamp(0.001, 0.9);
            let mean_down = Duration::from_hours(1);
            let up_secs = mean_down.as_secs_f64() * (1.0 - duty) / duty;
            RandomOutages {
                mean_up: Duration::from_secs_f64(up_secs),
                mean_down,
            }
        });
        let link = (loss > 0.0).then(|| GilbertElliott::burst(loss));
        FaultConfig {
            scheduled_outages: Vec::new(),
            random_outages,
            uplink_loss: link,
            downlink_loss: link,
            reboots: (!reboot_mean.is_zero()).then_some(RebootFaults {
                mean_interval: reboot_mean,
            }),
            soc_sensor: Some(SocSensorFaults {
                sigma: 0.02,
                bias: -0.01,
            }),
            weight_corruption: Some(0.05),
            ledger_staleness: Some(Duration::from_days(3)),
        }
    }

    /// Validates probabilities, durations and gateway indices.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn validate(&self, gateways: usize) -> Result<(), String> {
        for w in &self.scheduled_outages {
            if w.gateway >= gateways {
                return Err(format!(
                    "scheduled outage names gateway {} but the scenario has {gateways}",
                    w.gateway
                ));
            }
            if w.start >= w.end {
                return Err(format!(
                    "scheduled outage for gateway {} must have start < end",
                    w.gateway
                ));
            }
        }
        if let Some(ro) = &self.random_outages {
            if ro.mean_up.is_zero() || ro.mean_down.is_zero() {
                return Err("random outage mean_up/mean_down must be positive".to_string());
            }
        }
        if let Some(ge) = &self.uplink_loss {
            ge.validate("uplink_loss")?;
        }
        if let Some(ge) = &self.downlink_loss {
            ge.validate("downlink_loss")?;
        }
        if let Some(rb) = &self.reboots {
            if rb.mean_interval.is_zero() {
                return Err("reboot mean_interval must be positive".to_string());
            }
        }
        if let Some(s) = &self.soc_sensor {
            if !(s.sigma.is_finite() && s.sigma >= 0.0 && s.bias.is_finite()) {
                return Err("soc_sensor sigma must be finite and >= 0, bias finite".to_string());
            }
        }
        if let Some(p) = self.weight_corruption {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("weight_corruption must be in [0, 1], got {p}"));
            }
        }
        Ok(())
    }
}

/// Per-node Gilbert–Elliott chain state for one link direction.
struct LossState {
    params: GilbertElliott,
    /// `true` while the chain sits in the Bad state.
    bad: Vec<bool>,
    rngs: Vec<ChaCha8Rng>,
}

impl LossState {
    /// Builds one chain per listed node. Streams are seeded by each
    /// node's *global* id, so a cell-scoped layer draws exactly the
    /// per-node sequences a deployment-wide layer would for the same
    /// nodes.
    fn build(params: GilbertElliott, seeder: &RngSeeder, stream: &str, ids: &[u32]) -> LossState {
        LossState {
            params,
            bad: vec![false; ids.len()],
            rngs: ids
                .iter()
                .map(|&id| seeder.stream_indexed(stream, u64::from(id)))
                .collect(),
        }
    }

    /// Captures the chain's mutable state: the per-node Markov state
    /// bit and the position of each node's ChaCha stream.
    fn checkpoint(&self) -> LossChainState {
        LossChainState {
            bad: self.bad.clone(),
            pos: self.rngs.iter().map(ChaCha8Rng::get_word_pos).collect(),
        }
    }

    /// Overlays state captured by [`Self::checkpoint`] onto this
    /// freshly built chain (same params, same per-node streams).
    fn restore_state(&mut self, state: &LossChainState) {
        self.bad.clone_from(&state.bad);
        for (rng, &pos) in self.rngs.iter_mut().zip(&state.pos) {
            rng.set_word_pos(pos);
        }
    }

    /// Advances node `i`'s chain one step and draws the loss verdict.
    /// Always consumes exactly two uniforms, so the draw count (and
    /// hence replay) does not depend on the chain's trajectory.
    fn step(&mut self, i: usize) -> bool {
        let rng = &mut self.rngs[i];
        let flip: f64 = rng.gen();
        let bad = &mut self.bad[i];
        if *bad {
            if flip < self.params.p_good {
                *bad = false;
            }
        } else if flip < self.params.p_bad {
            *bad = true;
        }
        let p = if *bad {
            self.params.loss_bad
        } else {
            self.params.loss_good
        };
        rng.gen::<f64>() < p
    }
}

/// Runtime state of the fault layer: precomputed outage schedules plus
/// the per-node chains and streams for each enabled fault family.
pub(crate) struct FaultLayer {
    /// Per-gateway outage intervals, sorted and non-overlapping.
    outages: Vec<Vec<(SimTime, SimTime)>>,
    uplink: Option<LossState>,
    downlink: Option<LossState>,
    reboot_mean: Option<Duration>,
    reboot_rngs: Vec<ChaCha8Rng>,
    sensor: Option<SocSensorFaults>,
    sensor_rngs: Vec<ChaCha8Rng>,
    corruption: Option<f64>,
    weight_rngs: Vec<ChaCha8Rng>,
}

/// Serializable chain state of one link direction: the Markov state
/// bit and the ChaCha stream position of every node's chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct LossChainState {
    pub(crate) bad: Vec<bool>,
    pub(crate) pos: Vec<u128>,
}

/// Serializable image of a [`FaultLayer`]'s mutable state: stream
/// positions only. Parameters and the precomputed outage schedules are
/// rebuilt deterministically from the scenario configuration.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub(crate) struct FaultLayerState {
    pub(crate) uplink: Option<LossChainState>,
    pub(crate) downlink: Option<LossChainState>,
    pub(crate) reboot_pos: Vec<u128>,
    pub(crate) sensor_pos: Vec<u128>,
    pub(crate) weight_pos: Vec<u128>,
}

/// Draws an exponentially distributed duration with the given mean
/// (inverse-CDF method; at least 1 ms so schedules always advance).
fn exp_duration(rng: &mut ChaCha8Rng, mean: Duration) -> Duration {
    let u: f64 = rng.gen();
    let secs = -mean.as_secs_f64() * (1.0 - u).ln();
    Duration::from_secs_f64(secs).max(Duration::from_millis(1))
}

impl FaultLayer {
    /// Builds the layer for a run. Streams and chain state are
    /// allocated only for enabled fault families; a default config
    /// draws nothing at all.
    pub(crate) fn build(
        cfg: &FaultConfig,
        seeder: &RngSeeder,
        nodes: usize,
        gateways: usize,
        horizon: SimTime,
    ) -> FaultLayer {
        let node_ids: Vec<u32> = (0..nodes as u32).collect();
        let gateway_ids: Vec<usize> = (0..gateways).collect();
        FaultLayer::build_scoped(cfg, seeder, &node_ids, &gateway_ids, horizon)
    }

    /// Builds the layer for a subset of the deployment: `node_ids` are
    /// the global ids of the nodes this engine simulates (local index
    /// order), `gateway_ids` its gateways. Every stream is seeded by
    /// the *global* id, so the chains and schedules of each node and
    /// gateway are identical whether the layer is deployment-wide or
    /// cell-scoped — partitioning changes who asks, never the answers.
    pub(crate) fn build_scoped(
        cfg: &FaultConfig,
        seeder: &RngSeeder,
        node_ids: &[u32],
        gateway_ids: &[usize],
        horizon: SimTime,
    ) -> FaultLayer {
        let mut outages: Vec<Vec<(SimTime, SimTime)>> = vec![Vec::new(); gateway_ids.len()];
        for w in &cfg.scheduled_outages {
            if let Some(local) = gateway_ids.iter().position(|&g| g == w.gateway) {
                outages[local].push((w.start, w.end));
            }
        }
        if let Some(ro) = &cfg.random_outages {
            for (local, slot) in outages.iter_mut().enumerate() {
                let mut rng = seeder.stream_indexed("fault-outage", gateway_ids[local] as u64);
                let mut t = SimTime::ZERO;
                loop {
                    let Some(up_end) = t.checked_add(exp_duration(&mut rng, ro.mean_up)) else {
                        break;
                    };
                    if up_end >= horizon {
                        break;
                    }
                    let down_end = up_end
                        .checked_add(exp_duration(&mut rng, ro.mean_down))
                        .unwrap_or(SimTime::MAX);
                    slot.push((up_end, down_end));
                    t = down_end;
                    if t >= horizon {
                        break;
                    }
                }
            }
        }
        for slot in &mut outages {
            slot.sort_unstable();
            // Merge overlaps so interval lookups stay a binary search.
            let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(slot.len());
            for &(s, e) in slot.iter() {
                match merged.last_mut() {
                    Some(last) if s <= last.1 => last.1 = last.1.max(e),
                    _ => merged.push((s, e)),
                }
            }
            *slot = merged;
        }

        let per_node = |name: &str, on: bool| -> Vec<ChaCha8Rng> {
            if on {
                node_ids
                    .iter()
                    .map(|&id| seeder.stream_indexed(name, u64::from(id)))
                    .collect()
            } else {
                Vec::new()
            }
        };
        FaultLayer {
            outages,
            uplink: cfg
                .uplink_loss
                .map(|ge| LossState::build(ge, seeder, "fault-ul", node_ids)),
            downlink: cfg
                .downlink_loss
                .map(|ge| LossState::build(ge, seeder, "fault-dl", node_ids)),
            reboot_mean: cfg.reboots.map(|rb| rb.mean_interval),
            reboot_rngs: per_node("fault-reboot", cfg.reboots.is_some()),
            sensor: cfg.soc_sensor,
            sensor_rngs: per_node("fault-sensor", cfg.soc_sensor.is_some()),
            corruption: cfg.weight_corruption,
            weight_rngs: per_node("fault-weight", cfg.weight_corruption.is_some()),
        }
    }

    /// True when gateway `g` is down at any point of `[start, end)`.
    pub(crate) fn gateway_down_during(&self, g: usize, start: SimTime, end: SimTime) -> bool {
        let Some(iv) = self.outages.get(g) else {
            return false;
        };
        let i = iv.partition_point(|&(_, e)| e <= start);
        iv.get(i).is_some_and(|&(s, _)| s < end)
    }

    /// True when uplink loss is configured at all.
    pub(crate) fn uplink_loss_enabled(&self) -> bool {
        self.uplink.is_some()
    }

    /// Advances node `i`'s uplink chain for one attempt; true = lost.
    pub(crate) fn uplink_lost(&mut self, i: usize) -> bool {
        self.uplink.as_mut().is_some_and(|ls| ls.step(i))
    }

    /// True when downlink loss is configured at all.
    pub(crate) fn downlink_loss_enabled(&self) -> bool {
        self.downlink.is_some()
    }

    /// Advances node `i`'s downlink chain for one ACK; true = lost.
    pub(crate) fn downlink_lost(&mut self, i: usize) -> bool {
        self.downlink.as_mut().is_some_and(|ls| ls.step(i))
    }

    /// True when reboots are configured.
    pub(crate) fn reboots_enabled(&self) -> bool {
        self.reboot_mean.is_some()
    }

    /// Draws node `i`'s next reboot instant strictly after `now`.
    pub(crate) fn next_reboot(&mut self, i: usize, now: SimTime) -> Option<SimTime> {
        let mean = self.reboot_mean?;
        now.checked_add(exp_duration(&mut self.reboot_rngs[i], mean))
    }

    /// True when SoC sensor error is configured.
    pub(crate) fn sensor_enabled(&self) -> bool {
        self.sensor.is_some()
    }

    /// The SoC node `i`'s sensor *reports* for a true value
    /// `soc` — biased, noised (Box–Muller) and clamped to [0, 1].
    /// Always consumes exactly two uniforms per reading.
    pub(crate) fn sensor_soc(&mut self, i: usize, soc: f64) -> f64 {
        let Some(s) = self.sensor else {
            return soc;
        };
        let rng = &mut self.sensor_rngs[i];
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        let z = (-2.0 * (1.0 - u1).ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (soc + s.bias + s.sigma * z).clamp(0.0, 1.0)
    }

    /// Captures the layer's mutable state for a mid-run checkpoint:
    /// loss-chain states and the position of every per-entity ChaCha
    /// stream. The outage schedules and all parameters are *not*
    /// captured — they are rebuilt bit-identically from the scenario
    /// configuration.
    pub(crate) fn checkpoint(&self) -> FaultLayerState {
        let pos = |rngs: &[ChaCha8Rng]| rngs.iter().map(ChaCha8Rng::get_word_pos).collect();
        FaultLayerState {
            uplink: self.uplink.as_ref().map(LossState::checkpoint),
            downlink: self.downlink.as_ref().map(LossState::checkpoint),
            reboot_pos: pos(&self.reboot_rngs),
            sensor_pos: pos(&self.sensor_rngs),
            weight_pos: pos(&self.weight_rngs),
        }
    }

    /// Overlays state captured by [`Self::checkpoint`] onto this
    /// freshly built layer: every stream is wound forward to its
    /// snapshot position, so the next draw of each family is exactly
    /// the draw the interrupted run would have made.
    pub(crate) fn restore_state(&mut self, state: &FaultLayerState) {
        if let (Some(chain), Some(saved)) = (self.uplink.as_mut(), state.uplink.as_ref()) {
            chain.restore_state(saved);
        }
        if let (Some(chain), Some(saved)) = (self.downlink.as_mut(), state.downlink.as_ref()) {
            chain.restore_state(saved);
        }
        let wind = |rngs: &mut Vec<ChaCha8Rng>, pos: &[u128]| {
            for (rng, &p) in rngs.iter_mut().zip(pos) {
                rng.set_word_pos(p);
            }
        };
        wind(&mut self.reboot_rngs, &state.reboot_pos);
        wind(&mut self.sensor_rngs, &state.sensor_pos);
        wind(&mut self.weight_rngs, &state.weight_pos);
    }

    /// Passes the applied dissemination byte through the corruption
    /// channel: `Some(corrupted)` when the draw says the byte was
    /// damaged in flight, `None` when it arrived intact (or the fault
    /// is off). Consumes one uniform per applied byte.
    pub(crate) fn corrupt_weight(&mut self, i: usize, byte: u8) -> Option<u8> {
        let p = self.corruption?;
        let rng = &mut self.weight_rngs[i];
        if rng.gen::<f64>() < p {
            // Flip a non-empty random bit pattern so the byte always
            // actually changes.
            let flip = rng.gen_range(1..=u8::MAX);
            Some(byte ^ flip)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(cfg: &FaultConfig, nodes: usize, gateways: usize) -> FaultLayer {
        FaultLayer::build(
            cfg,
            &RngSeeder::new(42),
            nodes,
            gateways,
            SimTime::ZERO + Duration::from_days(30),
        )
    }

    #[test]
    fn default_config_is_fully_disabled() {
        let cfg = FaultConfig::default();
        assert!(!cfg.any_enabled());
        cfg.validate(1).unwrap();
        let mut l = layer(&cfg, 4, 2);
        assert!(l.outages.iter().all(Vec::is_empty));
        assert!(!l.uplink_lost(0) && !l.downlink_lost(0));
        assert!(l.next_reboot(0, SimTime::ZERO).is_none());
        assert_eq!(l.sensor_soc(0, 0.37), 0.37);
        assert!(l.corrupt_weight(0, 99).is_none());
    }

    #[test]
    fn empty_json_deserializes_to_default() {
        let cfg: FaultConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(cfg, FaultConfig::default());
    }

    #[test]
    fn config_roundtrips_through_serde() {
        let cfg = FaultConfig::chaos(0.3, 0.1, Duration::from_days(7));
        let json = serde_json::to_string(&cfg).unwrap();
        let back: FaultConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn chaos_preset_enables_every_family_and_validates() {
        let cfg = FaultConfig::chaos(0.25, 0.08, Duration::from_days(10));
        assert!(cfg.any_enabled());
        assert!(cfg.random_outages.is_some());
        assert!(cfg.uplink_loss.is_some() && cfg.downlink_loss.is_some());
        assert!(cfg.reboots.is_some() && cfg.soc_sensor.is_some());
        assert!(cfg.weight_corruption.is_some() && cfg.ledger_staleness.is_some());
        cfg.validate(3).unwrap();
    }

    #[test]
    fn validation_rejects_malformed_fields() {
        let mut cfg = FaultConfig {
            weight_corruption: Some(1.5),
            ..FaultConfig::default()
        };
        assert!(cfg.validate(1).is_err());
        cfg.weight_corruption = None;
        cfg.scheduled_outages.push(OutageWindow {
            gateway: 3,
            start: SimTime::ZERO,
            end: SimTime::from_secs(10),
        });
        assert!(cfg.validate(1).is_err());
        cfg.scheduled_outages[0].gateway = 0;
        cfg.scheduled_outages[0].end = SimTime::ZERO;
        assert!(cfg.validate(1).is_err());
    }

    #[test]
    fn scheduled_outage_lookup_is_exact() {
        let cfg = FaultConfig {
            scheduled_outages: vec![OutageWindow {
                gateway: 0,
                start: SimTime::from_secs(100),
                end: SimTime::from_secs(200),
            }],
            ..FaultConfig::default()
        };
        let l = layer(&cfg, 1, 2);
        let t = SimTime::from_secs;
        assert!(!l.gateway_down_during(0, t(0), t(100)));
        assert!(l.gateway_down_during(0, t(50), t(101)));
        assert!(l.gateway_down_during(0, t(150), t(160)));
        assert!(l.gateway_down_during(0, t(199), t(300)));
        assert!(!l.gateway_down_during(0, t(200), t(300)));
        assert!(!l.gateway_down_during(1, t(150), t(160)));
        // Out-of-range gateway index is simply "never down".
        assert!(!l.gateway_down_during(7, t(150), t(160)));
    }

    #[test]
    fn random_outages_are_seed_deterministic_and_sorted() {
        let cfg = FaultConfig {
            random_outages: Some(RandomOutages {
                mean_up: Duration::from_hours(6),
                mean_down: Duration::from_hours(1),
            }),
            ..FaultConfig::default()
        };
        let a = layer(&cfg, 1, 2);
        let b = layer(&cfg, 1, 2);
        assert_eq!(a.outages, b.outages);
        assert!(a.outages.iter().any(|iv| !iv.is_empty()));
        // Per-gateway schedules are independent streams.
        assert_ne!(a.outages[0], a.outages[1]);
        for iv in &a.outages {
            for w in iv.windows(2) {
                assert!(w[0].1 <= w[1].0, "intervals must be disjoint and sorted");
            }
        }
    }

    #[test]
    fn uniform_total_loss_always_loses_and_zero_never_does() {
        let cfg = FaultConfig {
            uplink_loss: Some(GilbertElliott::uniform(1.0)),
            downlink_loss: Some(GilbertElliott::uniform(0.0)),
            ..FaultConfig::default()
        };
        let mut l = layer(&cfg, 2, 1);
        for _ in 0..64 {
            assert!(l.uplink_lost(1));
            assert!(!l.downlink_lost(1));
        }
    }

    #[test]
    fn burst_loss_matches_requested_average_roughly() {
        let cfg = FaultConfig {
            uplink_loss: Some(GilbertElliott::burst(0.3)),
            ..FaultConfig::default()
        };
        let mut l = layer(&cfg, 1, 1);
        let lost = (0..20_000).filter(|_| l.uplink_lost(0)).count();
        let rate = lost as f64 / 20_000.0;
        assert!((0.15..=0.45).contains(&rate), "burst loss rate {rate}");
    }

    #[test]
    fn sensor_readings_are_clamped_and_deterministic() {
        let cfg = FaultConfig {
            soc_sensor: Some(SocSensorFaults {
                sigma: 0.5,
                bias: 0.2,
            }),
            ..FaultConfig::default()
        };
        let mut a = layer(&cfg, 1, 1);
        let mut b = layer(&cfg, 1, 1);
        for k in 0..256 {
            let true_soc = f64::from(k) / 255.0;
            let r = a.sensor_soc(0, true_soc);
            assert!((0.0..=1.0).contains(&r));
            assert_eq!(r, b.sensor_soc(0, true_soc));
        }
    }

    #[test]
    fn corrupted_weight_always_differs_from_the_original() {
        let cfg = FaultConfig {
            weight_corruption: Some(1.0),
            ..FaultConfig::default()
        };
        let mut l = layer(&cfg, 1, 1);
        for byte in 0..=u8::MAX {
            let corrupted = l.corrupt_weight(0, byte).expect("p=1 always corrupts");
            assert_ne!(corrupted, byte);
        }
    }

    #[test]
    fn checkpoint_restores_every_stream_mid_draw() {
        let cfg = FaultConfig::chaos(0.3, 0.0, Duration::from_days(2));
        let mut live = layer(&cfg, 3, 1);
        // Advance every family unevenly, then checkpoint.
        for i in 0..3 {
            for _ in 0..(i + 1) * 7 {
                live.uplink_lost(i);
                live.downlink_lost(i);
            }
            live.next_reboot(i, SimTime::ZERO);
            live.sensor_soc(i, 0.5);
            live.corrupt_weight(i, 42);
        }
        let state = live.checkpoint();
        let json = serde_json::to_string(&state).unwrap();
        let back: FaultLayerState = serde_json::from_str(&json).unwrap();
        assert_eq!(state, back);

        // A fresh layer wound forward must make the draws the live
        // layer makes next, for every family.
        let mut resumed = layer(&cfg, 3, 1);
        resumed.restore_state(&back);
        for i in 0..3 {
            for _ in 0..32 {
                assert_eq!(live.uplink_lost(i), resumed.uplink_lost(i));
                assert_eq!(live.downlink_lost(i), resumed.downlink_lost(i));
            }
            assert_eq!(
                live.next_reboot(i, SimTime::ZERO),
                resumed.next_reboot(i, SimTime::ZERO)
            );
            assert_eq!(live.sensor_soc(i, 0.5), resumed.sensor_soc(i, 0.5));
            assert_eq!(live.corrupt_weight(i, 42), resumed.corrupt_weight(i, 42));
        }
    }

    #[test]
    fn reboot_schedule_is_deterministic_and_advances() {
        let cfg = FaultConfig {
            reboots: Some(RebootFaults {
                mean_interval: Duration::from_days(2),
            }),
            ..FaultConfig::default()
        };
        let mut a = layer(&cfg, 2, 1);
        let mut b = layer(&cfg, 2, 1);
        assert!(a.reboots_enabled());
        let mut t = SimTime::ZERO;
        for _ in 0..16 {
            let next = a.next_reboot(0, t).unwrap();
            assert_eq!(Some(next), b.next_reboot(0, t));
            assert!(next > t);
            t = next;
        }
    }
}
