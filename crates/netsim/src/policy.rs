//! The MAC-protocol policy layer.
//!
//! Every LoRaWAN-vs-BLAM decision the simulator makes — payload
//! overhead, charge threshold, forecast-window selection, SoC-trace
//! bookkeeping, ACK weight processing, estimator feedback — lives
//! behind the [`MacPolicy`] trait, implemented once per protocol:
//! [`AlohaPolicy`] (the LoRaWAN baseline) and [`BlamPolicy`] (the
//! paper's protocol, any H-θ variant). The engine holds one policy per
//! run and never branches on [`Protocol`] itself; a future MAC plugs in
//! as a third implementation without touching the event loop.

use blam::utility::Utility;
use blam::{BlamConfig, BlamNode, CompressedSocTrace};
use blam_energy_harvest::{Forecaster, HarvestSource};
use blam_lorawan::TxReport;
use blam_units::{Duration, Joules, SimTime};

use crate::config::Protocol;
use crate::nodes::{NodeForecaster, NodeMut, PacketState};

/// The per-node protocol state a policy installs at build time: the
/// optional BLAM state machine and the utility curve used for metric
/// accounting.
pub type NodeProtocolState = (Option<BlamNode>, Utility);

/// A policy's verdict for a freshly generated packet: the chosen
/// forecast window plus the diagnostics telemetry reports with it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowDecision {
    /// The forecast window to transmit in.
    pub window: usize,
    /// The objective value γ of the choice (0 for ALOHA).
    pub objective: f64,
    /// Utility lost by deferring, `1 − U(window)` (0 for ALOHA).
    pub utility_loss: f64,
    /// Degradation impact factor of the choice (0 for ALOHA).
    pub dif: f64,
    /// True when the decision came from the cold-start degradation
    /// ladder (forecaster wiped by a reboot), not Algorithm 1.
    pub fallback: bool,
    /// Trust in the disseminated `w_u` that informed the decision
    /// (1 within its TTL, decaying toward 0 past it; always 1 when no
    /// TTL is configured and for ALOHA).
    pub wu_trust: f64,
}

impl WindowDecision {
    /// The decision ALOHA always makes: transmit immediately.
    #[must_use]
    pub fn immediate() -> Self {
        WindowDecision {
            window: 0,
            objective: 0.0,
            utility_loss: 0.0,
            dif: 0.0,
            fallback: false,
            wu_trust: 1.0,
        }
    }
}

/// The protocol-specific decision points of a simulation run.
///
/// Methods receive the node they act on; the engine calls them at fixed
/// points of the per-node lifecycle (see `nodes.rs`). Implementations
/// must be deterministic — any randomness belongs to the engine's named
/// RNG streams, not the policy.
pub trait MacPolicy: Send + Sync {
    /// A short label for tables ("LoRaWAN", "H-50", "H-50C", …).
    fn label(&self) -> String;

    /// The charge threshold θ in effect (1 for unrestricted charging).
    fn theta(&self) -> f64;

    /// Extra uplink payload bytes the protocol piggybacks (the 4-byte
    /// compressed SoC trace for BLAM, nothing for LoRaWAN).
    fn payload_overhead(&self) -> usize;

    /// Validates protocol parameters against the scenario.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent combinations.
    fn validate(&self, scenario_window: Duration) {
        let _ = scenario_window;
    }

    /// Builds the per-node protocol state at network-construction time.
    fn node_state(
        &self,
        tx_energy: Joules,
        max_tx_energy: Joules,
        windows: usize,
    ) -> NodeProtocolState;

    /// Folds the finished sampling period into protocol state when the
    /// next packet is generated: compresses the period's SoC trace for
    /// piggybacking and feeds the forecaster what actually arrived.
    /// Called before the node's period bookkeeping rolls over.
    fn on_period_rollover(&self, node: &mut NodeMut<'_>, now: SimTime, window: Duration);

    /// Chooses the forecast window for a freshly generated packet.
    /// `Some(decision)` transmits in `decision.window`; `None` drops
    /// the packet (Algorithm 1 FAIL).
    fn select_window(
        &self,
        node: &mut NodeMut<'_>,
        now: SimTime,
        window: Duration,
    ) -> Option<WindowDecision>;

    /// Processes the normalized-degradation weight byte carried by an
    /// ACK downlink.
    fn on_ack_weight(&self, node: &mut NodeMut<'_>, byte: u8);

    /// Feeds the concluded exchange back into the protocol estimators.
    fn on_exchange_complete(
        &self,
        node: &mut NodeMut<'_>,
        packet: Option<PacketState>,
        report: &TxReport,
    );
}

/// Standard LoRaWAN: pure ALOHA. Transmit immediately in the first
/// forecast window, charge without limit, piggyback nothing, learn
/// nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlohaPolicy;

impl MacPolicy for AlohaPolicy {
    fn label(&self) -> String {
        "LoRaWAN".to_string()
    }

    fn theta(&self) -> f64 {
        1.0
    }

    fn payload_overhead(&self) -> usize {
        0
    }

    fn node_state(
        &self,
        _tx_energy: Joules,
        _max_tx_energy: Joules,
        _windows: usize,
    ) -> NodeProtocolState {
        (None, Utility::Linear)
    }

    fn on_period_rollover(&self, _node: &mut NodeMut<'_>, _now: SimTime, _window: Duration) {}

    fn select_window(
        &self,
        _node: &mut NodeMut<'_>,
        _now: SimTime,
        _window: Duration,
    ) -> Option<WindowDecision> {
        Some(WindowDecision::immediate())
    }

    fn on_ack_weight(&self, _node: &mut NodeMut<'_>, _byte: u8) {}

    fn on_exchange_complete(
        &self,
        _node: &mut NodeMut<'_>,
        _packet: Option<PacketState>,
        _report: &TxReport,
    ) {
    }
}

/// The paper's battery-lifespan-aware MAC (any H-θ variant): θ-capped
/// charging, Algorithm 1 window selection over green-energy forecasts,
/// compressed SoC traces piggybacked uplink, disseminated degradation
/// weights applied from ACKs, and EWMA estimator feedback.
#[derive(Debug, Clone)]
pub struct BlamPolicy {
    cfg: BlamConfig,
}

impl BlamPolicy {
    /// Wraps a BLAM configuration as a policy.
    #[must_use]
    pub fn new(cfg: BlamConfig) -> Self {
        BlamPolicy { cfg }
    }

    /// The underlying BLAM configuration.
    #[must_use]
    pub fn config(&self) -> &BlamConfig {
        &self.cfg
    }
}

impl MacPolicy for BlamPolicy {
    fn label(&self) -> String {
        let theta = (self.cfg.theta * 100.0).round() as u32;
        if self.cfg.use_window_selection {
            format!("H-{theta}")
        } else {
            format!("H-{theta}C")
        }
    }

    fn theta(&self) -> f64 {
        self.cfg.theta
    }

    fn payload_overhead(&self) -> usize {
        CompressedSocTrace::ENCODED_LEN
    }

    fn validate(&self, scenario_window: Duration) {
        assert!(
            self.cfg.forecast_window == scenario_window,
            "BlamConfig.forecast_window ({}) must match ScenarioConfig.forecast_window ({}) — \
             the simulator plans, observes and anchors SoC traces on the scenario's window",
            self.cfg.forecast_window,
            scenario_window
        );
    }

    fn node_state(
        &self,
        tx_energy: Joules,
        max_tx_energy: Joules,
        windows: usize,
    ) -> NodeProtocolState {
        (
            Some(BlamNode::new(
                self.cfg.clone(),
                tx_energy,
                max_tx_energy,
                windows,
            )),
            self.cfg.utility,
        )
    }

    fn on_period_rollover(&self, node: &mut NodeMut<'_>, now: SimTime, window: Duration) {
        // Fold the finished period's SoC transitions into a 4-byte
        // compressed trace for the next uplink. The very first period
        // has no predecessor to report.
        let prev_start = *node.period_start;
        if node.prev_period_start.is_some() || node.metrics.generated > 1 {
            let trace = match (*node.discharge_sample, *node.recharge_sample) {
                (Some(d), Some(r)) => Some(CompressedSocTrace {
                    discharge: d,
                    recharge: r,
                }),
                (Some(d), None) => Some(CompressedSocTrace {
                    discharge: d,
                    recharge: d,
                }),
                (None, Some(r)) => Some(CompressedSocTrace {
                    discharge: r,
                    recharge: r,
                }),
                (None, None) => None,
            };
            if let Some(t) = trace {
                // Depth 1 reproduces the paper's overwrite-with-newest
                // semantics; deeper queues keep older undelivered
                // traces so a node cut off by an outage or burst can
                // backfill the ledger once an exchange succeeds again.
                if self.cfg.trace_buffer <= 1 {
                    node.trace_queue.clear();
                }
                node.trace_queue.push_back((prev_start, t));
                while node.trace_queue.len() > self.cfg.trace_buffer.max(1) {
                    node.trace_queue.pop_front();
                }
            }
        }
        // The persistence forecaster learns from what actually arrived;
        // the oracle variants already know the trace.
        if matches!(node.forecaster, NodeForecaster::Persistence(_)) {
            for w in 0..*node.windows {
                let start = prev_start + window * w as u64;
                if start + window <= now {
                    let e = node.harvest.energy_between(start, start + window);
                    node.forecaster.observe(start, window, e);
                }
            }
        }
    }

    fn select_window(
        &self,
        node: &mut NodeMut<'_>,
        now: SimTime,
        window: Duration,
    ) -> Option<WindowDecision> {
        // Cold start after a reboot: the forecaster has no history to
        // rank windows with, so degrade gracefully to the immediate
        // window (exactly LoRaWAN's choice) for this packet rather
        // than planning on an all-zero forecast.
        if *node.cold_start {
            *node.cold_start = false;
            return Some(WindowDecision {
                fallback: true,
                ..WindowDecision::immediate()
            });
        }
        let windows = *node.windows;
        // Reused scratch: select_window runs once per node per period,
        // so the forecast and the Eq. (14) estimates land in the node's
        // rows of the store's flat matrices (sized |T| at build time)
        // instead of fresh allocations.
        debug_assert_eq!(node.forecast_scratch.len(), windows);
        for w in 0..windows {
            node.forecast_scratch[w] = node.forecaster.predict(now + window * w as u64, window);
        }
        let battery = node.battery.stored();
        // Stale w_u decays toward the neutral weight: full trust inside
        // the TTL, then linear decay to zero over one further TTL.
        let trust = match (self.cfg.wu_ttl, *node.weight_updated_at) {
            (Some(ttl), Some(at)) => {
                let age = now.saturating_since(at);
                if age <= ttl {
                    1.0
                } else {
                    (1.0 - age.saturating_sub(ttl).as_secs_f64() / ttl.as_secs_f64()).max(0.0)
                }
            }
            _ => 1.0,
        };
        let blam = node
            .blam
            .as_mut()
            .expect("BlamPolicy installs BLAM state on every node");
        blam.set_weight_trust(trust);
        blam.plan_into(battery, node.forecast_scratch, node.plan_scratch)
            .map(|p| WindowDecision {
                window: p.window,
                objective: p.objective,
                utility_loss: p.utility_loss,
                dif: p.dif,
                fallback: false,
                wu_trust: trust,
            })
    }

    fn on_ack_weight(&self, node: &mut NodeMut<'_>, byte: u8) {
        if let Some(blam) = node.blam.as_mut() {
            blam.on_weight_update(byte);
        }
    }

    fn on_exchange_complete(
        &self,
        node: &mut NodeMut<'_>,
        packet: Option<PacketState>,
        report: &TxReport,
    ) {
        if let (Some(blam), Some(p)) = (node.blam.as_mut(), packet) {
            let tx_electrical =
                node.radio.tx_power_draw(node.mac.params().tx.power) * report.total_airtime;
            blam.on_exchange_complete(p.window, report.transmissions.max(1), tx_electrical);
        }
    }
}

impl Protocol {
    /// The [`MacPolicy`] implementation for this protocol variant — the
    /// single construction site dispatching on the enum; everything
    /// downstream of here talks to the trait.
    #[must_use]
    pub fn policy(&self) -> Box<dyn MacPolicy> {
        match self {
            Protocol::Lorawan => Box::new(AlohaPolicy),
            Protocol::Blam(cfg) => Box::new(BlamPolicy::new(cfg.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aloha_is_the_lorawan_baseline() {
        let p = AlohaPolicy;
        assert_eq!(p.label(), "LoRaWAN");
        assert_eq!(p.theta(), 1.0);
        assert_eq!(p.payload_overhead(), 0);
        let (blam, utility) = p.node_state(Joules(0.04), Joules(0.08), 10);
        assert!(blam.is_none());
        assert_eq!(utility, Utility::Linear);
    }

    #[test]
    fn blam_policy_reflects_its_config() {
        let p = BlamPolicy::new(BlamConfig::h(0.5));
        assert_eq!(p.label(), "H-50");
        assert_eq!(p.theta(), 0.5);
        assert_eq!(p.payload_overhead(), CompressedSocTrace::ENCODED_LEN);
        let (blam, _) = p.node_state(Joules(0.04), Joules(0.08), 10);
        assert!(blam.is_some());
    }

    #[test]
    fn immediate_decision_is_free() {
        let d = WindowDecision::immediate();
        assert_eq!(d.window, 0);
        assert_eq!(d.objective, 0.0);
        assert_eq!(d.utility_loss, 0.0);
        assert_eq!(d.dif, 0.0);
        assert!(!d.fallback);
        assert_eq!(d.wu_trust, 1.0);
    }

    #[test]
    fn protocol_factory_dispatches() {
        assert_eq!(Protocol::Lorawan.policy().label(), "LoRaWAN");
        assert_eq!(Protocol::h(0.05).policy().label(), "H-5");
        assert_eq!(Protocol::h50c().policy().label(), "H-50C");
    }

    #[test]
    #[should_panic(expected = "must match ScenarioConfig.forecast_window")]
    fn blam_validate_rejects_window_mismatch() {
        BlamPolicy::new(BlamConfig::h(0.5)).validate(Duration::from_mins(2));
    }
}
