//! Simulation events and their dispatch to the layer handlers.
//!
//! The event vocabulary is the seam between the engine's layers: node
//! lifecycle events (`Generate`, `StartTx`, `Retransmit`, …) are
//! handled in `nodes.rs`, gateway radio events (`DownlinkStart`,
//! `Dissemination`) in `radio.rs`. [`Engine::handle`] is the single
//! routing point.

use blam_des::Simulator;
use blam_units::SimTime;

use crate::engine::Engine;

/// Simulation events.
// Serialized inside checkpoint snapshots (the pending-event queue is
// part of the engine state).
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub(crate) enum Event {
    /// The application on `node` generates a packet (period start).
    Generate { node: usize },
    /// The chosen forecast window arrived: begin the uplink exchange.
    /// Epoch-tagged so a node reboot between scheduling and firing
    /// invalidates the stale start.
    StartTx { node: usize, epoch: u64 },
    /// An uplink's airtime ended at the gateways.
    TxEnd { node: usize, epoch: u64 },
    /// The gateway may start the ACK downlink now.
    DownlinkStart {
        node: usize,
        /// Which gateway transmits the ACK.
        gateway: usize,
        /// When the downlink airtime ends (gateway busy until then).
        end: SimTime,
        /// When the node has locked onto the ACK (preamble detected) —
        /// must precede the node's receive deadline.
        ack_at: SimTime,
        epoch: u64,
        /// RX2 fallback (start, end, ack_at) if this window's gateway
        /// is busy transmitting another downlink.
        fallback: Option<(SimTime, SimTime, SimTime)>,
    },
    /// The ACK downlink finished arriving at the node.
    AckArrival { node: usize, epoch: u64 },
    /// The node's receive windows closed without an ACK.
    RxDeadline { node: usize, epoch: u64 },
    /// The ACK-timeout backoff elapsed.
    Retransmit { node: usize, epoch: u64 },
    /// Fault injection: `node` loses power and reboots, wiping its
    /// volatile protocol state (see `crate::faults`).
    Reboot { node: usize },
    /// Daily normalized-degradation dissemination at the gateway.
    Dissemination,
    /// Periodic (monthly) degradation snapshot.
    Sample,
    /// The `index`-th scenario-script event fires (see
    /// `crate::script`).
    Scripted { index: usize },
}

impl Engine {
    /// Routes one event to its layer handler (`nodes.rs` / `radio.rs`).
    pub(crate) fn handle(&mut self, sim: &mut Simulator<Event>, now: SimTime, event: Event) {
        if self.halted {
            return;
        }
        match event {
            Event::Generate { node } => self.on_generate(sim, now, node),
            Event::StartTx { node, epoch } => self.on_start_tx(sim, now, node, epoch),
            Event::TxEnd { node, epoch } => self.on_tx_end(sim, now, node, epoch),
            Event::DownlinkStart {
                node,
                gateway,
                end,
                ack_at,
                epoch,
                fallback,
            } => {
                self.on_downlink_start(sim, now, node, gateway, end, ack_at, epoch, fallback);
            }
            Event::AckArrival { node, epoch } => self.on_ack_arrival(sim, now, node, epoch),
            Event::RxDeadline { node, epoch } => self.on_rx_deadline(sim, now, node, epoch),
            Event::Retransmit { node, epoch } => self.on_retransmit(sim, now, node, epoch),
            Event::Reboot { node } => self.on_reboot(sim, now, node),
            Event::Dissemination => self.on_dissemination(sim, now),
            Event::Sample => self.on_sample(sim, now),
            Event::Scripted { index } => self.on_scripted(sim, now, index),
        }
    }
}
