//! The engine core: network construction ([`Engine::build`]) and the
//! run loop ([`Engine::run`]).
//!
//! The engine itself is thin: it assembles the layers and owns the
//! shared state. Event routing lives in the crate-private `events` module, the node
//! lifecycle in [`crate::nodes`], gateway radio arbitration in
//! the crate-private `radio` module, and every protocol decision behind the
//! [`MacPolicy`] trait in [`crate::policy`].
//! Batch execution across scenarios is [`crate::runner`]; the
//! cell-sharded execution mode is [`crate::shard`].
//!
//! Construction is split in two so both modes share the expensive,
//! draw-order-sensitive part: `global_build` runs every seeded
//! stream (topology, solar field, node construction, generation
//! phases) over the *whole* deployment, and [`Engine::build`] wraps
//! the result into one engine owning everything. The sharded runner
//! instead splits the same `GlobalBuild` into per-cell engines that
//! defer ledger traffic to the coordinator (`LedgerMode::Deferred`).

use blam::{CompressedSocTrace, DegradationLedger, SocSample};
use blam_battery::SwitchOutcome;
use blam_des::{RngSeeder, Simulator};
use blam_energy_harvest::solar::CloudModel;
use blam_energy_harvest::{SolarField, SolarModel};
use blam_lorawan::{AdrEngine, GatewayRadio, NetworkServer};
use blam_telemetry::{EventKind, FaultKind, NullSink, SimEvent, TelemetryReport, TelemetrySink};
use blam_units::{Duration, Joules, SimTime, Watts};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::config::{HarvestKind, ScenarioConfig};
use crate::events::Event;
use crate::faults::FaultLayer;
use crate::metrics::{DegradationSample, NetworkMetrics, NodeMetrics};
use crate::nodes::build_nodes;
use crate::policy::MacPolicy;
use crate::store::NodeStore;
use crate::topology::{gateway_positions, Topology};

/// Everything a finished run reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Protocol label ("LoRaWAN", "H-50", …).
    pub label: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Network-level metrics.
    pub network: NetworkMetrics,
    /// Per-node metrics.
    pub nodes: Vec<NodeMetrics>,
    /// Periodic degradation snapshots.
    pub samples: Vec<DegradationSample>,
    /// First node to reach End of Life, if any: (node, time).
    pub first_eol: Option<(usize, SimTime)>,
    /// The gateway-side degradation estimate per node at the end of the
    /// run, reconstructed purely from the 4-byte compressed SoC traces
    /// piggybacked on uplinks (all zeros for the LoRaWAN baseline,
    /// which piggybacks nothing).
    pub gateway_degradation_estimates: Vec<f64>,
    /// The deployment.
    pub topology: Topology,
    /// Events processed by the simulator.
    pub events_processed: u64,
    /// When the simulation ended (horizon, or early EoL stop).
    pub sim_end: SimTime,
    /// Telemetry collected during the run, when a recording sink was
    /// attached ([`Engine::with_sink`]). `None` — and absent from the
    /// serialized JSON — for the default [`NullSink`], keeping
    /// disabled runs byte-identical to pre-telemetry results.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub telemetry: Option<TelemetryReport>,
}

impl RunResult {
    /// Network battery lifespan in days (Fig. 8), if a node reached
    /// EoL during the run.
    #[must_use]
    pub fn lifespan_days(&self) -> Option<f64> {
        self.first_eol
            .map(|(_, t)| t.as_millis() as f64 / 86_400_000.0)
    }
}

/// How an engine interacts with the gateway-side degradation ledger.
///
/// The single-engine path owns the ledger and processes
/// [`Event::Dissemination`] itself. A cell engine in the sharded mode
/// never sees dissemination events: it buffers decoded SoC traces
/// here, and the coordinator drains them into the one global ledger at
/// every epoch barrier — global-id keyed, in deterministic cell order.
pub(crate) enum LedgerMode {
    /// This engine owns the ledger and disseminates locally.
    Local(DegradationLedger),
    /// Cell engine: decoded traces pile up as (global node id, period
    /// anchor, trace) until the coordinator drains them.
    Deferred(Vec<(u32, SimTime, CompressedSocTrace)>),
}

/// The deployment-wide, draw-order-sensitive part of construction,
/// shared verbatim by the single engine and the sharded coordinator:
/// every value here is produced by the same named RNG streams in the
/// same order regardless of how execution is later partitioned.
pub(crate) struct GlobalBuild {
    /// The protocol under test.
    pub(crate) policy: Box<dyn MacPolicy>,
    /// The generated deployment.
    pub(crate) topology: Topology,
    /// All nodes, in global-id order.
    pub(crate) store: NodeStore,
    /// Initial generation phase per node (from the "phases" stream).
    pub(crate) phases: Vec<Duration>,
    /// The commissioned degradation ledger.
    pub(crate) ledger: DegradationLedger,
}

/// Builds everything that must be identical across execution modes:
/// topology, harvest field, nodes, generation phases and the
/// commissioned ledger.
///
/// # Panics
///
/// Panics if the configuration fails validation.
pub(crate) fn global_build(cfg: &ScenarioConfig) -> GlobalBuild {
    cfg.validate();
    let policy = cfg.protocol.policy();
    let seeder = RngSeeder::new(cfg.seed);
    let mut topology = Topology::generate(cfg);
    if let Some(sf) = cfg.force_sf {
        for p in &mut topology.placements {
            p.sf = sf;
        }
    }

    let mut solar_rng = seeder.stream("solar");
    let field = match cfg.harvest {
        HarvestKind::Solar => {
            let solar_model = SolarModel {
                peak_power: Watts(1.0),
                clouds: CloudModel::default(),
                start_day_of_year: cfg.solar_start_day,
                ..SolarModel::default()
            };
            SolarField::generate(
                &solar_model,
                cfg.solar_regions,
                cfg.solar_trace_days,
                cfg.solar_step,
                &mut solar_rng,
            )
        }
        HarvestKind::Wind => {
            let wind = blam_energy_harvest::WindModel {
                rated_power: Watts(1.0),
                ..blam_energy_harvest::WindModel::default()
            };
            let regions = (0..cfg.solar_regions)
                .map(|_| {
                    std::sync::Arc::new(wind.generate(
                        cfg.solar_trace_days,
                        cfg.solar_step,
                        &mut solar_rng,
                    ))
                })
                .collect();
            SolarField::from_regions(regions)
        }
    };

    let gw_positions = gateway_positions(cfg);
    let mut node_rng = seeder.stream("nodes");
    let store = build_nodes(
        cfg,
        policy.as_ref(),
        &topology,
        &field,
        &gw_positions,
        &mut node_rng,
    );

    // Initial generation phases draw from their own named stream, one
    // draw per node in global-id order — computed at build time so a
    // cell engine can schedule its slice without replaying the whole
    // sequence.
    let mut phase_rng = seeder.stream("phases");
    let phases: Vec<Duration> = (0..store.len())
        .map(|i| {
            if cfg.synchronized_start {
                Duration::ZERO
            } else {
                Duration::from_millis(phase_rng.gen_range(0..store.period_of(i).as_millis()))
            }
        })
        .collect();

    let mut ledger =
        DegradationLedger::with_constants(cfg.forecast_window, cfg.temperature, cfg.degradation);
    if cfg.reference_impl {
        // Replay-per-pass oracle ledger (must be switched before
        // any commissioning registration so the replay logs see it).
        ledger = ledger.into_reference();
    }
    // Battery age is commissioning metadata: pre-aged nodes are
    // registered so the gateway's normalized-degradation ranking
    // reflects their prior wear from day one.
    let aged_count = (cfg.aged_fraction * cfg.nodes as f64) as usize;
    for i in 0..aged_count {
        let age = Duration::from_days((cfg.aged_years * 365.0) as u64);
        let daily = blam_battery::Cycle::full(0.95, 0.7);
        let prior_cycles = cfg.degradation.cycle_damage(&daily) * cfg.aged_years * 365.0;
        ledger.register_prior_age(i as u32, age, 0.85, prior_cycles);
    }

    GlobalBuild {
        policy,
        topology,
        store,
        phases,
        ledger,
    }
}

/// The assembled simulation.
pub struct Engine {
    pub(crate) cfg: ScenarioConfig,
    pub(crate) topology: Topology,
    pub(crate) store: NodeStore,
    pub(crate) phases: Vec<Duration>,
    pub(crate) gateways: Vec<GatewayRadio>,
    pub(crate) server: NetworkServer,
    pub(crate) adr: Option<AdrEngine>,
    pub(crate) ledger: LedgerMode,
    pub(crate) policy: Box<dyn MacPolicy>,
    pub(crate) faults: FaultLayer,
    pub(crate) mac_rng: ChaCha8Rng,
    pub(crate) halted: bool,
    pub(crate) first_eol: Option<(usize, SimTime)>,
    pub(crate) samples: Vec<DegradationSample>,
    pub(crate) telemetry: Box<dyn TelemetrySink>,
}

impl Engine {
    /// Builds the network for a scenario.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    #[must_use]
    pub fn build(cfg: ScenarioConfig) -> Self {
        let GlobalBuild {
            policy,
            topology,
            store,
            phases,
            ledger,
        } = global_build(&cfg);
        let seeder = RngSeeder::new(cfg.seed);
        // Built from its own named streams (`fault-*`), so an all-off
        // config allocates nothing and perturbs no existing stream.
        let faults = FaultLayer::build(
            &cfg.faults,
            &seeder,
            cfg.nodes,
            cfg.gateways,
            SimTime::ZERO + cfg.duration,
        );
        Engine {
            gateways: (0..cfg.gateways)
                .map(|_| GatewayRadio::new(cfg.demod_paths).with_interference(cfg.interference))
                .collect(),
            server: NetworkServer::new(),
            adr: cfg.adr.then(AdrEngine::standard),
            ledger: LedgerMode::Local(ledger),
            policy,
            faults,
            mac_rng: seeder.stream("mac"),
            topology,
            store,
            phases,
            cfg,
            halted: false,
            first_eol: None,
            samples: Vec::new(),
            telemetry: Box::new(NullSink),
        }
    }

    /// Attaches a telemetry sink for the run (the default is the
    /// zero-overhead [`NullSink`]). Sinks observe the simulation; they
    /// never feed back into it, so results are byte-identical whatever
    /// sink is attached.
    #[must_use]
    pub fn with_sink(mut self, sink: Box<dyn TelemetrySink>) -> Self {
        self.telemetry = sink;
        self
    }

    /// Records one telemetry event. Callers guard with
    /// [`Self::telemetry_on`] so a disabled sink never even constructs
    /// the event. Events always carry the node's *global* id, so cell
    /// streams concatenate without remapping.
    pub(crate) fn emit(&mut self, at: SimTime, node: usize, kind: EventKind) {
        self.telemetry.record(&SimEvent {
            t_ms: at.as_millis(),
            node: self.store.global_id(node),
            kind,
        });
    }

    /// Whether telemetry events should be built at all.
    #[inline]
    pub(crate) fn telemetry_on(&self) -> bool {
        self.telemetry.enabled()
    }

    /// Settles node `i` up to `now` (see [`NodeMut::settle`]) and emits
    /// the settlement-level telemetry: a `Brownout` when demand went
    /// unmet and an edge-triggered `SocCapped` when the θ cap starts
    /// spilling harvest. Observation only — the outcome returned is
    /// exactly what the plain settle produced.
    ///
    /// [`NodeMut::settle`]: crate::nodes::NodeMut::settle
    pub(crate) fn settle_node(&mut self, now: SimTime, i: usize, extra: Joules) -> SwitchOutcome {
        let window = self.cfg.forecast_window;
        let out = self.store.node_mut(i).settle(now, extra, window);
        if out.charged.0 > 0.0 && self.faults.sensor_enabled() {
            // The SoC *sensor* misreads the recharge transition the
            // settle just recorded; the true battery state is untouched
            // — only the trace the node will report is.
            let reported = self
                .faults
                .sensor_soc(i, self.store.node_mut(i).battery.soc());
            let node = self.store.node_mut(i);
            let w = node.window_index(now, window) as u8;
            *node.recharge_sample = Some(SocSample::new(w, reported));
            if self.telemetry_on() {
                self.emit(
                    now,
                    i,
                    EventKind::FaultInjected {
                        fault: FaultKind::SensorNoise,
                    },
                );
            }
        }
        if self.telemetry_on() {
            if out.deficit.0 > 0.0 {
                self.emit(
                    now,
                    i,
                    EventKind::Brownout {
                        deficit_j: out.deficit.0,
                    },
                );
            }
            let spilling = out.spilled.0 > 0.0;
            if spilling && !*self.store.node_mut(i).cap_latched {
                let soc = self.store.node_mut(i).battery.soc();
                self.emit(
                    now,
                    i,
                    EventKind::SocCapped {
                        spilled_j: out.spilled.0,
                        soc,
                    },
                );
            }
            *self.store.node_mut(i).cap_latched = spilling;
        }
        out
    }

    /// Schedules the initial event population: staggered packet
    /// generation (phases precomputed at build time), reboot faults,
    /// dissemination (only when this engine owns the ledger — cell
    /// engines receive piggyback bytes from the coordinator instead)
    /// and periodic sampling. Insertion order is part of the
    /// determinism contract: ties at equal timestamps break FIFO.
    pub(crate) fn schedule_initial_events(&mut self, sim: &mut Simulator<Event>) {
        for (i, &phase) in self.phases.iter().enumerate() {
            sim.schedule(SimTime::ZERO + phase, Event::Generate { node: i });
        }
        if self.faults.reboots_enabled() {
            for i in 0..self.store.len() {
                if let Some(at) = self.faults.next_reboot(i, SimTime::ZERO) {
                    sim.schedule(at, Event::Reboot { node: i });
                }
            }
        }
        if matches!(self.ledger, LedgerMode::Local(_)) {
            sim.schedule(
                SimTime::ZERO + self.cfg.dissemination_interval,
                Event::Dissemination,
            );
        }
        sim.schedule(SimTime::ZERO + self.cfg.sample_interval, Event::Sample);
        // Scenario-script events last: at equal timestamps they fire
        // after the periodic events scheduled above (FIFO ties), and
        // among themselves in list order. Scheduled identically by
        // every cell engine, so scripted sharded runs stay
        // byte-identical across shard/worker counts.
        for index in 0..self.cfg.script.events.len() {
            let at = self.cfg.script.events[index].at;
            sim.schedule(SimTime::ZERO + at, Event::Scripted { index });
        }
    }

    /// Runs the simulation to its horizon (or the first EoL when
    /// configured) and returns the results.
    #[must_use]
    pub fn run(mut self) -> RunResult {
        // The reference engine drives the original binary-heap event
        // queue; both queues promise the same (time, id) FIFO order, so
        // results are byte-identical — the differential tests hold the
        // engine to that.
        let mut sim: Simulator<Event> = if self.cfg.reference_impl {
            Simulator::reference()
        } else {
            Simulator::new()
        };
        let horizon = SimTime::ZERO + self.cfg.duration;
        let label = self.policy.label();
        self.telemetry
            .begin(&label, self.cfg.seed, self.store.total() as u32);

        self.schedule_initial_events(&mut sim);
        sim.run_until(horizon, |sim, now, ev| self.handle(sim, now, ev));
        let events_processed = sim.processed();
        self.finalize(horizon, events_processed)
    }

    /// Runs the simulation like [`Engine::run`], but polls
    /// `keep_going` every `checkpoint` of simulated time and abandons
    /// the run — returning `None` — as soon as it reports `false`.
    ///
    /// The windowed `run_until` stepping processes exactly the events
    /// a single horizon-length `run_until` would, in the same order
    /// (each window is end-exclusive, so concatenated windows preserve
    /// the global (time, id) FIFO pop order): a completed
    /// interruptible run is byte-identical to [`Engine::run`]. This is
    /// what lets the campaign daemon cancel long jobs promptly while
    /// keeping finished jobs bit-reproducible against one-shot runs.
    ///
    /// A zero `checkpoint` degenerates to a single window (one poll up
    /// front, then an uninterruptible run to the horizon).
    #[must_use]
    pub fn run_interruptible(
        mut self,
        checkpoint: Duration,
        mut keep_going: impl FnMut() -> bool,
    ) -> Option<RunResult> {
        let mut sim: Simulator<Event> = if self.cfg.reference_impl {
            Simulator::reference()
        } else {
            Simulator::new()
        };
        let horizon = SimTime::ZERO + self.cfg.duration;
        let label = self.policy.label();
        self.telemetry
            .begin(&label, self.cfg.seed, self.store.total() as u32);
        self.schedule_initial_events(&mut sim);
        let step = if checkpoint.is_zero() {
            self.cfg.duration
        } else {
            checkpoint
        };
        let mut barrier = SimTime::ZERO;
        loop {
            if !keep_going() {
                return None;
            }
            barrier = barrier + step;
            if barrier >= horizon {
                barrier = horizon;
            }
            sim.run_until(barrier, |sim, now, ev| self.handle(sim, now, ev));
            if barrier >= horizon {
                break;
            }
        }
        let events_processed = sim.processed();
        Some(self.finalize(horizon, events_processed))
    }

    /// Final settlement, degradation refresh and result assembly.
    /// Shared by [`Engine::run`] and the sharded coordinator (which
    /// drives the simulator itself through windowed barriers).
    ///
    /// A `LedgerMode::Deferred` engine reports zeroed
    /// `gateway_degradation_estimates`; the coordinator overwrites them
    /// from the one global ledger during the merge.
    pub(crate) fn finalize(mut self, horizon: SimTime, events_processed: u64) -> RunResult {
        let sim_end = match self.first_eol {
            Some((_, t)) if self.cfg.stop_at_first_eol => t,
            _ => horizon,
        };
        let window = self.cfg.forecast_window;
        // Final settlement and degradation refresh.
        for i in 0..self.store.len() {
            let mut node = self.store.node_mut(i);
            node.settle(sim_end, Joules::ZERO, window);
            let d = node.battery.refresh_degradation(sim_end);
            node.metrics.final_degradation = d;
        }
        let node_metrics: Vec<NodeMetrics> = self.store.metrics_snapshot();
        let gateway_degradation_estimates: Vec<f64> = match &self.ledger {
            LedgerMode::Local(ledger) => (0..self.store.len())
                .map(|i| ledger.degradation_of(self.store.global_id(i), sim_end))
                .collect(),
            LedgerMode::Deferred(_) => vec![0.0; self.store.len()],
        };
        // Reflect ADR-commanded parameter changes in the reported
        // topology (node-side placements are authoritative). Placements
        // align with the store's local order: the full deployment for a
        // single engine, the cell's own nodes for a cell engine — the
        // coordinator scatters those back to global ids when merging.
        for i in 0..self.store.len() {
            self.topology.placements[i] = self.store.placement_of(i);
        }
        let telemetry = self.telemetry.finish();
        RunResult {
            label: self.policy.label(),
            seed: self.cfg.seed,
            network: NetworkMetrics::aggregate(&node_metrics),
            nodes: node_metrics,
            samples: self.samples,
            first_eol: self.first_eol,
            gateway_degradation_estimates,
            topology: self.topology,
            events_processed,
            sim_end,
            telemetry,
        }
    }
}
