//! The simulation engine: event handlers wiring MAC, radio, battery,
//! harvesting and the BLAM protocol together.

use blam::utility::Utility;
use blam::{BlamNode, CompressedSocTrace, DegradationLedger, SocSample};
use blam_battery::{Battery, PowerSwitch, EOL_DEGRADATION};
use blam_des::{RngSeeder, Simulator};
use blam_energy_harvest::{
    DiurnalPersistence, Forecaster, HarvestSource, NodeHarvest, NoisyOracle, Oracle, SolarField,
    SolarModel,
};
use blam_energy_harvest::solar::CloudModel;
use blam_lora_phy::{Bandwidth, CodingRate, TxConfig};
use blam_lorawan::{
    AdrEngine, ClassAMac, DeviceAddr, GatewayRadio, MacAction, MacParams, NetworkServer, TxReport,
    Uplink, UplinkTransmission,
};
use blam_units::{Dbm, Duration, Joules, SimTime, Watts};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::config::{ForecasterKind, HarvestKind, Protocol, ScenarioConfig};
use crate::metrics::{DegradationSample, NetworkMetrics, NodeMetrics};
use crate::node::{NodeForecaster, PacketState, SimNode};
use crate::topology::{gateway_positions, Topology};

/// Simulation events.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// The application on `node` generates a packet (period start).
    Generate { node: usize },
    /// The chosen forecast window arrived: begin the uplink exchange.
    StartTx { node: usize },
    /// An uplink's airtime ended at the gateways.
    TxEnd { node: usize, epoch: u64 },
    /// The gateway may start the ACK downlink now.
    DownlinkStart {
        node: usize,
        /// Which gateway transmits the ACK.
        gateway: usize,
        /// When the downlink airtime ends (gateway busy until then).
        end: SimTime,
        /// When the node has locked onto the ACK (preamble detected) —
        /// must precede the node's receive deadline.
        ack_at: SimTime,
        epoch: u64,
        /// RX2 fallback (start, end, ack_at) if this window's gateway
        /// is busy transmitting another downlink.
        fallback: Option<(SimTime, SimTime, SimTime)>,
    },
    /// The ACK downlink finished arriving at the node.
    AckArrival { node: usize, epoch: u64 },
    /// The node's receive windows closed without an ACK.
    RxDeadline { node: usize, epoch: u64 },
    /// The ACK-timeout backoff elapsed.
    Retransmit { node: usize, epoch: u64 },
    /// Daily normalized-degradation dissemination at the gateway.
    Dissemination,
    /// Periodic (monthly) degradation snapshot.
    Sample,
}

/// The Class-A receive-window timeout: long enough to detect a
/// preamble (8 symbols) at the RX2 data rate, at least 50 ms.
fn rx_window_timeout(plan: &blam_lora_phy::ChannelPlan) -> Duration {
    let symbol =
        blam_lora_phy::symbol_duration_secs(plan.rx2_sf, plan.rx2_channel.bandwidth);
    Duration::from_secs_f64((8.0 * symbol).max(0.05))
}

/// Everything a finished run reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Protocol label ("LoRaWAN", "H-50", …).
    pub label: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Network-level metrics.
    pub network: NetworkMetrics,
    /// Per-node metrics.
    pub nodes: Vec<NodeMetrics>,
    /// Periodic degradation snapshots.
    pub samples: Vec<DegradationSample>,
    /// First node to reach End of Life, if any: (node, time).
    pub first_eol: Option<(usize, SimTime)>,
    /// The gateway-side degradation estimate per node at the end of the
    /// run, reconstructed purely from the 4-byte compressed SoC traces
    /// piggybacked on uplinks (all zeros for the LoRaWAN baseline,
    /// which piggybacks nothing).
    pub gateway_degradation_estimates: Vec<f64>,
    /// The deployment.
    pub topology: Topology,
    /// Events processed by the simulator.
    pub events_processed: u64,
    /// When the simulation ended (horizon, or early EoL stop).
    pub sim_end: SimTime,
}

impl RunResult {
    /// Network battery lifespan in days (Fig. 8), if a node reached
    /// EoL during the run.
    #[must_use]
    pub fn lifespan_days(&self) -> Option<f64> {
        self.first_eol
            .map(|(_, t)| t.as_millis() as f64 / 86_400_000.0)
    }
}

/// The assembled simulation.
pub struct Engine {
    cfg: ScenarioConfig,
    topology: Topology,
    nodes: Vec<SimNode>,
    gateways: Vec<GatewayRadio>,
    server: NetworkServer,
    adr: Option<AdrEngine>,
    ledger: DegradationLedger,
    mac_rng: ChaCha8Rng,
    halted: bool,
    first_eol: Option<(usize, SimTime)>,
    samples: Vec<DegradationSample>,
}

impl Engine {
    /// Builds the network for a scenario.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    #[must_use]
    pub fn build(cfg: ScenarioConfig) -> Self {
        cfg.validate();
        let seeder = RngSeeder::new(cfg.seed);
        let mut topology = Topology::generate(&cfg);
        if let Some(sf) = cfg.force_sf {
            for p in &mut topology.placements {
                p.sf = sf;
            }
        }

        let mut solar_rng = seeder.stream("solar");
        let field = match cfg.harvest {
            HarvestKind::Solar => {
                let solar_model = SolarModel {
                    peak_power: Watts(1.0),
                    clouds: CloudModel::default(),
                    start_day_of_year: cfg.solar_start_day,
                    ..SolarModel::default()
                };
                SolarField::generate(
                    &solar_model,
                    cfg.solar_regions,
                    cfg.solar_trace_days,
                    cfg.solar_step,
                    &mut solar_rng,
                )
            }
            HarvestKind::Wind => {
                let wind = blam_energy_harvest::WindModel {
                    rated_power: Watts(1.0),
                    ..blam_energy_harvest::WindModel::default()
                };
                let regions = (0..cfg.solar_regions)
                    .map(|_| {
                        std::sync::Arc::new(wind.generate(
                            cfg.solar_trace_days,
                            cfg.solar_step,
                            &mut solar_rng,
                        ))
                    })
                    .collect();
                SolarField::from_regions(regions)
            }
        };

        let gw_positions = gateway_positions(&cfg);
        let mut node_rng = seeder.stream("nodes");
        let payload_overhead = match cfg.protocol {
            Protocol::Lorawan => 0,
            Protocol::Blam(_) => CompressedSocTrace::ENCODED_LEN,
        };
        let nodes: Vec<SimNode> = (0..cfg.nodes)
            .map(|i| {
                let placement = topology.placements[i];
                let tx = TxConfig::new(placement.sf, Bandwidth::Khz125, CodingRate::Cr4_5)
                    .with_power(cfg.tx_power);
                // Whole-minute periods (as in the paper's "[16, 60] Min"
                // draw): nodes sharing a period stay phase-locked, which
                // is what creates the persistent collisions Eq. (14)
                // learns to escape.
                let period = Duration::from_mins(node_rng.gen_range(
                    (cfg.period_min.as_millis() / 60_000)..=(cfg.period_max.as_millis() / 60_000),
                ));
                let windows = cfg.windows_in(period);
                let phy_len =
                    cfg.payload_bytes + payload_overhead + blam_lorawan::MAC_OVERHEAD_BYTES;
                let tx_energy = cfg.radio.tx_energy(&tx, phy_len);
                let rx_energy = cfg.radio.rx_energy(rx_window_timeout(&cfg.plan) * 2);
                let sleep = cfg.mcu_sleep + cfg.radio.sleep_power_draw();

                // Battery sized to `battery_days` of average operation.
                let packets_per_day = 86_400.0 / period.as_secs_f64();
                let daily =
                    sleep * Duration::from_days(1) + (tx_energy + rx_energy) * packets_per_day;
                let capacity = daily * cfg.battery_days;

                // Panel sized so peak power funds `solar_peak_tx_multiple`
                // transmissions per forecast window (the paper's rule).
                let peak = Watts(
                    cfg.solar_peak_tx_multiple * tx_energy.0
                        / cfg.forecast_window.as_secs_f64(),
                );
                let region = field.region(i).clone();
                let shading = node_rng.gen_range(0.7..=1.0);
                let factor = (peak.0 / region.peak_power().0 * shading).min(1.0);
                let harvest = NodeHarvest::new(region, factor);

                let forecaster = match cfg.forecaster {
                    ForecasterKind::DiurnalPersistence => NodeForecaster::Persistence(
                        DiurnalPersistence::new(cfg.forecast_window, 0.3),
                    ),
                    ForecasterKind::Oracle => {
                        NodeForecaster::Oracle(Oracle::new(harvest.clone()))
                    }
                    ForecasterKind::Noisy(sigma) => NodeForecaster::Noisy(NoisyOracle::new(
                        harvest.clone(),
                        sigma,
                        cfg.seed ^ (i as u64),
                    )),
                };

                let theta = cfg.protocol.theta();
                // Eq. (15)'s E_max is the node's own worst-case single
                // transmission: its radio configuration at maximum
                // power. Normalizing per node lets the DIF span its
                // full [0, 1] range for every node regardless of SF.
                let e_max = cfg.radio.tx_energy(&tx.with_power(Dbm(20.0)), phy_len);
                let (blam, utility) = match &cfg.protocol {
                    Protocol::Lorawan => (None, Utility::Linear),
                    Protocol::Blam(bcfg) => (
                        Some(BlamNode::new(bcfg.clone(), tx_energy, e_max, windows)),
                        bcfg.utility,
                    ),
                };

                let supercap = cfg.supercap_tx_multiple.map(|m| {
                    blam_battery::Supercap::new(
                        tx_energy * m,
                        Watts::from_milliwatts(0.001),
                    )
                });
                let gateway_links: Vec<_> = gw_positions
                    .iter()
                    .map(|&gp| {
                        let d = blam_units::Meters(
                            placement.position.distance_to(gp).0.max(1.0),
                        );
                        blam_lora_phy::LinkBudget::new(d)
                            .with_path_loss(cfg.path_loss)
                            .with_shadowing(placement.link.shadowing)
                    })
                    .collect();
                SimNode {
                    id: i,
                    placement,
                    gateway_links,
                    inflight: Vec::new(),
                    mac: ClassAMac::new(MacParams {
                        device: DeviceAddr(i as u32),
                        plan: cfg.plan.clone(),
                        tx,
                        duty_cycle: cfg.duty_cycle,
                        rx_window: rx_window_timeout(&cfg.plan),
                        ..MacParams::default()
                    }),
                    blam,
                    battery: if (i as f64) < cfg.aged_fraction * cfg.nodes as f64 {
                        // Pre-aged battery: served `aged_years` near-full
                        // (the LoRaWAN charging habit) with one shallow
                        // cycle per day.
                        let age = Duration::from_days((cfg.aged_years * 365.0) as u64);
                        let daily = blam_battery::Cycle::full(0.95, 0.7);
                        let prior_cycles =
                            cfg.degradation.cycle_damage(&daily) * cfg.aged_years * 365.0;
                        Battery::pre_aged(
                            capacity,
                            theta,
                            cfg.temperature,
                            cfg.degradation,
                            age,
                            0.85,
                            prior_cycles,
                        )
                    } else {
                        Battery::with_constants(capacity, theta, cfg.temperature, cfg.degradation)
                    },
                    switch: PowerSwitch::new(theta),
                    supercap,
                    harvest,
                    forecaster,
                    period,
                    windows,
                    radio: cfg.radio.clone(),
                    mcu_sleep: cfg.mcu_sleep,
                    last_settle: SimTime::ZERO,
                    period_start: SimTime::ZERO,
                    prev_period_start: None,
                    packet: None,
                    discharge_sample: None,
                    recharge_sample: None,
                    pending_weight: None,
                    pending_adr: None,
                    pending_deadline: None,
                    pending_trace: None,
                    current_phy_len: phy_len,
                    current_channel: cfg.plan.uplink[0],
                    exchange_epoch: 0,
                    utility,
                    metrics: NodeMetrics::default(),
                }
            })
            .collect();

        let mut ledger = DegradationLedger::with_constants(
            cfg.forecast_window,
            cfg.temperature,
            cfg.degradation,
        );
        // Battery age is commissioning metadata: pre-aged nodes are
        // registered so the gateway's normalized-degradation ranking
        // reflects their prior wear from day one.
        let aged_count = (cfg.aged_fraction * cfg.nodes as f64) as usize;
        for i in 0..aged_count {
            let age = Duration::from_days((cfg.aged_years * 365.0) as u64);
            let daily = blam_battery::Cycle::full(0.95, 0.7);
            let prior_cycles = cfg.degradation.cycle_damage(&daily) * cfg.aged_years * 365.0;
            ledger.register_prior_age(i as u32, age, 0.85, prior_cycles);
        }
        Engine {
            gateways: (0..cfg.gateways)
                .map(|_| GatewayRadio::new(cfg.demod_paths).with_interference(cfg.interference))
                .collect(),
            server: NetworkServer::new(),
            adr: cfg.adr.then(AdrEngine::standard),
            ledger,
            mac_rng: seeder.stream("mac"),
            topology,
            nodes,
            cfg,
            halted: false,
            first_eol: None,
            samples: Vec::new(),
        }
    }

    /// Runs the simulation to its horizon (or the first EoL when
    /// configured) and returns the results.
    #[must_use]
    pub fn run(mut self) -> RunResult {
        let mut sim: Simulator<Event> = Simulator::new();
        let horizon = SimTime::ZERO + self.cfg.duration;

        // Initial events: staggered packet generation, daily
        // dissemination, periodic sampling.
        let seeder = RngSeeder::new(self.cfg.seed);
        let mut phase_rng = seeder.stream("phases");
        for i in 0..self.nodes.len() {
            let phase = if self.cfg.synchronized_start {
                Duration::ZERO
            } else {
                Duration::from_millis(phase_rng.gen_range(0..self.nodes[i].period.as_millis()))
            };
            sim.schedule(SimTime::ZERO + phase, Event::Generate { node: i });
        }
        sim.schedule(
            SimTime::ZERO + self.cfg.dissemination_interval,
            Event::Dissemination,
        );
        sim.schedule(SimTime::ZERO + self.cfg.sample_interval, Event::Sample);

        sim.run_until(horizon, |sim, now, ev| self.handle(sim, now, ev));

        let sim_end = match self.first_eol {
            Some((_, t)) if self.cfg.stop_at_first_eol => t,
            _ => horizon,
        };
        // Final settlement and degradation refresh.
        for node in &mut self.nodes {
            node.settle(sim_end, Joules::ZERO, self.cfg.forecast_window);
            node.metrics.final_degradation = node.battery.refresh_degradation(sim_end);
        }
        let node_metrics: Vec<NodeMetrics> =
            self.nodes.iter().map(|n| n.metrics.clone()).collect();
        let gateway_degradation_estimates: Vec<f64> = (0..self.nodes.len())
            .map(|i| self.ledger.degradation_of(i as u32, sim_end))
            .collect();
        // Reflect ADR-commanded parameter changes in the reported
        // topology (node-side placements are authoritative).
        for (i, node) in self.nodes.iter().enumerate() {
            self.topology.placements[i] = node.placement;
        }
        RunResult {
            label: self.cfg.protocol.label(),
            seed: self.cfg.seed,
            network: NetworkMetrics::aggregate(&node_metrics),
            nodes: node_metrics,
            samples: self.samples,
            first_eol: self.first_eol,
            gateway_degradation_estimates,
            topology: self.topology,
            events_processed: sim.processed(),
            sim_end,
        }
    }

    fn handle(&mut self, sim: &mut Simulator<Event>, now: SimTime, event: Event) {
        if self.halted {
            return;
        }
        match event {
            Event::Generate { node } => self.on_generate(sim, now, node),
            Event::StartTx { node } => self.on_start_tx(sim, now, node),
            Event::TxEnd { node, epoch } => self.on_tx_end(sim, now, node, epoch),
            Event::DownlinkStart {
                node,
                gateway,
                end,
                ack_at,
                epoch,
                fallback,
            } => {
                self.on_downlink_start(sim, now, node, gateway, end, ack_at, epoch, fallback);
            }
            Event::AckArrival { node, epoch } => self.on_ack_arrival(sim, now, node, epoch),
            Event::RxDeadline { node, epoch } => self.on_rx_deadline(sim, now, node, epoch),
            Event::Retransmit { node, epoch } => self.on_retransmit(sim, now, node, epoch),
            Event::Dissemination => self.on_dissemination(sim, now),
            Event::Sample => self.on_sample(sim, now),
        }
    }

    fn on_generate(&mut self, sim: &mut Simulator<Event>, now: SimTime, i: usize) {
        let window = self.cfg.forecast_window;
        // Next period's generation first, so a drop below can't stall
        // the node. Real crystals drift: each period slips by a small
        // uniform draw.
        let period = self.nodes[i].period;
        let drift_cap = self.cfg.period_drift.as_millis();
        let drifted = if drift_cap > 0 {
            let slip = self.mac_rng.gen_range(0..=2 * drift_cap);
            period + Duration::from_millis(slip) - Duration::from_millis(drift_cap)
        } else {
            period
        };
        sim.schedule(now + drifted, Event::Generate { node: i });

        // Conclude a still-running exchange from the previous period.
        if !self.nodes[i].mac.is_idle() {
            let node = &mut self.nodes[i];
            if let Some(id) = node.pending_deadline.take() {
                sim.cancel(id);
            }
            if let Some(report) = node.mac.abort(now) {
                self.finish_exchange(now, i, &report);
            }
        }

        let node = &mut self.nodes[i];
        node.metrics.generated += 1;

        // Fold the finished period's compressed SoC trace into the next
        // uplink, and feed the forecaster what actually arrived.
        if node.blam.is_some() {
            let prev_start = node.period_start;
            if node.prev_period_start.is_some() || node.metrics.generated > 1 {
                let trace = match (node.discharge_sample, node.recharge_sample) {
                    (Some(d), Some(r)) => Some(CompressedSocTrace {
                        discharge: d,
                        recharge: r,
                    }),
                    (Some(d), None) => Some(CompressedSocTrace {
                        discharge: d,
                        recharge: d,
                    }),
                    (None, Some(r)) => Some(CompressedSocTrace {
                        discharge: r,
                        recharge: r,
                    }),
                    (None, None) => None,
                };
                if let Some(t) = trace {
                    node.pending_trace = Some((prev_start, t));
                }
            }
            if matches!(node.forecaster, NodeForecaster::Persistence(_)) {
                for w in 0..node.windows {
                    let start = prev_start + window * w as u64;
                    if start + window <= now {
                        let e = node.harvest.energy_between(start, start + window);
                        node.forecaster.observe(start, window, e);
                    }
                }
            }
        }

        node.prev_period_start = Some(node.period_start);
        node.period_start = now;
        node.discharge_sample = None;
        node.recharge_sample = None;
        node.settle(now, Joules::ZERO, window);

        // Decide when to transmit.
        let chosen = match &mut self.nodes[i].blam {
            None => Some(0), // LoRaWAN: immediately
            Some(_) => {
                let windows = self.nodes[i].windows;
                let forecast: Vec<Joules> = (0..windows)
                    .map(|w| {
                        self.nodes[i]
                            .forecaster
                            .predict(now + window * w as u64, window)
                    })
                    .collect();
                let battery = self.nodes[i].battery.stored();
                let blam = self.nodes[i].blam.as_mut().expect("checked above");
                blam.plan(battery, &forecast).map(|p| p.window)
            }
        };

        let node = &mut self.nodes[i];
        match chosen {
            None => {
                // Algorithm 1 FAIL: drop the packet.
                node.metrics.dropped_no_window += 1;
                node.metrics.concluded += 1;
                node.metrics.latency_sum += node.period;
            }
            Some(w) => {
                node.metrics.record_window(w);
                node.packet = Some(PacketState {
                    generated_at: now,
                    window: w,
                });
                // Random offset within the window halves collision odds
                // without a measurable utility change (§III-B, "Network
                // dynamics and channel access").
                let jitter = Duration::from_millis(
                    self.mac_rng.gen_range(0..=(window.as_millis() / 2)),
                );
                sim.schedule(
                    now + window * w as u64 + jitter,
                    Event::StartTx { node: i },
                );
            }
        }
    }

    fn on_start_tx(&mut self, sim: &mut Simulator<Event>, now: SimTime, i: usize) {
        let window = self.cfg.forecast_window;
        self.nodes[i].settle(now, Joules::ZERO, window);
        let node = &mut self.nodes[i];
        if !node.mac.is_idle() {
            // Should not happen (exchanges are aborted at generation),
            // but stay safe: drop this packet.
            node.metrics.dropped_brownout += 1;
            node.metrics.concluded += 1;
            node.metrics.latency_sum += node.period;
            node.packet = None;
            return;
        }

        let piggyback = node.pending_trace.map(|_| CompressedSocTrace::ENCODED_LEN);
        let mut frame = Uplink::confirmed(self.cfg.payload_bytes);
        frame.piggyback_len = piggyback.unwrap_or(0);
        node.current_phy_len = frame.phy_payload_len();

        // Brownout check: the battery (plus harvest during the airtime,
        // which is negligible) must fund at least the first attempt.
        let required = node.radio.tx_energy(&node.tx_config(), node.current_phy_len);
        if node.battery.stored() < required {
            node.metrics.dropped_brownout += 1;
            node.metrics.concluded += 1;
            node.metrics.latency_sum += node.period;
            node.packet = None;
            return;
        }

        let actions = node.mac.send(now, frame, &mut self.mac_rng);
        self.apply_actions(sim, now, i, &actions);
    }

    fn on_tx_end(&mut self, sim: &mut Simulator<Event>, now: SimTime, i: usize, epoch: u64) {
        let window = self.cfg.forecast_window;
        // Pay for the transmission.
        let tx_cost = {
            let node = &self.nodes[i];
            node.radio.tx_energy(&node.tx_config(), node.current_phy_len)
        };
        self.nodes[i].settle(now, tx_cost, window);
        self.nodes[i].metrics.tx_energy_electrical += tx_cost;
        // Record the discharge transition for the compressed trace.
        {
            let node = &mut self.nodes[i];
            let w = node.window_index(now, window) as u8;
            node.discharge_sample = Some(SocSample::new(w, node.battery.soc()));
        }

        // Conclude this transmission's receptions at every gateway (only
        // the entries tagged with this event's epoch — a successor
        // exchange's in-flight receptions must run their own course).
        // The uplink counts if any gateway decoded it (the network
        // server deduplicates).
        let mut best_rx: Option<(usize, f64)> = None;
        let mut idx = 0;
        while idx < self.nodes[i].inflight.len() {
            if self.nodes[i].inflight[idx].0 == epoch {
                let (_, g, tid, rssi) = self.nodes[i].inflight.swap_remove(idx);
                if self.gateways[g].end_uplink(tid).is_received()
                    && best_rx.is_none_or(|(_, r)| rssi > r)
                {
                    best_rx = Some((g, rssi));
                }
            } else {
                idx += 1;
            }
        }
        if epoch != self.nodes[i].exchange_epoch {
            // The exchange this transmission belonged to was aborted at
            // the next period's generation; the energy is spent and the
            // gateway entries concluded, but the MAC has moved on.
            return;
        }
        // Capture the on-air frame before feeding the MAC: an
        // unconfirmed exchange completes (and clears its frame) inside
        // on_tx_completed.
        let frame = self.current_frame(i);
        let actions = self.nodes[i].mac.on_tx_completed(now);
        self.apply_actions(sim, now, i, &actions);

        let Some((rx_gateway, _)) = best_rx else {
            return;
        };
        // The uplink decoded: the server answers with an ACK in RX1.
        let sf = self.nodes[i].placement.sf;
        let uplink_channel = self.nodes[i].current_channel;
        let decision = self
            .server
            .on_uplink(&frame, &uplink_channel, sf, &self.cfg.plan);
        if !decision.duplicate {
            if let Some((anchor, trace)) = self.nodes[i].pending_trace.take() {
                self.ledger.record_trace(i as u32, anchor, &trace);
            }
            if let Some(adr) = self.adr.as_mut() {
                // SNR of the demodulated uplink at the gateway.
                let node = &self.nodes[i];
                let tx_cfg = node.tx_config();
                let noise_floor = blam_lora_phy::link::THERMAL_NOISE_DBM_HZ
                    + 10.0 * tx_cfg.bw.as_hz_f64().log10()
                    + blam_lora_phy::link::NOISE_FIGURE_DB;
                let snr = blam_units::Db(node.placement.link.rssi(tx_cfg.power).0 - noise_floor);
                self.nodes[i].pending_adr =
                    adr.observe(DeviceAddr(i as u32), tx_cfg.sf, tx_cfg.power, snr);
            }
        }
        self.nodes[i].pending_weight = decision.piggyback;

        // Schedule the downlink attempt at the RX1 opening, with an RX2
        // fallback if the gateway turns out to be busy.
        let rx1_start = now + self.cfg.plan.rx1_delay;
        let rx1_channel = self.cfg.plan.rx1_channel(&uplink_channel);
        let ack_cfg = TxConfig::new(
            self.cfg.plan.rx1_sf(sf),
            rx1_channel.bandwidth,
            CodingRate::Cr4_5,
        )
        .with_power(Dbm(27.0));
        let ack_airtime = ack_cfg.airtime(decision.downlink.phy_payload_len());
        // The node locks onto the ACK once its preamble completes; the
        // remaining symbols arrive while the window stays open, even
        // past the nominal close (a real Class-A receiver finishes an
        // in-progress reception).
        let preamble = blam_units::Duration::from_secs_f64(
            blam_lora_phy::symbol_duration_secs(ack_cfg.sf, ack_cfg.bw)
                * (f64::from(ack_cfg.preamble_symbols) + 4.25),
        );
        // RX2 runs on the plan's fixed channel/SF; the node detects the
        // preamble a few symbols in, within its window timeout.
        let rx2_start = now + self.cfg.plan.rx2_delay;
        let rx2_cfg = TxConfig::new(
            self.cfg.plan.rx2_sf,
            self.cfg.plan.rx2_channel.bandwidth,
            CodingRate::Cr4_5,
        )
        .with_power(Dbm(27.0));
        let rx2_airtime = rx2_cfg.airtime(decision.downlink.phy_payload_len());
        let rx2_detect = blam_units::Duration::from_secs_f64(
            blam_lora_phy::symbol_duration_secs(rx2_cfg.sf, rx2_cfg.bw) * 5.0,
        );
        sim.schedule(
            rx1_start,
            Event::DownlinkStart {
                node: i,
                gateway: rx_gateway,
                end: rx1_start + ack_airtime,
                ack_at: rx1_start + preamble,
                epoch,
                fallback: Some((rx2_start, rx2_start + rx2_airtime, rx2_start + rx2_detect)),
            },
        );
    }

    /// The frame currently in flight for node `i` (from its MAC).
    fn current_frame(&self, i: usize) -> Uplink {
        self.nodes[i]
            .mac
            .current_frame()
            .expect("a received uplink implies an exchange in progress")
    }

    #[allow(clippy::too_many_arguments)]
    fn on_downlink_start(
        &mut self,
        sim: &mut Simulator<Event>,
        now: SimTime,
        i: usize,
        gateway: usize,
        end: SimTime,
        ack_at: SimTime,
        epoch: u64,
        fallback: Option<(SimTime, SimTime, SimTime)>,
    ) {
        if !self.gateways[gateway].downlink_available(now) {
            // Busy ACKing someone else in RX1: retry in the node's RX2
            // window; if that is busy too the ACK is lost and the node
            // retransmits — the residual half-duplex cost of ALOHA.
            if let Some((start, end2, ack2)) = fallback {
                sim.schedule(
                    start,
                    Event::DownlinkStart {
                        node: i,
                        gateway,
                        end: end2,
                        ack_at: ack2,
                        epoch,
                        fallback: None,
                    },
                );
            }
            return;
        }
        self.gateways[gateway].begin_downlink(now, end);
        sim.schedule(ack_at, Event::AckArrival { node: i, epoch });
    }

    fn on_ack_arrival(&mut self, sim: &mut Simulator<Event>, now: SimTime, i: usize, epoch: u64) {
        if epoch != self.nodes[i].exchange_epoch {
            return;
        }
        let window = self.cfg.forecast_window;
        self.nodes[i].settle(now, Joules::ZERO, window);
        if let Some(id) = self.nodes[i].pending_deadline.take() {
            sim.cancel(id);
        }
        if let Some(byte) = self.nodes[i].pending_weight.take() {
            if let Some(blam) = self.nodes[i].blam.as_mut() {
                blam.on_weight_update(byte);
            }
        }
        if let Some(cmd) = self.nodes[i].pending_adr.take() {
            let node = &mut self.nodes[i];
            let new_cfg = node
                .tx_config()
                .with_sf(cmd.sf)
                .with_power(cmd.power);
            node.mac.set_tx_config(new_cfg);
            node.placement.sf = cmd.sf;
            // The BLAM EWMA (Eq. 13) absorbs the energy change over the
            // following periods — exactly why the paper smooths instead
            // of trusting the last exchange.
        }
        let actions = self.nodes[i].mac.on_ack(now);
        self.apply_actions(sim, now, i, &actions);
    }

    fn on_rx_deadline(&mut self, sim: &mut Simulator<Event>, now: SimTime, i: usize, epoch: u64) {
        if epoch != self.nodes[i].exchange_epoch {
            return;
        }
        self.nodes[i].pending_deadline = None;
        let actions = self.nodes[i].mac.on_rx_deadline(now, &mut self.mac_rng);
        self.apply_actions(sim, now, i, &actions);
    }

    fn on_retransmit(&mut self, sim: &mut Simulator<Event>, now: SimTime, i: usize, epoch: u64) {
        if epoch != self.nodes[i].exchange_epoch {
            return;
        }
        let window = self.cfg.forecast_window;
        self.nodes[i].settle(now, Joules::ZERO, window);
        // Brownout guard for the retransmission.
        let required = {
            let node = &self.nodes[i];
            node.radio.tx_energy(&node.tx_config(), node.current_phy_len)
        };
        if self.nodes[i].battery.stored() < required {
            self.nodes[i].metrics.brownout_events += 1;
            if let Some(report) = self.nodes[i].mac.abort(now) {
                self.finish_exchange(now, i, &report);
            }
            return;
        }
        let actions = self.nodes[i].mac.on_retransmit_time(now, &mut self.mac_rng);
        self.apply_actions(sim, now, i, &actions);
    }

    fn apply_actions(
        &mut self,
        sim: &mut Simulator<Event>,
        now: SimTime,
        i: usize,
        actions: &[MacAction],
    ) {
        for action in actions {
            match *action {
                MacAction::Transmit(tx) => {
                    let epoch = self.nodes[i].exchange_epoch;
                    let node = &mut self.nodes[i];
                    node.current_channel = tx.channel;
                    node.metrics.transmissions += 1;
                    node.metrics.tx_energy_eq6 += blam_lora_phy::energy::tx_energy_eq6(
                        &tx.config,
                        tx.frame.phy_payload_len(),
                    );
                    debug_assert!(
                        node.inflight.iter().all(|&(e, ..)| e != epoch),
                        "overlapping transmissions within one exchange"
                    );
                    let rssis: Vec<f64> = node
                        .gateway_links
                        .iter()
                        .map(|l| l.rssi(tx.config.power).0)
                        .collect();
                    for (g, rssi) in rssis.into_iter().enumerate() {
                        let descriptor = UplinkTransmission {
                            device: DeviceAddr(i as u32),
                            channel: tx.channel,
                            sf: tx.config.sf,
                            rssi: Dbm(rssi),
                            start: now,
                            end: now + tx.airtime,
                        };
                        let tid = self.gateways[g].begin_uplink(descriptor);
                        self.nodes[i].inflight.push((epoch, g, tid, rssi));
                    }
                    sim.schedule(now + tx.airtime, Event::TxEnd { node: i, epoch });
                }
                MacAction::ScheduleRxDeadline(at) => {
                    let epoch = self.nodes[i].exchange_epoch;
                    let id = sim.schedule(at, Event::RxDeadline { node: i, epoch });
                    self.nodes[i].pending_deadline = Some(id);
                }
                MacAction::ScheduleRetransmit(at) => {
                    let epoch = self.nodes[i].exchange_epoch;
                    sim.schedule(at, Event::Retransmit { node: i, epoch });
                }
                MacAction::Complete(report) => {
                    self.finish_exchange(now, i, &report);
                }
            }
        }
    }

    fn finish_exchange(&mut self, now: SimTime, i: usize, report: &TxReport) {
        let window = self.cfg.forecast_window;
        let rx_cost = self.nodes[i].radio.rx_energy(report.total_rx_time);
        self.nodes[i].settle(now, rx_cost, window);

        let node = &mut self.nodes[i];
        node.metrics.concluded += 1;
        node.metrics.retransmissions += u64::from(report.transmissions.saturating_sub(1));

        let packet = node.packet.take();
        if report.delivered {
            node.metrics.delivered += 1;
            if let Some(p) = packet {
                let latency = now.saturating_since(p.generated_at);
                node.metrics.latency_sum += latency;
                node.metrics.latency_delivered_sum += latency;
                let idx = ((latency / window) as usize).min(node.windows);
                node.metrics.utility_sum += node.utility.at(idx, node.windows);
            }
        } else {
            node.metrics.failed_no_ack += 1;
            node.metrics.latency_sum += node.period;
        }

        if let (Some(blam), Some(p)) = (node.blam.as_mut(), packet) {
            let tx_electrical = node.radio.tx_power_draw(node.mac.params().tx.power)
                * report.total_airtime;
            blam.on_exchange_complete(p.window, report.transmissions.max(1), tx_electrical);
        }
        node.exchange_epoch += 1;
    }

    fn on_dissemination(&mut self, sim: &mut Simulator<Event>, now: SimTime) {
        for (id, byte) in self.ledger.compute_normalized(now) {
            self.server.set_piggyback(DeviceAddr(id), byte);
        }
        sim.schedule(now + self.cfg.dissemination_interval, Event::Dissemination);
    }

    fn on_sample(&mut self, sim: &mut Simulator<Event>, now: SimTime) {
        let window = self.cfg.forecast_window;
        let mut per_node = Vec::with_capacity(self.nodes.len());
        for i in 0..self.nodes.len() {
            self.nodes[i].settle(now, Joules::ZERO, window);
            let d = self.nodes[i].battery.refresh_degradation(now);
            self.nodes[i].metrics.final_degradation = d;
            per_node.push(self.nodes[i].battery.tracker().breakdown(now));
            if d >= EOL_DEGRADATION && self.first_eol.is_none() {
                self.first_eol = Some((i, now));
                if self.cfg.stop_at_first_eol {
                    self.halted = true;
                }
            }
        }
        self.samples.push(DegradationSample { at: now, per_node });
        if !self.halted {
            sim.schedule(now + self.cfg.sample_interval, Event::Sample);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;

    fn quick(protocol: Protocol, days: u64, nodes: usize, seed: u64) -> RunResult {
        let cfg = ScenarioConfig {
            duration: Duration::from_days(days),
            sample_interval: Duration::from_days(1),
            ..ScenarioConfig::large_scale(nodes, protocol, seed)
        };
        Engine::build(cfg).run()
    }

    #[test]
    fn lorawan_network_delivers_packets() {
        let r = quick(Protocol::Lorawan, 2, 20, 11);
        assert!(r.network.generated > 20 * 24 * 2, "generated {}", r.network.generated);
        assert!(r.network.prr > 0.6, "PRR {}", r.network.prr);
        // Delivered packets conclude within the retransmission budget;
        // the penalized average is dominated by collision losses under
        // synchronized ALOHA starts.
        assert!(r.network.avg_latency_delivered_secs < 60.0);
        assert_eq!(r.nodes.len(), 20);
    }

    #[test]
    fn blam_network_delivers_packets() {
        let r = quick(Protocol::h(0.5), 2, 20, 11);
        assert!(r.network.prr > 0.6, "PRR {}", r.network.prr);
        // BLAM may defer: some node should use a window beyond 0 at
        // least occasionally once degradation weights arrive; at two
        // days the main check is that deferral doesn't break delivery.
        assert!(r.network.avg_utility > 0.4, "utility {}", r.network.avg_utility);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = quick(Protocol::h(0.5), 1, 10, 77);
        let b = quick(Protocol::h(0.5), 1, 10, 77);
        assert_eq!(a.network.generated, b.network.generated);
        assert_eq!(a.network.delivered, b.network.delivered);
        assert_eq!(a.events_processed, b.events_processed);
        assert!((a.network.avg_latency_secs - b.network.avg_latency_secs).abs() < 1e-12);
    }

    #[test]
    fn different_seeds_differ() {
        let a = quick(Protocol::Lorawan, 1, 10, 1);
        let b = quick(Protocol::Lorawan, 1, 10, 2);
        assert_ne!(
            (a.network.generated, a.network.delivered),
            (b.network.generated, b.network.delivered)
        );
    }

    #[test]
    fn lorawan_latency_is_window_zero() {
        let r = quick(Protocol::Lorawan, 1, 10, 5);
        // Successful first-try exchanges conclude within ~2 s; even with
        // retransmissions the bulk stays far below one forecast window.
        assert!(
            r.network.avg_latency_delivered_secs < 40.0,
            "{}",
            r.network.avg_latency_delivered_secs
        );
        for n in &r.nodes {
            if n.generated > 0 {
                assert_eq!(n.majority_window(), Some(0));
            }
        }
    }

    #[test]
    fn degradation_accumulates_over_time() {
        let r = quick(Protocol::Lorawan, 5, 10, 3);
        assert!(r.network.degradation.mean > 0.0);
        assert!(r.samples.len() >= 4);
        let first = r.samples.first().unwrap().mean_total();
        let last = r.samples.last().unwrap().mean_total();
        assert!(last > first);
    }

    #[test]
    fn duty_cycle_stretches_retransmission_bursts() {
        // With a 1% duty cycle, a retransmission burst must wait out
        // ~99 airtimes between attempts, so exchanges take far longer
        // and fewer retransmissions fit before the next period.
        let mut free = ScenarioConfig::large_scale(25, Protocol::Lorawan, 13);
        free.duration = Duration::from_days(3);
        let mut limited = free.clone();
        limited.duty_cycle = Some(0.01);
        let free = Engine::build(free).run();
        let limited = Engine::build(limited).run();
        assert!(
            limited.network.avg_latency_delivered_secs > free.network.avg_latency_delivered_secs,
            "duty cycle should delay delivery: {} !> {}",
            limited.network.avg_latency_delivered_secs,
            free.network.avg_latency_delivered_secs
        );
        assert!(limited.network.prr > 0.5);
    }

    #[test]
    fn multi_gateway_improves_reception() {
        let mut one = ScenarioConfig::large_scale(60, Protocol::Lorawan, 17);
        one.duration = Duration::from_days(3);
        let mut four = one.clone();
        four.gateways = 4;
        let one = Engine::build(one).run();
        let four = Engine::build(four).run();
        assert!(four.network.avg_retx <= one.network.avg_retx);
        assert!(four.network.prr >= one.network.prr - 0.01);
    }

    #[test]
    fn h5_starves_at_night() {
        // θ = 0.05 cannot bank enough to survive dark hours: brownouts
        // and dropped packets appear (Fig. 6b's H-5 behaviour).
        let r = quick(Protocol::h(0.05), 3, 15, 9);
        let dropped: u64 = r
            .nodes
            .iter()
            .map(|n| n.dropped_no_window + n.dropped_brownout)
            .sum();
        assert!(dropped > 0, "H-5 should drop packets at night");
        let full = quick(Protocol::h(0.5), 3, 15, 9);
        assert!(r.network.prr < full.network.prr);
    }
}
