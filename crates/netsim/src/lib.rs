//! Full-network LPWAN simulator for battery-lifespan experiments.
//!
//! This crate plays the role NS-3 plays in the paper: it wires the
//! substrates — LoRa PHY, LoRaWAN MAC/gateway, batteries, solar
//! harvesting — and the BLAM protocol into a discrete-event simulation
//! of an entire network over multi-year horizons, collecting every
//! metric the paper's evaluation reports.
//!
//! * [`config`] — scenario configuration: node counts, periods,
//!   protocol variant (LoRaWAN baseline or BLAM/H-θ), radio and energy
//!   parameters.
//! * [`topology`] — random disk deployments, per-node link budgets and
//!   distance-based spreading-factor assignment.
//! * [`policy`] — the [`MacPolicy`] trait holding
//!   every protocol decision point, with one implementation per MAC:
//!   [`AlohaPolicy`] (the LoRaWAN baseline),
//!   [`BlamPolicy`] (the paper's protocol),
//!   [`LongLivedPolicy`] (Long-Lived LoRa
//!   min-lifetime allocation) and
//!   [`BatterylessPolicy`]
//!   (capacitor-threshold-gated battery-less scheduling). The full
//!   roster is enumerated by [`Protocol::zoo`](config::Protocol::zoo).
//! * [`nodes`] — the node layer: per-device state (MAC, battery,
//!   switch, harvest, forecaster) and the generate → select window →
//!   transmit → retransmit lifecycle, including energy settlement.
//! * [`engine`] — the thin core: network construction and the run
//!   loop; event routing lives in the crate-private `events` module,
//!   gateway half-duplex arbitration and RX1/RX2 downlink scheduling
//!   in the crate-private `radio` module.
//! * [`faults`] — seeded, deterministic fault injection
//!   ([`FaultConfig`]): gateway outages,
//!   Gilbert–Elliott link loss, node reboots, SoC sensor error and
//!   corrupted dissemination bytes, all drawn from per-entity named
//!   RNG streams so faulted runs stay byte-identical in parallel
//!   batches.
//! * [`runner`] — [`BatchRunner`]: deterministic
//!   parallel execution of scenario batches on worker threads, with
//!   per-phase wall-clock profiling.
//! * [`script`] — scenario scripts: timed mid-run events (add a
//!   gateway at day 30, churn a fraction of the nodes, flip a BLAM
//!   knob) scheduled next to the fault layer, with every draw keyed by
//!   global ids so scripted runs stay byte-identical across
//!   shard/worker counts.
//! * [`shard`] — cell-sharded execution for very large deployments:
//!   one simulator per gateway cell
//!   ([`ShardPlan`]), synchronized at
//!   dissemination epochs and merged deterministically, so
//!   [`run_sharded`] is byte-identical across
//!   shard and worker counts.
//! * [`checkpoint`] — crash-safe mid-run checkpointing: versioned,
//!   checksummed epoch snapshots with byte-exact resume
//!   ([`Engine::run_checkpointed`](engine::Engine::run_checkpointed),
//!   [`run_sharded_checkpointed`]),
//!   torn-write quarantine included.
//! * [`telemetry`] — wiring for the `blam-telemetry` subsystem:
//!   [`TelemetryOptions`] builds per-run
//!   recording sinks (in-memory reports, JSONL traces, flight
//!   recorder) for the engine and batch runner, and
//!   [`expected_counts`](telemetry::expected_counts) binds traces back
//!   to [`NodeMetrics`] for replay validation.
//! * [`metrics`] — per-node and network-level metric collection
//!   (RETX, TX energy, PRR, utility, latency, degradation, lifespan).
//! * [`report`] — shared human-readable renderings of run results.
//! * [`scenario`] — presets reproducing the paper's setups: the
//!   large-scale simulation (§IV-A) and the 10-node testbed (§IV-B).
//!
//! # Examples
//!
//! Run a small network for a simulated week:
//!
//! ```no_run
//! use blam_netsim::{config::Protocol, scenario::Scenario};
//! use blam_units::Duration;
//!
//! let scenario = Scenario::large_scale(50, Protocol::h(0.5), 42)
//!     .with_duration(Duration::from_days(7));
//! let result = scenario.run();
//! println!("PRR = {:.1}%", 100.0 * result.network.prr);
//! ```

// `forbid(unsafe_code)` comes from `[workspace.lints]` in the root
// manifest; only the doc requirement stays crate-local.
#![warn(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod engine;
mod events;
pub mod faults;
pub mod metrics;
pub mod nodes;
pub mod policy;
mod radio;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod script;
pub mod shard;
mod store;
pub mod telemetry;
pub mod topology;

pub use blam_telemetry;
pub use checkpoint::CheckpointConfig;
pub use config::{Protocol, ScenarioConfig};
pub use engine::RunResult;
pub use faults::FaultConfig;
pub use metrics::{NetworkMetrics, NodeMetrics};
pub use policy::{
    AlohaPolicy, BatterylessConfig, BatterylessPolicy, BlamPolicy, LongLivedConfig,
    LongLivedPolicy, MacPolicy, PolicyState, WindowDecision,
};
pub use runner::{BatchOutcome, BatchRunner};
pub use scenario::Scenario;
pub use script::{ScriptAction, ScriptConfig, ScriptedEvent};
pub use shard::{run_sharded, run_sharded_checkpointed};
pub use telemetry::TelemetryOptions;
pub use topology::{ShardPlan, Topology};
