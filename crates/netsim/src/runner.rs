//! Deterministic parallel batch execution.
//!
//! [`BatchRunner`] runs a batch of independent scenarios on
//! `std::thread::scope` worker threads. Every run is a self-contained
//! [`Engine::build`]`→`[`Engine::run`] whose randomness comes entirely
//! from its own `ScenarioConfig::seed`, and results are stored at their
//! input index — so the output is byte-identical regardless of thread
//! count, scheduling, or completion order.
//!
//! Progress lines go to **stderr** (via [`Progress`]), never stdout:
//! batch output is routinely piped as JSON, and a timing line in the
//! middle of a document corrupts it.
//!
//! # Examples
//!
//! ```no_run
//! use blam_netsim::runner::BatchRunner;
//! use blam_netsim::{Protocol, ScenarioConfig};
//!
//! let configs: Vec<ScenarioConfig> = [Protocol::Lorawan, Protocol::h(0.5)]
//!     .into_iter()
//!     .map(|p| ScenarioConfig::large_scale(50, p, 42))
//!     .collect();
//! let results = BatchRunner::available().run_all(configs);
//! assert_eq!(results.len(), 2);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use blam_des::RngSeeder;
use blam_telemetry::{BatchProfile, Progress, TelemetryReport};
use rand::Rng;

use crate::config::ScenarioConfig;
use crate::engine::{Engine, RunResult};
use crate::telemetry::TelemetryOptions;

/// Derives one independent per-run seed per batch entry from a master
/// seed, via the `"batch-run"` indexed stream of [`RngSeeder`] — the
/// batch-level analogue of the engine's named per-component streams.
/// Reordering the batch reorders the seeds with it, so a run keeps its
/// seed (and its result) wherever it lands in the batch.
#[must_use]
pub fn derive_seeds(master: u64, n: usize) -> Vec<u64> {
    let seeder = RngSeeder::new(master);
    (0..n)
        .map(|i| seeder.stream_indexed("batch-run", i as u64).gen())
        .collect()
}

/// Everything a batch produces: the per-run results (input order), the
/// batch-merged telemetry report (when telemetry was on), and the
/// wall-clock profile of the batch itself.
#[derive(Debug)]
pub struct BatchOutcome {
    /// One [`RunResult`] per input scenario, at its input index.
    pub results: Vec<RunResult>,
    /// All per-run telemetry reports merged in input-index order;
    /// `None` when the batch ran with [`TelemetryOptions::off`].
    pub telemetry: Option<TelemetryReport>,
    /// Wall-clock breakdown: queue wait, sim run, telemetry merge.
    pub profile: BatchProfile,
}

/// What a worker stores for a finished run: the result plus the two
/// profiled intervals measured on the worker.
struct RunSlot {
    result: RunResult,
    queue_wait_ms: f64,
    run_ms: f64,
}

/// Runs batches of independent scenarios across worker threads.
#[derive(Debug, Clone)]
pub struct BatchRunner {
    jobs: usize,
    verbose: bool,
}

impl BatchRunner {
    /// A runner with exactly `jobs` worker threads (clamped to ≥ 1).
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        BatchRunner {
            jobs: jobs.max(1),
            verbose: true,
        }
    }

    /// A runner sized to the host's available parallelism.
    #[must_use]
    pub fn available() -> Self {
        let jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
        BatchRunner::new(jobs)
    }

    /// Suppresses the per-run and batch progress lines.
    #[must_use]
    pub fn quiet(mut self) -> Self {
        self.verbose = false;
        self
    }

    /// The worker-thread count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs every scenario and returns the results in input order, with
    /// telemetry disabled — the zero-overhead path.
    ///
    /// # Panics
    ///
    /// Panics if a scenario fails validation or a worker panics.
    #[must_use]
    pub fn run_all(&self, configs: Vec<ScenarioConfig>) -> Vec<RunResult> {
        self.run_all_with(configs, &TelemetryOptions::off()).results
    }

    /// Runs every scenario with the given telemetry options.
    ///
    /// Workers claim runs through an atomic cursor, so the batch stays
    /// saturated even when run durations differ wildly (a 5-year H-5
    /// next to a 1-day testbed); each result lands at its input index
    /// regardless of which worker finished it when. When tracing, every
    /// run gets its own [`Recorder`](blam_telemetry::Recorder) (run id
    /// = input index) over one shared line-atomic writer, and the
    /// per-run reports are merged **in input-index order** after the
    /// join so the batch report is as deterministic as the results.
    ///
    /// # Panics
    ///
    /// Panics if a scenario fails validation, a worker panics, or the
    /// trace file in `opts` cannot be created.
    #[must_use]
    pub fn run_all_with(
        &self,
        configs: Vec<ScenarioConfig>,
        opts: &TelemetryOptions,
    ) -> BatchOutcome {
        let n = configs.len();
        let workers = self.jobs.min(n.max(1));
        let mut profile = BatchProfile {
            workers,
            runs: n,
            ..BatchProfile::default()
        };
        if n == 0 {
            return BatchOutcome {
                results: Vec::new(),
                telemetry: None,
                profile,
            };
        }
        let started = Instant::now();
        let progress = Progress::new(self.verbose);
        let writer = opts
            .open_writer()
            .expect("trace file must be creatable (checked before any run starts)");
        let slots: Mutex<Vec<Option<RunSlot>>> = Mutex::new((0..n).map(|_| None).collect());
        let cursor = AtomicUsize::new(0);
        let configs = &configs;
        let slots_ref = &slots;
        let cursor_ref = &cursor;
        let writer_ref = &writer;
        let progress_ref = &progress;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(move || loop {
                    let i = cursor_ref.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // Queue wait: batch start until a worker claimed
                    // the run. With more runs than workers this is the
                    // time the run sat behind earlier claims.
                    let queue_wait_ms = started.elapsed().as_secs_f64() * 1e3;
                    let cfg = configs[i].clone();
                    let label = cfg.protocol.label();
                    let run_started = Instant::now();
                    let mut engine = Engine::build(cfg);
                    if let Some(sink) = opts.sink_for_run(i as u32, writer_ref.clone()) {
                        engine = engine.with_sink(sink);
                    }
                    let result = engine.run();
                    let run_ms = run_started.elapsed().as_secs_f64() * 1e3;
                    progress_ref.line(&format!(
                        "[run {i} ({label}): {} events in {run_ms:.1} ms]",
                        result.events_processed,
                    ));
                    slots_ref.lock().expect("batch results poisoned")[i] = Some(RunSlot {
                        result,
                        queue_wait_ms,
                        run_ms,
                    });
                });
            }
        });
        let slots: Vec<RunSlot> = slots
            .into_inner()
            .expect("batch results poisoned")
            .into_iter()
            .map(|r| r.expect("every claimed run stores a result"))
            .collect();
        let merge_started = Instant::now();
        let mut telemetry: Option<TelemetryReport> = None;
        let mut results = Vec::with_capacity(n);
        for slot in slots {
            profile.queue_wait.record(slot.queue_wait_ms);
            profile.sim_run.record(slot.run_ms);
            if let Some(report) = &slot.result.telemetry {
                match &mut telemetry {
                    Some(merged) => merged.merge(report),
                    None => telemetry = Some(report.clone()),
                }
            }
            results.push(slot.result);
        }
        profile.merge_ms = merge_started.elapsed().as_secs_f64() * 1e3;
        profile.total_ms = started.elapsed().as_secs_f64() * 1e3;
        progress.line(&format!(
            "[batch: {n} runs on {workers} threads in {:.1} ms]",
            profile.total_ms
        ));
        BatchOutcome {
            results,
            telemetry,
            profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_clamps_to_one_job() {
        assert_eq!(BatchRunner::new(0).jobs(), 1);
        assert_eq!(BatchRunner::new(6).jobs(), 6);
    }

    #[test]
    fn available_has_at_least_one_job() {
        assert!(BatchRunner::available().jobs() >= 1);
    }

    #[test]
    fn empty_batch_is_empty() {
        assert!(BatchRunner::new(4).quiet().run_all(Vec::new()).is_empty());
    }

    #[test]
    fn empty_batch_outcome_has_no_telemetry() {
        let outcome = BatchRunner::new(2)
            .quiet()
            .run_all_with(Vec::new(), &TelemetryOptions::collect());
        assert!(outcome.results.is_empty());
        assert!(outcome.telemetry.is_none());
        assert_eq!(outcome.profile.runs, 0);
    }

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        let a = derive_seeds(42, 8);
        let b = derive_seeds(42, 8);
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "seed collision in {a:?}");
        // A longer batch extends the prefix rather than reshuffling it.
        assert_eq!(derive_seeds(42, 4), a[..4].to_vec());
    }
}
