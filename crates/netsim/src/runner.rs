//! Deterministic parallel batch execution.
//!
//! [`BatchRunner`] runs a batch of independent scenarios on
//! `std::thread::scope` worker threads. Every run is a self-contained
//! [`Engine::build`]`→`[`Engine::run`] whose randomness comes entirely
//! from its own `ScenarioConfig::seed`, and results are stored at their
//! input index — so the output is byte-identical regardless of thread
//! count, scheduling, or completion order.
//!
//! # Examples
//!
//! ```no_run
//! use blam_netsim::runner::BatchRunner;
//! use blam_netsim::{Protocol, ScenarioConfig};
//!
//! let configs: Vec<ScenarioConfig> = [Protocol::Lorawan, Protocol::h(0.5)]
//!     .into_iter()
//!     .map(|p| ScenarioConfig::large_scale(50, p, 42))
//!     .collect();
//! let results = BatchRunner::available().run_all(configs);
//! assert_eq!(results.len(), 2);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use blam_des::RngSeeder;
use rand::Rng;

use crate::config::ScenarioConfig;
use crate::engine::{Engine, RunResult};

/// Derives one independent per-run seed per batch entry from a master
/// seed, via the `"batch-run"` indexed stream of [`RngSeeder`] — the
/// batch-level analogue of the engine's named per-component streams.
/// Reordering the batch reorders the seeds with it, so a run keeps its
/// seed (and its result) wherever it lands in the batch.
#[must_use]
pub fn derive_seeds(master: u64, n: usize) -> Vec<u64> {
    let seeder = RngSeeder::new(master);
    (0..n)
        .map(|i| seeder.stream_indexed("batch-run", i as u64).gen())
        .collect()
}

/// Runs batches of independent scenarios across worker threads.
#[derive(Debug, Clone)]
pub struct BatchRunner {
    jobs: usize,
    verbose: bool,
}

impl BatchRunner {
    /// A runner with exactly `jobs` worker threads (clamped to ≥ 1).
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        BatchRunner {
            jobs: jobs.max(1),
            verbose: true,
        }
    }

    /// A runner sized to the host's available parallelism.
    #[must_use]
    pub fn available() -> Self {
        let jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
        BatchRunner::new(jobs)
    }

    /// Suppresses the per-run and batch timing lines.
    #[must_use]
    pub fn quiet(mut self) -> Self {
        self.verbose = false;
        self
    }

    /// The worker-thread count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs every scenario and returns the results in input order.
    ///
    /// Workers claim runs through an atomic cursor, so the batch stays
    /// saturated even when run durations differ wildly (a 5-year H-5
    /// next to a 1-day testbed); each result lands at its input index
    /// regardless of which worker finished it when.
    ///
    /// # Panics
    ///
    /// Panics if a scenario fails validation or a worker panics.
    #[must_use]
    pub fn run_all(&self, configs: Vec<ScenarioConfig>) -> Vec<RunResult> {
        let n = configs.len();
        if n == 0 {
            return Vec::new();
        }
        let started = Instant::now();
        let workers = self.jobs.min(n);
        let results: Mutex<Vec<Option<RunResult>>> = Mutex::new((0..n).map(|_| None).collect());
        let cursor = AtomicUsize::new(0);
        let configs = &configs;
        let results_ref = &results;
        let cursor_ref = &cursor;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(move || loop {
                    let i = cursor_ref.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let cfg = configs[i].clone();
                    let label = cfg.protocol.label();
                    let run_started = Instant::now();
                    let result = Engine::build(cfg).run();
                    if self.verbose {
                        println!(
                            "[run {i} ({label}): {} events in {:.1?}]",
                            result.events_processed,
                            run_started.elapsed()
                        );
                    }
                    results_ref.lock().expect("batch results poisoned")[i] = Some(result);
                });
            }
        });
        let out: Vec<RunResult> = results
            .into_inner()
            .expect("batch results poisoned")
            .into_iter()
            .map(|r| r.expect("every claimed run stores a result"))
            .collect();
        if self.verbose {
            println!(
                "[batch: {n} runs on {workers} threads in {:.1?}]",
                started.elapsed()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_clamps_to_one_job() {
        assert_eq!(BatchRunner::new(0).jobs(), 1);
        assert_eq!(BatchRunner::new(6).jobs(), 6);
    }

    #[test]
    fn available_has_at_least_one_job() {
        assert!(BatchRunner::available().jobs() >= 1);
    }

    #[test]
    fn empty_batch_is_empty() {
        assert!(BatchRunner::new(4).quiet().run_all(Vec::new()).is_empty());
    }

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        let a = derive_seeds(42, 8);
        let b = derive_seeds(42, 8);
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "seed collision in {a:?}");
        // A longer batch extends the prefix rather than reshuffling it.
        assert_eq!(derive_seeds(42, 4), a[..4].to_vec());
    }
}
