//! Scenario configuration.

use crate::faults::FaultConfig;
use crate::policy::{BatterylessConfig, LongLivedConfig};
use crate::script::ScriptConfig;
use blam::BlamConfig;
use blam_battery::DegradationConstants;
use blam_lora_phy::{ChannelPlan, InterferenceModel, PathLoss, RadioPowerModel, SpreadingFactor};
use blam_units::{Celsius, Db, Dbm, Duration, Meters, Watts};
use serde::{Deserialize, Serialize};

/// Which MAC protocol the nodes run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Protocol {
    /// Standard LoRaWAN: transmit immediately, charge without limit.
    Lorawan,
    /// The paper's battery-lifespan-aware MAC with the given
    /// configuration (θ, w_b, utility, …).
    Blam(BlamConfig),
    /// Long-Lived LoRa (Fahmida et al.): min-lifetime-maximizing SF
    /// and duty-cycle allocation.
    LongLived(LongLivedConfig),
    /// The energy-aware battery-less scheduler (Capuzzo et al.):
    /// capacitor-threshold-gated transmissions with hysteresis.
    Batteryless(BatterylessConfig),
}

impl Protocol {
    /// The paper's `H-θ` shorthand.
    #[must_use]
    pub fn h(theta: f64) -> Self {
        Protocol::Blam(BlamConfig::h(theta))
    }

    /// H-50C: θ = 0.5 clamp without window selection.
    #[must_use]
    pub fn h50c() -> Self {
        Protocol::Blam(BlamConfig::h50c())
    }

    /// Long-Lived LoRa with its default allocation parameters.
    #[must_use]
    pub fn long_lived() -> Self {
        Protocol::LongLived(LongLivedConfig::default())
    }

    /// The battery-less scheduler with its default hysteresis band.
    #[must_use]
    pub fn batteryless() -> Self {
        Protocol::Batteryless(BatterylessConfig::default())
    }

    /// A short label for tables ("LoRaWAN", "H-50", "H-50C", …).
    #[must_use]
    pub fn label(&self) -> String {
        self.policy().label()
    }

    /// The charge threshold θ in effect (1 for LoRaWAN).
    #[must_use]
    pub fn theta(&self) -> f64 {
        self.policy().theta()
    }
}

/// Which green-energy source powers the nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HarvestKind {
    /// Solar panels (the paper's setup).
    Solar,
    /// Micro wind turbines — no diurnal guarantee, multi-hour lulls.
    Wind,
}

/// Which green-energy forecaster BLAM nodes run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ForecasterKind {
    /// Time-of-day persistence (the deployable default, standing in
    /// for the paper's ref. \[22\]).
    DiurnalPersistence,
    /// Perfect knowledge of the future trace (ablation upper bound).
    Oracle,
    /// Oracle corrupted by log-normal error of the given σ (ablation).
    Noisy(f64),
}

/// Complete configuration of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Number of end devices.
    pub nodes: usize,
    /// Deployment radius around the gateway.
    pub radius: Meters,
    /// MAC protocol all nodes run.
    pub protocol: Protocol,
    /// Range of per-node sampling periods (inclusive); each node draws
    /// one uniformly — the paper uses \[16, 60\] minutes.
    pub period_min: Duration,
    /// Upper bound of the sampling-period draw.
    pub period_max: Duration,
    /// Forecast-window length (1 min in the paper).
    pub forecast_window: Duration,
    /// Application payload per packet (10 bytes in the paper).
    pub payload_bytes: usize,
    /// Channel plan.
    pub plan: ChannelPlan,
    /// Number of gateways. Gateway 0 sits at the origin; additional
    /// gateways are spaced evenly on a ring at half the deployment
    /// radius (the paper's system model allows "one or more gateways").
    pub gateways: usize,
    /// Gateway demodulation paths ω (per gateway).
    pub demod_paths: usize,
    /// Cross-SF interference model at the gateways. `Orthogonal`
    /// matches the NS-3 idealization the paper uses;
    /// `NonOrthogonal` applies Croce et al.'s rejection thresholds.
    pub interference: InterferenceModel,
    /// Regulatory duty cycle enforced at each node (fraction of
    /// airtime), e.g. `Some(0.01)` for EU868 sub-bands. The paper's
    /// timing ("8 retransmissions take ~40 s") implies no duty-cycle
    /// stalls, so the default is `None`; enable it to study regulatory
    /// coupling with retransmission bursts.
    pub duty_cycle: Option<f64>,
    /// Propagation model.
    pub path_loss: PathLoss,
    /// Log-normal shadowing σ (dB) applied statically per node.
    pub shadowing_sigma: Db,
    /// Uplink transmit power.
    pub tx_power: Dbm,
    /// Link margin used for SF assignment.
    pub sf_margin: Db,
    /// Enable server-side Adaptive Data Rate: nodes with link margin get
    /// commanded to faster SFs / lower power via ACKs. Off by default
    /// (the paper assigns SFs statically); the `adr_ablation` experiment
    /// exercises it together with the Eq. (13) energy estimator.
    pub adr: bool,
    /// Force every node to this spreading factor instead of the
    /// distance-based assignment. The paper's testbed pins SF10 "to
    /// emulate a larger network" — slow frames on one channel keep ten
    /// nearby nodes contending.
    pub force_sf: Option<SpreadingFactor>,
    /// Radio electrical model.
    pub radio: RadioPowerModel,
    /// Non-radio baseline draw (MCU sleep, sensor standby).
    pub mcu_sleep: Watts,
    /// Battery capacity as a multiple of the node's average daily
    /// energy demand. The paper sizes batteries to sustain at least a
    /// day without recharge; 4.0 reproduces its degradation regime
    /// (calendar aging dominant, Fig. 2) while keeping θ = 0.05 too
    /// small to bridge a night (Fig. 6b) — see DESIGN.md.
    pub battery_days: f64,
    /// Solar panel peak power as a multiple of `E_tx / window` — the
    /// paper's "peak power supports two transmissions per forecast
    /// window" is 2.0.
    pub solar_peak_tx_multiple: f64,
    /// The green-energy source (the panel/turbine is still scaled per
    /// node by `solar_peak_tx_multiple`).
    pub harvest: HarvestKind,
    /// Number of independently-clouded solar regions nodes draw from.
    pub solar_regions: usize,
    /// Days of solar trace generated (wrapped cyclically beyond).
    pub solar_trace_days: u32,
    /// Day of year (0-based) the solar trace starts at. The testbed
    /// preset uses a spring day, matching the paper's "random day from
    /// the year-long energy trace".
    pub solar_start_day: u32,
    /// Solar trace sampling step.
    pub solar_step: Duration,
    /// Optional supercapacitor buffer in front of each battery, sized
    /// as this multiple of the node's single-transmission energy
    /// (hybrid storage — the paper's stated future work). `None`
    /// disables it.
    pub supercap_tx_multiple: Option<f64>,
    /// Battery temperature (the paper fixes 25 °C, insulated).
    pub temperature: Celsius,
    /// Battery degradation constants (chemistry + cycle-stress law).
    pub degradation: DegradationConstants,
    /// Fraction of nodes deployed with pre-aged batteries (mixed-age
    /// deployments — the fairness scenario of §III-B's dissemination).
    pub aged_fraction: f64,
    /// Service years already on the pre-aged batteries.
    pub aged_years: f64,
    /// Forecaster BLAM nodes use.
    pub forecaster: ForecasterKind,
    /// Maximum per-period timing drift: each period's start slips by a
    /// uniform draw in ±drift, emulating real crystal-oscillator drift.
    /// Zero keeps same-period nodes perfectly phase-locked (the NS-3
    /// regime); the testbed preset uses a realistic nonzero drift,
    /// which is what keeps its ten same-period nodes colliding
    /// throughout the day on one channel.
    pub period_drift: Duration,
    /// Start every node's sampling period at t = 0 (the NS-3
    /// periodic-sender behaviour the paper simulates): same-period
    /// nodes stay phase-locked, creating the persistent collision
    /// groups the protocol's window selection dissolves. When false,
    /// generation phases are drawn uniformly at random.
    pub synchronized_start: bool,
    /// Simulation horizon.
    pub duration: Duration,
    /// Stop as soon as any node's battery reaches End of Life
    /// (lifespan experiments).
    pub stop_at_first_eol: bool,
    /// Interval between degradation samples (monthly in the paper's
    /// Fig. 7).
    pub sample_interval: Duration,
    /// How often the gateway disseminates normalized degradation. The
    /// paper proposes daily for long deployments; its 24-hour testbed
    /// necessarily refreshed faster for H to diverge from LoRaWAN
    /// within the experiment.
    pub dissemination_interval: Duration,
    /// Master random seed.
    pub seed: u64,
    /// Fault injection (gateway outages, link loss, reboots, sensor
    /// error, corrupted dissemination). Defaults to all-off, which is
    /// byte-identical to the fault-free engine; `#[serde(default)]`
    /// keeps pre-fault scenario JSON loading unchanged.
    #[serde(default)]
    pub faults: FaultConfig,
    /// Run the engine on its reference (pre-optimization) code paths:
    /// the binary-heap event queue, uncached Semtech airtime/energy
    /// arithmetic, and a gateway ledger that replays every node's full
    /// SoC trace on each dissemination pass. Much slower,
    /// byte-identical results — the differential test battery and the
    /// perf gate's baseline leg run with this on. `#[serde(default)]`
    /// keeps existing scenario JSON loading unchanged.
    #[serde(default)]
    pub reference_impl: bool,
    /// Scenario script: timed mid-run events (add a gateway, churn
    /// nodes, flip a BLAM knob — see [`crate::script`]). Defaults to
    /// empty, which is byte-identical to the unscripted engine;
    /// `#[serde(default)]` keeps pre-script scenario JSON loading
    /// unchanged.
    #[serde(default)]
    pub script: ScriptConfig,
}

impl ScenarioConfig {
    /// The paper's large-scale NS-3 setup (§IV-A): up to 500 nodes in a
    /// 5 km disk, periods in \[16, 60\] min, 1-min forecast windows,
    /// 10-byte payloads, sub-band of 8 channels, ω = 8.
    #[must_use]
    pub fn large_scale(nodes: usize, protocol: Protocol, seed: u64) -> Self {
        ScenarioConfig::scale(nodes, 1, protocol, seed)
    }

    /// The large-scale setup (§IV-A) generalized to multi-gateway
    /// deployments, for the sharded engine's 100k–1M-node runs: same
    /// per-node parameters, disk radius grown by `√gateways` so the
    /// node density per cell stays in the paper's regime.
    #[must_use]
    pub fn scale(nodes: usize, gateways: usize, protocol: Protocol, seed: u64) -> Self {
        let gateways = gateways.max(1);
        ScenarioConfig {
            nodes,
            radius: Meters(Meters::from_km(5.0).0 * (gateways as f64).sqrt()),
            protocol,
            period_min: Duration::from_mins(16),
            period_max: Duration::from_mins(60),
            forecast_window: Duration::from_mins(1),
            payload_bytes: 10,
            // The NS-3 lorawan module the paper simulates with uses the
            // EU868 three-channel default; this is what produces the
            // paper's collision/retransmission regime at 500 nodes.
            plan: ChannelPlan::eu868(),
            gateways,
            demod_paths: 8,
            interference: InterferenceModel::Orthogonal,
            duty_cycle: None,
            path_loss: PathLoss::lora_suburban(),
            shadowing_sigma: Db(3.0),
            tx_power: Dbm(14.0),
            sf_margin: Db(10.0),
            adr: false,
            force_sf: None,
            radio: RadioPowerModel::sx1276(),
            mcu_sleep: Watts::from_milliwatts(0.01),
            battery_days: 4.0,
            solar_peak_tx_multiple: 2.0,
            harvest: HarvestKind::Solar,
            solar_regions: 8,
            solar_trace_days: 365,
            solar_start_day: 0,
            solar_step: Duration::from_mins(5),
            supercap_tx_multiple: None,
            temperature: Celsius(25.0),
            degradation: DegradationConstants::lmo(),
            aged_fraction: 0.0,
            aged_years: 0.0,
            forecaster: ForecasterKind::DiurnalPersistence,
            period_drift: Duration::ZERO,
            synchronized_start: true,
            duration: Duration::from_days(5 * 365),
            stop_at_first_eol: false,
            sample_interval: Duration::from_days(30),
            dissemination_interval: Duration::from_days(1),
            seed,
            faults: FaultConfig::default(),
            reference_impl: false,
            script: ScriptConfig::default(),
        }
    }

    /// The paper's testbed setup (§IV-B): 10 nodes, a single 125 kHz
    /// channel at SF10, 10-minute periods, 24 hours.
    #[must_use]
    pub fn testbed(protocol: Protocol, seed: u64) -> Self {
        ScenarioConfig {
            nodes: 10,
            radius: Meters(50.0), // indoor lab deployment
            plan: ChannelPlan::us915_single_channel(),
            period_min: Duration::from_mins(10),
            period_max: Duration::from_mins(10),
            duration: Duration::from_days(1),
            solar_trace_days: 2,
            sample_interval: Duration::from_hours(1),
            period_drift: Duration::from_millis(400),
            force_sf: Some(SpreadingFactor::Sf10),
            solar_start_day: 120,
            dissemination_interval: Duration::from_hours(1),
            ..ScenarioConfig::large_scale(10, protocol, seed)
        }
    }

    /// Number of forecast windows in a node's period.
    ///
    /// Floor semantics, matching `BlamConfig::windows_in_period`: a
    /// trailing partial window is dropped and serves as end-of-period
    /// guard time; periods shorter than one window degenerate to a
    /// single window. `validate()` separately requires
    /// `period_min >= forecast_window`, so in a validated scenario the
    /// degenerate branch never fires.
    #[must_use]
    pub fn windows_in(&self, period: Duration) -> usize {
        ((period / self.forecast_window) as usize).max(1)
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on invalid combinations (zero nodes, inverted period
    /// range, zero window…).
    pub fn validate(&self) {
        assert!(self.nodes > 0, "need at least one node");
        assert!(self.period_min <= self.period_max, "period range inverted");
        assert!(!self.forecast_window.is_zero(), "forecast window is zero");
        assert!(
            self.period_min >= self.forecast_window,
            "periods must span at least one forecast window"
        );
        assert!(self.gateways > 0, "need at least one gateway");
        self.protocol.policy().validate(self.forecast_window);
        assert!(self.demod_paths > 0, "gateway needs demodulation paths");
        assert!(self.battery_days > 0.0, "battery sizing must be positive");
        assert!(
            self.solar_peak_tx_multiple > 0.0,
            "solar sizing must be positive"
        );
        assert!(!self.duration.is_zero(), "duration is zero");
        let faults = self.faults.validate(self.gateways);
        assert!(faults.is_ok(), "invalid fault config: {faults:?}");
        self.script.validate(self.duration);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Protocol::Lorawan.label(), "LoRaWAN");
        assert_eq!(Protocol::h(0.5).label(), "H-50");
        assert_eq!(Protocol::h(0.05).label(), "H-5");
        assert_eq!(Protocol::h(1.0).label(), "H-100");
        assert_eq!(Protocol::h50c().label(), "H-50C");
        assert_eq!(Protocol::long_lived().label(), "LongLived");
        assert_eq!(Protocol::batteryless().label(), "Batteryless");
    }

    #[test]
    fn zoo_protocols_round_trip_through_serde() {
        for p in Protocol::zoo() {
            let json = serde_json::to_string(&p).unwrap();
            let back: Protocol = serde_json::from_str(&json).unwrap();
            assert_eq!(back, p, "round trip changed {json}");
        }
    }

    #[test]
    fn zoo_scenarios_validate() {
        for p in Protocol::zoo() {
            ScenarioConfig::large_scale(8, p, 1).validate();
        }
    }

    #[test]
    #[should_panic(expected = "on_soc must lie strictly above off_soc")]
    fn validate_catches_collapsed_batteryless_hysteresis() {
        let mut c = ScenarioConfig::large_scale(10, Protocol::batteryless(), 1);
        if let Protocol::Batteryless(cfg) = &mut c.protocol {
            cfg.on_soc = cfg.off_soc;
        }
        c.validate();
    }

    #[test]
    fn theta_accessor() {
        assert_eq!(Protocol::Lorawan.theta(), 1.0);
        assert_eq!(Protocol::h(0.05).theta(), 0.05);
    }

    #[test]
    fn large_scale_matches_paper_parameters() {
        let c = ScenarioConfig::large_scale(500, Protocol::Lorawan, 1);
        c.validate();
        assert_eq!(c.nodes, 500);
        assert_eq!(c.radius, Meters::from_km(5.0));
        assert_eq!(c.period_min, Duration::from_mins(16));
        assert_eq!(c.period_max, Duration::from_mins(60));
        assert_eq!(c.forecast_window, Duration::from_mins(1));
        assert_eq!(c.payload_bytes, 10);
        assert_eq!(c.demod_paths, 8);
    }

    #[test]
    fn testbed_matches_paper_parameters() {
        let c = ScenarioConfig::testbed(Protocol::h(1.0), 1);
        c.validate();
        assert_eq!(c.nodes, 10);
        assert_eq!(c.plan.uplink_count(), 1);
        assert_eq!(c.period_min, Duration::from_mins(10));
        assert_eq!(c.duration, Duration::from_days(1));
    }

    #[test]
    fn windows_in_period() {
        let c = ScenarioConfig::large_scale(10, Protocol::Lorawan, 1);
        assert_eq!(c.windows_in(Duration::from_mins(16)), 16);
        assert_eq!(c.windows_in(Duration::from_mins(60)), 60);
    }

    #[test]
    #[should_panic(expected = "must match ScenarioConfig.forecast_window")]
    fn validate_catches_window_mismatch() {
        let mut c = ScenarioConfig::large_scale(10, Protocol::h(0.5), 1);
        c.forecast_window = Duration::from_mins(2);
        c.validate();
    }

    #[test]
    fn scenario_json_without_faults_field_still_loads() {
        let cfg = ScenarioConfig::large_scale(5, Protocol::h(0.5), 3);
        let mut v = serde_json::to_value(&cfg).unwrap();
        v.as_object_mut().unwrap().remove("faults");
        let back: ScenarioConfig = serde_json::from_value(v).unwrap();
        assert_eq!(back, cfg);
        assert!(!back.faults.any_enabled());
    }

    #[test]
    fn scenario_json_without_reference_impl_field_still_loads() {
        // Scenario files predating the perf work have no
        // `reference_impl` key; they must load onto the optimized
        // engine paths.
        let cfg = ScenarioConfig::large_scale(5, Protocol::h(0.5), 3);
        let mut v = serde_json::to_value(&cfg).unwrap();
        v.as_object_mut().unwrap().remove("reference_impl");
        let back: ScenarioConfig = serde_json::from_value(v).unwrap();
        assert_eq!(back, cfg);
        assert!(!back.reference_impl);
    }

    #[test]
    fn scenario_json_without_script_field_still_loads() {
        // Scenario files predating scenario scripts have no `script`
        // key; they must load with an empty (no-op) script.
        let cfg = ScenarioConfig::large_scale(5, Protocol::h(0.5), 3);
        let mut v = serde_json::to_value(&cfg).unwrap();
        v.as_object_mut().unwrap().remove("script");
        let back: ScenarioConfig = serde_json::from_value(v).unwrap();
        assert_eq!(back, cfg);
        assert!(back.script.is_empty());
    }

    #[test]
    #[should_panic(expected = "churn fraction must be in [0, 1]")]
    fn validate_catches_bad_script() {
        use crate::script::{ScriptAction, ScriptedEvent};
        let mut c = ScenarioConfig::large_scale(10, Protocol::Lorawan, 1);
        c.script.events.push(ScriptedEvent {
            at: Duration::from_days(1),
            action: ScriptAction::Churn { fraction: -0.5 },
        });
        c.validate();
    }

    #[test]
    #[should_panic(expected = "invalid fault config")]
    fn validate_catches_bad_fault_config() {
        let mut c = ScenarioConfig::large_scale(10, Protocol::Lorawan, 1);
        c.faults.weight_corruption = Some(2.0);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "period range inverted")]
    fn validate_catches_bad_periods() {
        let mut c = ScenarioConfig::large_scale(10, Protocol::Lorawan, 1);
        c.period_min = Duration::from_mins(90);
        c.validate();
    }
}
