//! Deployment topology: node placement, link budgets, SF assignment.

use blam_des::RngSeeder;
use blam_lora_phy::link::{sensitivity, sf_for_link};
use blam_lora_phy::{Bandwidth, LinkBudget, Position, SpreadingFactor};
use blam_units::{Db, Meters};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::config::ScenarioConfig;

/// One deployed node's radio situation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodePlacement {
    /// Planar position (gateway 0 at the origin).
    pub position: Position,
    /// Link budget to the serving (closest) gateway, including static
    /// shadowing.
    pub link: LinkBudget,
    /// Index of the serving gateway.
    pub gateway: usize,
    /// Assigned spreading factor.
    pub sf: SpreadingFactor,
}

/// Gateway positions for a scenario: gateway 0 at the origin, any
/// additional gateways evenly spaced on a ring at half the deployment
/// radius.
#[must_use]
pub fn gateway_positions(config: &ScenarioConfig) -> Vec<Position> {
    let mut positions = vec![Position::ORIGIN];
    let extra = config.gateways.saturating_sub(1);
    for k in 0..extra {
        let angle = std::f64::consts::TAU * k as f64 / extra as f64;
        let r = config.radius.0 * 0.5;
        positions.push(Position::new(r * angle.cos(), r * angle.sin()));
    }
    positions
}

/// The deployed network: gateways per [`gateway_positions`], nodes in a
/// disk around the origin.
///
/// # Examples
///
/// ```
/// use blam_netsim::{config::{Protocol, ScenarioConfig}, topology::Topology};
///
/// let cfg = ScenarioConfig::large_scale(100, Protocol::Lorawan, 7);
/// let topo = Topology::generate(&cfg);
/// assert_eq!(topo.placements.len(), 100);
/// // Every node's link closes at its assigned SF.
/// for p in &topo.placements {
///     assert!(p.link.closes(cfg.tx_power, p.sf, blam_lora_phy::Bandwidth::Khz125));
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Per-node placements, indexed by node id.
    pub placements: Vec<NodePlacement>,
}

impl Topology {
    /// Generates the deployment for a scenario (deterministic in the
    /// scenario seed).
    ///
    /// Nodes are placed uniformly over the disk of the configured
    /// radius; each gets a static log-normal shadowing term, clamped so
    /// that SF12 still closes (a node that could never reach the
    /// gateway would not have been deployed); the fastest SF with the
    /// configured margin is assigned, falling back to the fastest SF
    /// that closes at all.
    #[must_use]
    pub fn generate(config: &ScenarioConfig) -> Self {
        let seeder = RngSeeder::new(config.seed);
        let mut rng = seeder.stream("topology");
        let bw = Bandwidth::Khz125;
        let gateways = gateway_positions(config);
        let placements = (0..config.nodes)
            .map(|_| {
                // Uniform over the disk: r = R·sqrt(u).
                let r = config.radius.0 * rng.gen::<f64>().sqrt();
                let angle = rng.gen::<f64>() * std::f64::consts::TAU;
                let position = Position::new(r * angle.cos(), r * angle.sin());
                // Serve from the closest gateway.
                let (gateway, gw_pos) = gateways
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        position
                            .distance_to(**a)
                            .0
                            .total_cmp(&position.distance_to(**b).0)
                    })
                    .map(|(i, p)| (i, *p))
                    .expect("at least one gateway");
                let distance = Meters(position.distance_to(gw_pos).0.max(1.0));
                // Approximate standard normal via Irwin–Hall.
                let z: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
                let mut shadowing = Db(z * config.shadowing_sigma.0);
                // Clamp shadowing so SF12 can still close the link.
                let clear = LinkBudget::new(distance).with_path_loss(config.path_loss);
                let headroom = clear.rssi(config.tx_power) - sensitivity(SpreadingFactor::Sf12, bw);
                if shadowing.0 > headroom.0 {
                    shadowing = headroom;
                }
                let link = clear.with_shadowing(shadowing);
                let sf = sf_for_link(&link, config.tx_power, bw, config.sf_margin)
                    .or_else(|| sf_for_link(&link, config.tx_power, bw, Db(0.0)))
                    .unwrap_or(SpreadingFactor::Sf12);
                NodePlacement {
                    position,
                    link,
                    gateway,
                    sf,
                }
            })
            .collect();
        Topology { placements }
    }

    /// The histogram of assigned spreading factors, indexed SF7..SF12.
    #[must_use]
    pub fn sf_histogram(&self) -> [usize; 6] {
        let mut h = [0usize; 6];
        for p in &self.placements {
            h[usize::from(p.sf.as_u8() - 7)] += 1;
        }
        h
    }

    /// The maximum node–gateway distance in this deployment.
    #[must_use]
    pub fn max_distance(&self) -> Meters {
        self.placements
            .iter()
            .map(|p| p.link.distance)
            .fold(Meters(0.0), |a, b| if b.0 > a.0 { b } else { a })
    }
}

/// The partition of a deployment for sharded execution (see
/// [`crate::shard`]).
///
/// The semantic unit is the **cell**: one per gateway, holding exactly
/// the nodes that gateway serves. Cells — not shards — define the
/// simulation's behavior; `shards` only groups cells into execution
/// groups (one worker walks each group's cells), so results are
/// independent of the shard count and job count by construction.
///
/// The `boundary` set quantifies the model refinement sharding makes:
/// a cell simulates only its own gateway, so a node whose uplink could
/// also close at a *foreign* gateway loses that reception diversity.
/// Each `(node, foreign gateway)` pair here is one such audible
/// cross-cell link — diagnostic only, nothing consumes it at runtime.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Number of execution groups cells are assigned to.
    pub shards: usize,
    /// Cell (= serving gateway) of each node, indexed by global id.
    pub cell_of_node: Vec<usize>,
    /// Global node ids of each cell, ascending within a cell.
    pub cell_nodes: Vec<Vec<u32>>,
    /// Execution group of each cell (contiguous, balanced).
    pub shard_of_cell: Vec<usize>,
    /// Cross-cell audibility: `(node, foreign gateway)` pairs whose
    /// link would close at SF12 with zero margin.
    pub boundary: Vec<(u32, usize)>,
}

impl ShardPlan {
    /// Partitions a generated deployment into cells along gateway
    /// boundaries and groups the cells into `shards` execution groups
    /// (clamped to `[1, gateways]`).
    #[must_use]
    pub fn build(config: &ScenarioConfig, topology: &Topology, shards: usize) -> Self {
        let cells = config.gateways.max(1);
        let shards = shards.clamp(1, cells);
        let gateways = gateway_positions(config);
        let bw = Bandwidth::Khz125;
        let mut cell_of_node = Vec::with_capacity(topology.placements.len());
        let mut cell_nodes: Vec<Vec<u32>> = vec![Vec::new(); cells];
        let mut boundary = Vec::new();
        for (i, p) in topology.placements.iter().enumerate() {
            cell_of_node.push(p.gateway);
            cell_nodes[p.gateway].push(i as u32);
            for (g, &gw_pos) in gateways.iter().enumerate() {
                if g == p.gateway {
                    continue;
                }
                // The same link model build_nodes uses for its
                // per-gateway budgets: free-path distance (min 1 m)
                // plus the node's static shadowing term.
                let distance = Meters(p.position.distance_to(gw_pos).0.max(1.0));
                let link = LinkBudget::new(distance)
                    .with_path_loss(config.path_loss)
                    .with_shadowing(p.link.shadowing);
                if sf_for_link(&link, config.tx_power, bw, Db(0.0)).is_some() {
                    boundary.push((i as u32, g));
                }
            }
        }
        let shard_of_cell = (0..cells).map(|c| c * shards / cells).collect();
        ShardPlan {
            shards,
            cell_of_node,
            cell_nodes,
            shard_of_cell,
            boundary,
        }
    }

    /// Number of cells (= gateways) in the plan.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.cell_nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Protocol;

    fn cfg(nodes: usize, seed: u64) -> ScenarioConfig {
        ScenarioConfig::large_scale(nodes, Protocol::Lorawan, seed)
    }

    #[test]
    fn placement_is_deterministic() {
        let a = Topology::generate(&cfg(50, 3));
        let b = Topology::generate(&cfg(50, 3));
        assert_eq!(a, b);
        let c = Topology::generate(&cfg(50, 4));
        assert_ne!(a, c);
    }

    #[test]
    fn nodes_within_radius() {
        let topo = Topology::generate(&cfg(200, 1));
        assert!(topo.max_distance().0 <= 5_000.0 + 1e-6);
    }

    #[test]
    fn every_link_closes_at_assigned_sf() {
        let config = cfg(300, 2);
        let topo = Topology::generate(&config);
        for (i, p) in topo.placements.iter().enumerate() {
            assert!(
                p.link.closes(config.tx_power, p.sf, Bandwidth::Khz125),
                "node {i} at {} with {} does not close",
                p.link.distance,
                p.sf
            );
        }
    }

    #[test]
    fn sf_diversity_in_large_disk() {
        let topo = Topology::generate(&cfg(400, 5));
        let hist = topo.sf_histogram();
        let used = hist.iter().filter(|&&n| n > 0).count();
        assert!(used >= 4, "expected SF diversity, got {hist:?}");
        assert_eq!(hist.iter().sum::<usize>(), 400);
    }

    #[test]
    fn nearer_nodes_get_faster_sfs_on_average() {
        let topo = Topology::generate(&cfg(400, 6));
        let mean_distance = |sf: SpreadingFactor| {
            let v: Vec<f64> = topo
                .placements
                .iter()
                .filter(|p| p.sf == sf)
                .map(|p| p.link.distance.0)
                .collect();
            if v.is_empty() {
                None
            } else {
                Some(v.iter().sum::<f64>() / v.len() as f64)
            }
        };
        if let (Some(d7), Some(d12)) = (
            mean_distance(SpreadingFactor::Sf7),
            mean_distance(SpreadingFactor::Sf12),
        ) {
            assert!(d7 < d12, "SF7 mean {d7} !< SF12 mean {d12}");
        }
    }

    #[test]
    fn gateway_ring_positions() {
        let mut c = cfg(10, 1);
        c.gateways = 4;
        let gws = gateway_positions(&c);
        assert_eq!(gws.len(), 4);
        assert_eq!(gws[0], Position::ORIGIN);
        for g in &gws[1..] {
            let d = g.distance_to(Position::ORIGIN);
            assert!((d.0 - c.radius.0 * 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn nodes_serve_from_closest_gateway() {
        let mut c = cfg(200, 8);
        c.gateways = 3;
        let gws = gateway_positions(&c);
        let topo = Topology::generate(&c);
        let mut used = std::collections::HashSet::new();
        for p in &topo.placements {
            used.insert(p.gateway);
            let to_serving = p.position.distance_to(gws[p.gateway]).0;
            for g in &gws {
                assert!(to_serving <= p.position.distance_to(*g).0 + 1e-9);
            }
        }
        assert!(used.len() >= 2, "multiple gateways should serve nodes");
    }

    #[test]
    fn more_gateways_shorten_links_and_lower_sfs() {
        let one = Topology::generate(&cfg(300, 2));
        let mut c = cfg(300, 2);
        c.gateways = 4;
        let four = Topology::generate(&c);
        let mean = |t: &Topology| {
            t.placements.iter().map(|p| p.link.distance.0).sum::<f64>() / t.placements.len() as f64
        };
        assert!(mean(&four) < mean(&one) * 0.8, "links should shorten");
        let sf_sum =
            |t: &Topology| -> u32 { t.placements.iter().map(|p| u32::from(p.sf.as_u8())).sum() };
        assert!(sf_sum(&four) < sf_sum(&one), "SFs should drop");
    }

    #[test]
    fn testbed_topology_is_compact() {
        let config = ScenarioConfig::testbed(Protocol::Lorawan, 9);
        let topo = Topology::generate(&config);
        assert_eq!(topo.placements.len(), 10);
        assert!(topo.max_distance().0 <= 50.0 + 1e-9);
    }

    #[test]
    fn shard_plan_partitions_along_gateways() {
        let c = ScenarioConfig::scale(200, 4, Protocol::Lorawan, 8);
        let topo = Topology::generate(&c);
        let plan = ShardPlan::build(&c, &topo, 2);
        assert_eq!(plan.cells(), 4);
        assert_eq!(plan.cell_of_node.len(), 200);
        // Every node lands in exactly its serving gateway's cell, in
        // ascending global-id order within the cell.
        assert_eq!(plan.cell_nodes.iter().map(Vec::len).sum::<usize>(), 200);
        for (cell, nodes) in plan.cell_nodes.iter().enumerate() {
            for &id in nodes {
                assert_eq!(topo.placements[id as usize].gateway, cell);
            }
            assert!(nodes.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn shard_plan_groups_cells_contiguously() {
        let c = ScenarioConfig::scale(50, 6, Protocol::Lorawan, 8);
        let topo = Topology::generate(&c);
        let plan = ShardPlan::build(&c, &topo, 4);
        assert_eq!(plan.shards, 4);
        assert_eq!(plan.shard_of_cell.len(), 6);
        // Non-decreasing (contiguous groups) and covering every shard.
        assert!(plan.shard_of_cell.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(plan.shard_of_cell[0], 0);
        assert_eq!(*plan.shard_of_cell.last().unwrap(), 3);
        // Shard count is clamped to the cell count.
        assert_eq!(ShardPlan::build(&c, &topo, 99).shards, 6);
        assert_eq!(ShardPlan::build(&c, &topo, 0).shards, 1);
    }

    #[test]
    fn shard_plan_boundary_names_foreign_audible_gateways() {
        let c = ScenarioConfig::scale(300, 4, Protocol::Lorawan, 8);
        let topo = Topology::generate(&c);
        let plan = ShardPlan::build(&c, &topo, 4);
        // Gateways sit half a radius apart while SF12 closes multi-km
        // suburban links, so some cross-cell audibility must exist.
        assert!(!plan.boundary.is_empty());
        for &(id, g) in &plan.boundary {
            assert_ne!(
                topo.placements[id as usize].gateway, g,
                "boundary pairs are foreign gateways only"
            );
            assert!(g < 4);
        }
        // A single-gateway deployment has no foreign gateways at all.
        let c1 = ScenarioConfig::large_scale(50, Protocol::Lorawan, 8);
        let t1 = Topology::generate(&c1);
        assert!(ShardPlan::build(&c1, &t1, 1).boundary.is_empty());
    }
}
