//! Scenario presets mirroring the paper's evaluation setups.

use blam_units::Duration;

use crate::config::{ForecasterKind, Protocol, ScenarioConfig};
use crate::engine::{Engine, RunResult};

/// A runnable scenario: a configuration plus convenience builders.
///
/// # Examples
///
/// ```no_run
/// use blam_netsim::{config::Protocol, Scenario};
/// use blam_units::Duration;
///
/// let result = Scenario::testbed(Protocol::h(1.0), 1).run();
/// assert!(result.network.prr > 0.9);
/// # let _ = result;
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The underlying configuration (freely adjustable before `run`).
    pub config: ScenarioConfig,
}

impl Scenario {
    /// The paper's large-scale simulation (§IV-A).
    #[must_use]
    pub fn large_scale(nodes: usize, protocol: Protocol, seed: u64) -> Self {
        Scenario {
            config: ScenarioConfig::large_scale(nodes, protocol, seed),
        }
    }

    /// The multi-gateway scale variant of the large-scale setup (see
    /// [`ScenarioConfig::scale`]), the natural input to
    /// [`run_sharded`](crate::shard::run_sharded).
    #[must_use]
    pub fn scale(nodes: usize, gateways: usize, protocol: Protocol, seed: u64) -> Self {
        Scenario {
            config: ScenarioConfig::scale(nodes, gateways, protocol, seed),
        }
    }

    /// The paper's 10-node, 24-hour, single-channel testbed (§IV-B).
    #[must_use]
    pub fn testbed(protocol: Protocol, seed: u64) -> Self {
        Scenario {
            config: ScenarioConfig::testbed(protocol, seed),
        }
    }

    /// Overrides the simulation horizon.
    #[must_use]
    pub fn with_duration(mut self, duration: Duration) -> Self {
        self.config.duration = duration;
        self
    }

    /// Stops the simulation at the first battery EoL (lifespan runs,
    /// Figs. 7–8).
    #[must_use]
    pub fn until_first_eol(mut self, max: Duration) -> Self {
        self.config.duration = max;
        self.config.stop_at_first_eol = true;
        self
    }

    /// Overrides the forecaster (ablations).
    #[must_use]
    pub fn with_forecaster(mut self, kind: ForecasterKind) -> Self {
        self.config.forecaster = kind;
        self
    }

    /// Overrides the degradation-sampling interval.
    #[must_use]
    pub fn with_sample_interval(mut self, interval: Duration) -> Self {
        self.config.sample_interval = interval;
        self
    }

    /// Builds and runs the simulation.
    #[must_use]
    pub fn run(self) -> RunResult {
        Engine::build(self.config).run()
    }

    /// Runs the scenario in the cell-sharded mode (telemetry off). The
    /// result is independent of `shards` and `jobs` — see
    /// [`run_sharded`](crate::shard::run_sharded).
    #[must_use]
    pub fn run_sharded(self, shards: usize, jobs: usize) -> RunResult {
        crate::shard::run_sharded(
            &self.config,
            shards,
            jobs,
            &crate::telemetry::TelemetryOptions::off(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_adjust_config() {
        let s = Scenario::large_scale(10, Protocol::Lorawan, 1)
            .with_duration(Duration::from_days(3))
            .with_sample_interval(Duration::from_days(1))
            .with_forecaster(ForecasterKind::Oracle);
        assert_eq!(s.config.duration, Duration::from_days(3));
        assert_eq!(s.config.sample_interval, Duration::from_days(1));
        assert_eq!(s.config.forecaster, ForecasterKind::Oracle);
        let s = s.until_first_eol(Duration::from_days(10));
        assert!(s.config.stop_at_first_eol);
    }

    #[test]
    fn testbed_runs_one_day() {
        let r = Scenario::testbed(Protocol::h(1.0), 2).run();
        // 10 nodes × ~144 packets/day.
        assert!(
            r.network.generated >= 10 * 100,
            "generated {}",
            r.network.generated
        );
        assert!(r.network.prr > 0.9, "PRR {}", r.network.prr);
        assert_eq!(
            r.sim_end,
            blam_units::SimTime::ZERO + Duration::from_days(1)
        );
    }
}
