//! Crash-safe mid-run checkpointing: epoch snapshots and byte-exact
//! resume.
//!
//! A snapshot captures the full mutable state of a run at a
//! dissemination-epoch barrier — the pending event queue, every node
//! store column, per-stream RNG positions, the gateway radios, server
//! and ADR state, the degradation ledger, fault-layer chains and the
//! (script-mutated) scenario configuration — and nothing a fresh
//! [`Engine::build`] reproduces bit-identically from the launch
//! configuration (topology, harvest traces, scratch matrices, outage
//! schedules, generation phases).
//!
//! # Resume contract
//!
//! A run killed at any point and resumed from its last snapshot
//! produces a [`RunResult`] byte-identical to the uninterrupted run —
//! at any `--shards N --jobs M`, faults and scenario scripts included.
//! Two deliberate exclusions:
//!
//! * **Telemetry** is observational and is not checkpointed: a resumed
//!   run's trace file / report covers only events after the resume.
//!   Results with the default [`NullSink`](blam_telemetry::NullSink)
//!   (`telemetry: None`) are covered by the byte-exactness contract.
//! * The snapshot file itself is a mid-run artifact: it is deleted
//!   when the run completes.
//!
//! # Snapshot file format
//!
//! One header line, then a JSON payload:
//!
//! ```text
//! BLAMSNAP2 <fnv1a64-of-payload, 16 hex digits> <payload byte length>
//! {"version":2,"config_fnv":…,"epoch":…,"payload":{…}}
//! ```
//!
//! Snapshots are written atomically (temp file + rename) at epoch
//! barriers. A reader validates the magic, the length and the
//! checksum before parsing; a torn or corrupt file is quarantined to
//! `<path>.corrupt` and the run restarts from scratch — losing time,
//! never correctness.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use blam::{CompressedSocTrace, DegradationLedger};
use blam_des::{SimSnapshot, Simulator};
use blam_lorawan::{AdrEngine, AdrState, GatewayRadio, NetworkServer, ServerState};
use blam_units::SimTime;
use serde::{Deserialize, Serialize};

use crate::config::ScenarioConfig;
use crate::engine::{Engine, LedgerMode, RunResult};
use crate::events::Event;
use crate::faults::FaultLayerState;
use crate::store::StoreState;

/// Magic token opening every snapshot header line. Bumped to 2 when
/// the per-node cold state grew the policy-private column
/// (`PolicyState`): a v1 snapshot no longer round-trips and must be
/// rejected, not misread.
const SNAPSHOT_MAGIC: &str = "BLAMSNAP2";
/// Version of the JSON payload schema.
pub(crate) const SNAPSHOT_VERSION: u32 = 2;

/// Where and how often to snapshot a run.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// The snapshot file. Written atomically at epoch barriers, read
    /// at startup (resuming if valid), deleted when the run completes.
    pub path: PathBuf,
    /// Snapshot every this many dissemination epochs (clamped to ≥ 1).
    pub every_epochs: u64,
}

impl CheckpointConfig {
    /// Snapshots to `path` at every dissemination epoch.
    #[must_use]
    pub fn every_epoch(path: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            path: path.into(),
            every_epochs: 1,
        }
    }
}

/// 64-bit FNV-1a over `bytes` — the same hash the campaign spool uses
/// for job ids, applied here to snapshot payloads and config
/// fingerprints.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Fingerprint of the launch configuration a snapshot belongs to.
/// Resuming under a different scenario is an error, not a silent
/// divergence.
pub(crate) fn config_fingerprint(cfg: &ScenarioConfig) -> u64 {
    // analyzer: allow(panic-hygiene, reason = "ScenarioConfig always serializes; a failure is a programming error")
    let json = serde_json::to_string(cfg).expect("scenario config serializes");
    fnv1a64(json.as_bytes())
}

/// The serialized snapshot: schema version, launch-config fingerprint,
/// completed-epoch counter and the engine state payload.
#[derive(Debug, Serialize, Deserialize)]
pub(crate) struct SnapshotFile {
    pub(crate) version: u32,
    pub(crate) config_fnv: u64,
    /// Dissemination epochs fully processed when the snapshot was
    /// taken (the simulation clock sits at `epoch ·
    /// dissemination_interval`).
    pub(crate) epoch: u64,
    pub(crate) payload: SnapshotPayload,
}

/// Engine state for the two execution modes. A snapshot taken in one
/// mode cannot resume the other — the RNG stream layout differs.
#[derive(Debug, Serialize, Deserialize)]
pub(crate) enum SnapshotPayload {
    /// Single-engine run.
    Single(Box<EngineState>),
    /// Cell-sharded run: one state per cell plus the coordinator's
    /// global ledger.
    Sharded {
        cells: Vec<EngineState>,
        ledger: DegradationLedger,
    },
}

/// How an engine's gateway-side ledger is checkpointed (mirrors
/// [`LedgerMode`]).
#[derive(Debug, Serialize, Deserialize)]
pub(crate) enum LedgerState {
    Local(DegradationLedger),
    Deferred(Vec<(u32, SimTime, CompressedSocTrace)>),
}

/// Everything mutable about one [`Engine`] and its simulator. Restored
/// by overlaying onto a freshly built engine — see the module docs for
/// what is deliberately rebuilt instead of serialized.
#[derive(Debug, Serialize, Deserialize)]
pub(crate) struct EngineState {
    /// The scenario configuration *as mutated by scripts so far*
    /// (`SetWuTtl`/`SetTraceBuffer` rewrite `cfg.protocol` mid-run);
    /// the policy is rebuilt from it on restore.
    pub(crate) cfg: ScenarioConfig,
    pub(crate) store: StoreState,
    pub(crate) gateways: Vec<GatewayRadio>,
    pub(crate) server: ServerState,
    pub(crate) adr: Option<AdrState>,
    pub(crate) ledger: LedgerState,
    pub(crate) faults: FaultLayerState,
    /// Word position of the engine's MAC jitter stream.
    pub(crate) mac_rng_pos: u128,
    pub(crate) halted: bool,
    pub(crate) first_eol: Option<(usize, SimTime)>,
    pub(crate) samples: Vec<crate::metrics::DegradationSample>,
    /// The pending event queue, clock and processed-event counter.
    pub(crate) sim: SimSnapshot<Event>,
}

impl Engine {
    /// Captures this engine's full mutable state (including its
    /// simulator) at an epoch barrier.
    pub(crate) fn checkpoint_state(&self, sim: &Simulator<Event>) -> EngineState {
        EngineState {
            cfg: self.cfg.clone(),
            store: self.store.checkpoint(),
            gateways: self.gateways.clone(),
            server: self.server.checkpoint(),
            adr: self.adr.as_ref().map(AdrEngine::checkpoint),
            ledger: match &self.ledger {
                LedgerMode::Local(ledger) => LedgerState::Local(ledger.clone()),
                LedgerMode::Deferred(pending) => LedgerState::Deferred(pending.clone()),
            },
            faults: self.faults.checkpoint(),
            mac_rng_pos: self.mac_rng.get_word_pos(),
            halted: self.halted,
            first_eol: self.first_eol,
            samples: self.samples.clone(),
            sim: sim.snapshot(),
        }
    }

    /// Overlays a checkpointed [`EngineState`] onto this freshly built
    /// engine and returns the restored simulator. The engine must have
    /// been built from the same launch configuration the snapshot was
    /// taken under (enforced upstream via [`config_fingerprint`] and
    /// again by the store's id assertions).
    pub(crate) fn restore_state(&mut self, state: EngineState) -> Simulator<Event> {
        let EngineState {
            cfg,
            store,
            gateways,
            server,
            adr,
            ledger,
            faults,
            mac_rng_pos,
            halted,
            first_eol,
            samples,
            sim,
        } = state;
        self.cfg = cfg;
        // Scripts may have rewritten protocol knobs before the
        // snapshot; the policy object is derived state.
        self.policy = self.cfg.protocol.policy();
        self.store.restore_state(store);
        self.gateways = gateways;
        self.server = NetworkServer::restore(server);
        if let (Some(engine), Some(saved)) = (self.adr.as_mut(), adr) {
            engine.restore_state(saved);
        }
        self.ledger = match ledger {
            LedgerState::Local(ledger) => LedgerMode::Local(ledger),
            LedgerState::Deferred(pending) => LedgerMode::Deferred(pending),
        };
        self.faults.restore_state(&faults);
        // The fresh build already seeded the right MAC stream (plain
        // "mac" for the single engine, "mac" indexed by cell for a
        // cell engine); only the position needs winding forward.
        self.mac_rng.set_word_pos(mac_rng_pos);
        self.halted = halted;
        self.first_eol = first_eol;
        self.samples = samples;
        Simulator::restore(sim, self.cfg.reference_impl)
    }

    /// Runs like [`Engine::run`], snapshotting to `ckpt.path` at
    /// dissemination-epoch barriers and resuming from that file when a
    /// valid snapshot for the same launch configuration exists.
    ///
    /// `keep_going` is polled at every barrier; returning `false`
    /// abandons the run with `Ok(None)` — the snapshot file is left in
    /// place for the next attempt. On completion the snapshot file is
    /// removed and the result is byte-identical to an uninterrupted
    /// [`Engine::run`] (minus telemetry — see the module docs).
    ///
    /// # Errors
    ///
    /// Fails on snapshot I/O errors, or when the snapshot on disk was
    /// taken under a different launch configuration or by the sharded
    /// engine. A torn/corrupt snapshot is *not* an error: it is
    /// quarantined to `<path>.corrupt` and the run restarts fresh.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation (as
    /// [`Engine::run`] does).
    pub fn run_checkpointed(
        mut self,
        ckpt: &CheckpointConfig,
        mut keep_going: impl FnMut() -> bool,
    ) -> io::Result<Option<RunResult>> {
        let config_fnv = config_fingerprint(&self.cfg);
        let every = ckpt.every_epochs.max(1);
        let horizon = SimTime::ZERO + self.cfg.duration;
        let step = self.cfg.dissemination_interval;
        let label = self.policy.label();
        self.telemetry
            .begin(&label, self.cfg.seed, self.store.total() as u32);
        let (mut sim, mut epoch) = match read_snapshot(&ckpt.path)? {
            SnapshotRead::Valid(file) if file.config_fnv == config_fnv => {
                let SnapshotPayload::Single(state) = file.payload else {
                    return Err(io::Error::other(
                        "snapshot was taken by the sharded engine; resume with the same --shards",
                    ));
                };
                let sim = self.restore_state(*state);
                (sim, file.epoch)
            }
            SnapshotRead::Valid(_) => {
                return Err(io::Error::other(
                    "snapshot belongs to a different scenario configuration",
                ));
            }
            SnapshotRead::Absent | SnapshotRead::Quarantined => {
                let mut sim: Simulator<Event> = if self.cfg.reference_impl {
                    Simulator::reference()
                } else {
                    Simulator::new()
                };
                self.schedule_initial_events(&mut sim);
                (sim, 0)
            }
        };
        loop {
            if !keep_going() {
                return Ok(None);
            }
            let mut barrier = SimTime::ZERO + step * (epoch + 1);
            if barrier >= horizon {
                barrier = horizon;
            }
            sim.run_until(barrier, |sim, now, ev| self.handle(sim, now, ev));
            if barrier >= horizon {
                break;
            }
            epoch += 1;
            if epoch % every == 0 {
                let file = SnapshotFile {
                    version: SNAPSHOT_VERSION,
                    config_fnv,
                    epoch,
                    payload: SnapshotPayload::Single(Box::new(self.checkpoint_state(&sim))),
                };
                write_snapshot(&ckpt.path, &file)?;
            }
        }
        let events_processed = sim.processed();
        let _ = fs::remove_file(&ckpt.path);
        Ok(Some(self.finalize(horizon, events_processed)))
    }
}

/// Outcome of reading a snapshot file.
pub(crate) enum SnapshotRead {
    /// No file at the path — start fresh.
    Absent,
    /// The file failed validation (torn write, bit rot, truncation)
    /// and was moved aside to `<path>.corrupt` — start fresh.
    Quarantined,
    /// A validated, parsed snapshot.
    Valid(SnapshotFile),
}

/// Serializes and atomically writes a snapshot: payload JSON behind a
/// `BLAMSNAP2 <checksum> <length>` header, via temp file + rename so a
/// crash mid-write leaves either the old snapshot or the new one,
/// never a torn hybrid at the final path.
pub(crate) fn write_snapshot(path: &Path, file: &SnapshotFile) -> io::Result<()> {
    // analyzer: allow(panic-hygiene, reason = "snapshot types always serialize; a failure is a programming error")
    let payload = serde_json::to_string(file).expect("snapshot serializes");
    let header = format!(
        "{SNAPSHOT_MAGIC} {:016x} {}\n",
        fnv1a64(payload.as_bytes()),
        payload.len()
    );
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    // analyzer: allow(atomic-write, reason = "this IS the temp half of a local temp-then-rename; netsim cannot depend on blam-campaign's helper without a dependency cycle")
    fs::write(&tmp, header + &payload)?;
    fs::rename(&tmp, path)
}

/// Reads and validates the snapshot at `path`. A missing file is
/// [`SnapshotRead::Absent`]; a file failing any integrity check
/// (magic, length, checksum, JSON shape, schema version) is renamed to
/// `<path>.corrupt` and reported as [`SnapshotRead::Quarantined`].
pub(crate) fn read_snapshot(path: &Path) -> io::Result<SnapshotRead> {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(SnapshotRead::Absent),
        Err(e) => return Err(e),
    };
    match parse_snapshot(&text) {
        Ok(file) => Ok(SnapshotRead::Valid(file)),
        Err(_) => {
            let mut quarantined = path.as_os_str().to_owned();
            quarantined.push(".corrupt");
            let quarantined = PathBuf::from(quarantined);
            fs::rename(path, &quarantined)?;
            Ok(SnapshotRead::Quarantined)
        }
    }
}

/// Validates header + payload and parses the snapshot.
fn parse_snapshot(text: &str) -> Result<SnapshotFile, String> {
    let (header, payload) = text
        .split_once('\n')
        .ok_or_else(|| "missing header line".to_string())?;
    let mut parts = header.split(' ');
    if parts.next() != Some(SNAPSHOT_MAGIC) {
        return Err("bad magic".to_string());
    }
    let checksum = parts
        .next()
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| "bad checksum field".to_string())?;
    let length: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| "bad length field".to_string())?;
    if parts.next().is_some() {
        return Err("trailing header fields".to_string());
    }
    if payload.len() != length {
        return Err(format!(
            "payload is {} bytes, header promises {length} (torn write)",
            payload.len()
        ));
    }
    let actual = fnv1a64(payload.as_bytes());
    if actual != checksum {
        return Err(format!(
            "checksum mismatch: {actual:016x} != {checksum:016x}"
        ));
    }
    let file: SnapshotFile =
        serde_json::from_str(payload).map_err(|e| format!("payload does not parse: {e}"))?;
    if file.version != SNAPSHOT_VERSION {
        return Err(format!("unsupported snapshot version {}", file.version));
    }
    Ok(file)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_file() -> SnapshotFile {
        SnapshotFile {
            version: SNAPSHOT_VERSION,
            config_fnv: 7,
            epoch: 3,
            payload: SnapshotPayload::Sharded {
                cells: Vec::new(),
                ledger: DegradationLedger::default(),
            },
        }
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn snapshot_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("blamsnap-rt-{}", std::process::id()));
        let path = dir.join("run.ckpt");
        write_snapshot(&path, &sample_file()).unwrap();
        let SnapshotRead::Valid(back) = read_snapshot(&path).unwrap() else {
            panic!("freshly written snapshot must validate");
        };
        assert_eq!(back.epoch, 3);
        assert_eq!(back.config_fnv, 7);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_and_corrupt_snapshots_are_quarantined() {
        let dir = std::env::temp_dir().join(format!("blamsnap-torn-{}", std::process::id()));
        let path = dir.join("run.ckpt");
        for mutilate in [
            // Truncation (torn write): drop the payload's tail.
            |text: String| text[..text.len() - 10].to_string(),
            // Bit rot: flip a payload byte, length intact.
            |text: String| text.replacen("\"epoch\":3", "\"epoch\":9", 1),
            // Wrong magic.
            |text: String| text.replacen(SNAPSHOT_MAGIC, "NOTASNAP1", 1),
        ] {
            write_snapshot(&path, &sample_file()).unwrap();
            let text = fs::read_to_string(&path).unwrap();
            fs::write(&path, mutilate(text)).unwrap();
            let SnapshotRead::Quarantined = read_snapshot(&path).unwrap() else {
                panic!("mutilated snapshot must be quarantined");
            };
            let q = PathBuf::from(format!("{}.corrupt", path.display()));
            assert!(q.exists(), "quarantine file preserved for forensics");
            assert!(!path.exists(), "corrupt file moved out of the way");
            fs::remove_file(&q).unwrap();
        }
        assert!(matches!(
            read_snapshot(&path).unwrap(),
            SnapshotRead::Absent
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
