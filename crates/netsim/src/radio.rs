//! The gateway radio layer: uplink reception conclusion (collision /
//! capture resolution across gateways), the network-server response,
//! half-duplex RX1/RX2 downlink scheduling, and the daily
//! normalized-degradation dissemination.

use blam_des::Simulator;
use blam_lora_phy::{CodingRate, TxConfig};
use blam_lorawan::{DeviceAddr, Uplink};
use blam_telemetry::{EventKind, FaultKind};
use blam_units::{Dbm, Duration, SimTime};

use crate::engine::{Engine, LedgerMode};
use crate::events::Event;

/// The Class-A receive-window timeout: long enough to detect a
/// preamble (8 symbols) at the RX2 data rate, at least 50 ms.
pub(crate) fn rx_window_timeout(plan: &blam_lora_phy::ChannelPlan) -> Duration {
    let symbol = blam_lora_phy::symbol_duration_secs(plan.rx2_sf, plan.rx2_channel.bandwidth);
    Duration::from_secs_f64((8.0 * symbol).max(0.05))
}

impl Engine {
    /// Downlink time-on-air for an ACK configuration. The optimized
    /// engine serves canonical configurations from the global airtime
    /// memo table; the reference engine always evaluates the Semtech
    /// formula directly. Bit-identical either way.
    fn downlink_airtime(&self, cfg: &TxConfig, payload_len: usize) -> Duration {
        if self.cfg.reference_impl {
            Duration::from_secs_f64(blam_lora_phy::airtime_secs_direct(cfg, payload_len))
        } else {
            cfg.airtime(payload_len)
        }
    }

    /// Concludes a finished transmission's receptions at every gateway
    /// (only the entries tagged with this event's epoch — a successor
    /// exchange's in-flight receptions must run their own course).
    /// Returns the best decoding gateway and its RSSI, if any decoded
    /// the uplink (the network server deduplicates).
    pub(crate) fn conclude_receptions(&mut self, i: usize, epoch: u64) -> Option<(usize, f64)> {
        let mut best_rx: Option<(usize, f64)> = None;
        let mut idx = 0;
        loop {
            let node = self.store.node_mut(i);
            if idx >= node.inflight.len() {
                break;
            }
            if node.inflight[idx].0 == epoch {
                let (_, g, tid, rssi) = node.inflight.swap_remove(idx);
                if self.gateways[g].end_uplink(tid).is_received()
                    && best_rx.is_none_or(|(_, r)| rssi > r)
                {
                    best_rx = Some((g, rssi));
                }
            } else {
                idx += 1;
            }
        }
        best_rx
    }

    /// A decoded uplink reached the server: record the piggybacked SoC
    /// trace, run ADR, and schedule the ACK downlink at the RX1
    /// opening with an RX2 fallback if the gateway turns out busy.
    pub(crate) fn on_uplink_decoded(
        &mut self,
        sim: &mut Simulator<Event>,
        now: SimTime,
        i: usize,
        epoch: u64,
        rx_gateway: usize,
        frame: &Uplink,
    ) {
        // Downlink burst loss gates the whole server response: a lost
        // ACK path means the exchange looks exactly like an unheard
        // uplink to the node (no trace recorded, no ADR, no downlink).
        // With 100% loss this is byte-identical to a dead gateway.
        if self.faults.downlink_loss_enabled() && self.faults.downlink_lost(i) {
            if self.telemetry_on() {
                self.emit(
                    now,
                    i,
                    EventKind::FaultInjected {
                        fault: FaultKind::DownlinkLost,
                    },
                );
            }
            return;
        }
        let sf = self.store.node_mut(i).placement.sf;
        let uplink_channel = *self.store.node_mut(i).current_channel;
        let decision = self
            .server
            .on_uplink(frame, &uplink_channel, sf, &self.cfg.plan);
        if !decision.duplicate {
            // One queued trace rides per delivered uplink, oldest
            // first, so a backlog buffered across failed exchanges
            // drains in anchor order. Ledger records are keyed by the
            // global id; a cell engine defers them to the coordinator.
            let id = self.store.global_id(i);
            if let Some((anchor, trace)) = self.store.node_mut(i).trace_queue.pop_front() {
                match &mut self.ledger {
                    LedgerMode::Local(ledger) => ledger.record_trace(id, anchor, &trace),
                    LedgerMode::Deferred(pending) => pending.push((id, anchor, trace)),
                }
            }
            if let Some(adr) = self.adr.as_mut() {
                // SNR of the demodulated uplink at the gateway.
                let node = self.store.node_mut(i);
                let tx_cfg = node.tx_config();
                let noise_floor = blam_lora_phy::link::THERMAL_NOISE_DBM_HZ
                    + 10.0 * tx_cfg.bw.as_hz_f64().log10()
                    + blam_lora_phy::link::NOISE_FIGURE_DB;
                let snr = blam_units::Db(node.placement.link.rssi(tx_cfg.power).0 - noise_floor);
                *node.pending_adr = adr.observe(DeviceAddr(node.id), tx_cfg.sf, tx_cfg.power, snr);
            }
        }
        *self.store.node_mut(i).pending_weight = decision.piggyback;

        // Schedule the downlink attempt at the RX1 opening, with an RX2
        // fallback if the gateway turns out to be busy.
        let rx1_start = now + self.cfg.plan.rx1_delay;
        let rx1_channel = self.cfg.plan.rx1_channel(&uplink_channel);
        let ack_cfg = TxConfig::new(
            self.cfg.plan.rx1_sf(sf),
            rx1_channel.bandwidth,
            CodingRate::Cr4_5,
        )
        .with_power(Dbm(27.0));
        let ack_airtime = self.downlink_airtime(&ack_cfg, decision.downlink.phy_payload_len());
        // The node locks onto the ACK once its preamble completes; the
        // remaining symbols arrive while the window stays open, even
        // past the nominal close (a real Class-A receiver finishes an
        // in-progress reception).
        let preamble = blam_units::Duration::from_secs_f64(
            blam_lora_phy::symbol_duration_secs(ack_cfg.sf, ack_cfg.bw)
                * (f64::from(ack_cfg.preamble_symbols) + 4.25),
        );
        // RX2 runs on the plan's fixed channel/SF; the node detects the
        // preamble a few symbols in, within its window timeout.
        let rx2_start = now + self.cfg.plan.rx2_delay;
        let rx2_cfg = TxConfig::new(
            self.cfg.plan.rx2_sf,
            self.cfg.plan.rx2_channel.bandwidth,
            CodingRate::Cr4_5,
        )
        .with_power(Dbm(27.0));
        let rx2_airtime = self.downlink_airtime(&rx2_cfg, decision.downlink.phy_payload_len());
        let rx2_detect = blam_units::Duration::from_secs_f64(
            blam_lora_phy::symbol_duration_secs(rx2_cfg.sf, rx2_cfg.bw) * 5.0,
        );
        sim.schedule(
            rx1_start,
            Event::DownlinkStart {
                node: i,
                gateway: rx_gateway,
                end: rx1_start + ack_airtime,
                ack_at: rx1_start + preamble,
                epoch,
                fallback: Some((rx2_start, rx2_start + rx2_airtime, rx2_start + rx2_detect)),
            },
        );
    }

    /// The RX1 (or RX2) opening arrived: claim the gateway's half-duplex
    /// transmitter for the ACK, or fall back / give up.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_downlink_start(
        &mut self,
        sim: &mut Simulator<Event>,
        now: SimTime,
        i: usize,
        gateway: usize,
        end: SimTime,
        ack_at: SimTime,
        epoch: u64,
        fallback: Option<(SimTime, SimTime, SimTime)>,
    ) {
        // A gateway that goes down between the uplink and its receive
        // window cannot transmit the ACK.
        let down = self.faults.gateway_down_during(gateway, now, end);
        if down && self.telemetry_on() {
            self.emit(
                now,
                i,
                EventKind::FaultInjected {
                    fault: FaultKind::GatewayOutage,
                },
            );
        }
        if down || !self.gateways[gateway].downlink_available(now) {
            // Down, or busy ACKing someone else in RX1: retry in the
            // node's RX2 window; if that fails too the ACK is lost and
            // the node retransmits — the residual half-duplex cost of
            // ALOHA.
            if let Some((start, end2, ack2)) = fallback {
                sim.schedule(
                    start,
                    Event::DownlinkStart {
                        node: i,
                        gateway,
                        end: end2,
                        ack_at: ack2,
                        epoch,
                        fallback: None,
                    },
                );
            }
            return;
        }
        self.gateways[gateway].begin_downlink(now, end);
        sim.schedule(ack_at, Event::AckArrival { node: i, epoch });
    }

    /// Daily dissemination: the gateway pushes each node's normalized
    /// degradation (quantized to a byte) into the server's piggyback
    /// slots, to ride the next ACKs.
    pub(crate) fn on_dissemination(&mut self, sim: &mut Simulator<Event>, now: SimTime) {
        let LedgerMode::Local(ledger) = &mut self.ledger else {
            unreachable!(
                "dissemination events are not scheduled in deferred-ledger (sharded) engines"
            )
        };
        // With a staleness bound the ledger stops extrapolating the
        // degradation of nodes it has not heard from; unbounded (the
        // fault-free default) it ages every tracker to `now`.
        let normalized = ledger.compute_normalized_bounded(now, self.cfg.faults.ledger_staleness);
        for (id, byte) in normalized {
            self.server.set_piggyback(DeviceAddr(id), byte);
        }
        sim.schedule(now + self.cfg.dissemination_interval, Event::Dissemination);
    }
}
