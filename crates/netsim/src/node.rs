//! Per-node simulation state.

use blam::utility::Utility;
use blam::{BlamNode, CompressedSocTrace, SocSample};
use blam_battery::{Battery, PowerSwitch, Supercap, SwitchOutcome};
use blam_energy_harvest::{
    DiurnalPersistence, Forecaster, HarvestSource, NodeHarvest, NoisyOracle, Oracle,
};
use blam_lora_phy::{LinkBudget, RadioPowerModel, TxConfig};
use blam_lorawan::TransmissionId;
use blam_lorawan::ClassAMac;
use blam_units::{Duration, Joules, SimTime, Watts};

use crate::metrics::NodeMetrics;
use crate::topology::NodePlacement;

/// The green-energy forecaster variants a node can run.
#[derive(Debug, Clone)]
pub enum NodeForecaster {
    /// Time-of-day persistence over locally observed harvest.
    Persistence(DiurnalPersistence),
    /// Clairvoyant (ablation upper bound).
    Oracle(Oracle<NodeHarvest>),
    /// Clairvoyant with multiplicative log-normal error (ablation).
    Noisy(NoisyOracle<NodeHarvest>),
}

impl Forecaster for NodeForecaster {
    fn observe(&mut self, start: SimTime, window: Duration, energy: Joules) {
        match self {
            NodeForecaster::Persistence(f) => f.observe(start, window, energy),
            NodeForecaster::Oracle(f) => f.observe(start, window, energy),
            NodeForecaster::Noisy(f) => f.observe(start, window, energy),
        }
    }

    fn predict(&self, start: SimTime, window: Duration) -> Joules {
        match self {
            NodeForecaster::Persistence(f) => f.predict(start, window),
            NodeForecaster::Oracle(f) => f.predict(start, window),
            NodeForecaster::Noisy(f) => f.predict(start, window),
        }
    }
}

/// The in-flight packet of the current sampling period.
#[derive(Debug, Clone, Copy)]
pub struct PacketState {
    /// When the application generated the packet.
    pub generated_at: SimTime,
    /// The forecast window chosen for it.
    pub window: usize,
}

/// One simulated end device.
#[derive(Debug)]
pub struct SimNode {
    /// Node index (= device address).
    pub id: usize,
    /// Radio situation (serving-gateway link).
    pub placement: NodePlacement,
    /// Link budgets to every gateway, indexed by gateway id.
    pub gateway_links: Vec<LinkBudget>,
    /// Receptions in flight at the gateways: (exchange epoch, gateway,
    /// reception id, RSSI dBm). Epoch-tagged so a stale TxEnd (from an
    /// exchange aborted mid-airtime) cannot conclude a successor
    /// exchange's receptions early.
    pub inflight: Vec<(u64, usize, TransmissionId, f64)>,
    /// LoRaWAN Class-A MAC.
    pub mac: ClassAMac,
    /// BLAM protocol state (None for the LoRaWAN baseline).
    pub blam: Option<BlamNode>,
    /// The rechargeable battery.
    pub battery: Battery,
    /// Software-defined battery switch (θ-capped for BLAM).
    pub switch: PowerSwitch,
    /// Optional supercapacitor buffer in front of the battery.
    pub supercap: Option<Supercap>,
    /// Solar harvest source.
    pub harvest: NodeHarvest,
    /// Green-energy forecaster.
    pub forecaster: NodeForecaster,
    /// Sampling period τ.
    pub period: Duration,
    /// Forecast windows per period |T|.
    pub windows: usize,
    /// Radio electrical model.
    pub radio: RadioPowerModel,
    /// Baseline non-radio draw.
    pub mcu_sleep: Watts,
    /// Last energy-settlement instant.
    pub last_settle: SimTime,
    /// Start of the current sampling period (= last generation time).
    pub period_start: SimTime,
    /// Start of the previous period (for forecaster feedback and trace
    /// anchoring).
    pub prev_period_start: Option<SimTime>,
    /// The packet currently being handled.
    pub packet: Option<PacketState>,
    /// SoC sample after this period's transmission discharge.
    pub discharge_sample: Option<SocSample>,
    /// SoC sample at this period's last recharge.
    pub recharge_sample: Option<SocSample>,
    /// Pending normalized-degradation byte carried by the next ACK.
    pub pending_weight: Option<u8>,
    /// Pending ADR command carried by the next ACK.
    pub pending_adr: Option<blam_lorawan::AdrCommand>,
    /// Pending RX-deadline event (cancelled when the ACK wins).
    pub pending_deadline: Option<blam_des::EventId>,
    /// Previous period's compressed SoC trace, to piggyback on the next
    /// uplink (anchor time, trace).
    pub pending_trace: Option<(SimTime, CompressedSocTrace)>,
    /// PHY payload length of the uplink currently in flight.
    pub current_phy_len: usize,
    /// Channel of the uplink currently in flight.
    pub current_channel: blam_lora_phy::Channel,
    /// Monotone exchange counter guarding stale in-flight events: a
    /// TxEnd/ACK/deadline/retransmit event only applies if its epoch
    /// matches (the exchange it belonged to was not aborted).
    pub exchange_epoch: u64,
    /// Utility curve used for this node's metric accounting.
    pub utility: Utility,
    /// Metrics accumulator.
    pub metrics: NodeMetrics,
}

impl SimNode {
    /// The node's uplink radio configuration.
    #[must_use]
    pub fn tx_config(&self) -> TxConfig {
        self.mac.params().tx
    }

    /// Total baseline sleep draw (MCU + radio sleep).
    #[must_use]
    pub fn sleep_power(&self) -> Watts {
        self.mcu_sleep + self.radio.sleep_power_draw()
    }

    /// The forecast-window index of `at` within the current period
    /// (clamped to the last window).
    #[must_use]
    pub fn window_index(&self, at: SimTime, window: Duration) -> usize {
        let idx = (at.saturating_since(self.period_start) / window) as usize;
        idx.min(self.windows.saturating_sub(1))
    }

    /// Settles energy bookkeeping up to `now`: harvest since the last
    /// settlement and baseline sleep draw flow through the switch,
    /// together with `extra_demand` (a transmission or receive-window
    /// cost landing at `now`).
    ///
    /// Records the period's recharge sample whenever the battery
    /// charged, mirroring the hardware interrupt the paper uses to
    /// capture the last recharge transition.
    pub fn settle(
        &mut self,
        now: SimTime,
        extra_demand: Joules,
        forecast_window: Duration,
    ) -> SwitchOutcome {
        let from = self.last_settle;
        let mut harvested = if now > from {
            self.harvest.energy_between(from, now)
        } else {
            Joules::ZERO
        };
        let mut demand = self.sleep_power() * now.saturating_since(from) + extra_demand;
        // A supercapacitor buffer, when present, absorbs surplus and
        // serves demand before the battery is touched — shielding the
        // battery's rainflow record from shallow transmission cycles.
        if let Some(cap) = &mut self.supercap {
            cap.leak(now.saturating_since(from));
            let direct = harvested.min(demand);
            let mut surplus = harvested - direct;
            let mut shortfall = demand - direct;
            shortfall -= cap.discharge(shortfall);
            surplus -= cap.charge(surplus);
            harvested = direct + surplus;
            demand = direct + shortfall;
        }
        let out = self
            .switch
            .step(now, &mut self.battery, harvested, demand);
        self.last_settle = now;
        if out.charged.0 > 0.0 {
            let w = self.window_index(now, forecast_window) as u8;
            self.recharge_sample = Some(SocSample::new(w, self.battery.soc()));
        }
        if out.deficit.0 > 0.0 {
            self.metrics.brownout_events += 1;
        }
        out
    }
}
