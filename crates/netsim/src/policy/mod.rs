//! The MAC-protocol policy layer: the [`MacPolicy`] trait and the
//! protocol zoo implementing it.
//!
//! Every protocol decision the simulator makes — payload overhead,
//! charge threshold, forecast-window selection, SoC-trace bookkeeping,
//! ACK weight processing, estimator feedback, transmit gating — lives
//! behind the [`MacPolicy`] trait, implemented once per protocol:
//!
//! * [`AlohaPolicy`] (`aloha.rs`) — the LoRaWAN baseline: transmit
//!   immediately, charge without limit, learn nothing.
//! * [`BlamPolicy`] (`blam.rs`) — the paper's battery-lifespan-aware
//!   MAC, any H-θ variant.
//! * [`LongLivedPolicy`] (`long_lived.rs`) — Long-Lived LoRa
//!   (Fahmida et al.): per-node SF/duty-cycle allocation maximizing the
//!   minimum network lifetime.
//! * [`BatterylessPolicy`] (`batteryless.rs`) — the energy-aware
//!   battery-less scheduler (Capuzzo et al.): capacitor-threshold-gated
//!   transmissions with turn-off/turn-on hysteresis.
//!
//! The engine holds one policy per run and never branches on
//! [`Protocol`] itself; [`Protocol::policy`] below is the single
//! construction-site match, and [`Protocol::zoo`] is the registry the
//! cross-policy conformance battery iterates — both matches are
//! exhaustive, so adding a `Protocol` variant without wiring it into
//! the factory *and* the battery fails to compile.

mod aloha;
mod batteryless;
mod blam;
mod long_lived;

pub use aloha::AlohaPolicy;
pub use batteryless::{BatterylessConfig, BatterylessNodeState, BatterylessPolicy};
pub use blam::BlamPolicy;
pub use long_lived::{LongLivedConfig, LongLivedNodeState, LongLivedPolicy};

use ::blam::utility::Utility;
use ::blam::BlamNode;
use blam_lorawan::TxReport;
use blam_units::{Duration, Joules, SimTime};
use serde::{Deserialize, Serialize};

use crate::config::Protocol;
use crate::nodes::{NodeMut, PacketState};

/// The per-node protocol state a policy installs at build time.
#[derive(Debug, Clone)]
pub struct NodeProtocolState {
    /// The BLAM state machine (None for every non-BLAM policy).
    pub blam: Option<BlamNode>,
    /// The utility curve used for metric accounting.
    pub utility: Utility,
    /// Policy-private per-node state (checkpointed with the node).
    pub policy: PolicyState,
}

/// Serializable policy-private per-node state, stored in the node
/// store's cold arena and captured by every checkpoint. Policies whose
/// state lives elsewhere (ALOHA: none; BLAM: [`BlamNode`]) use
/// [`PolicyState::Stateless`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum PolicyState {
    /// No policy-private state.
    #[default]
    Stateless,
    /// [`LongLivedPolicy`] wear tracking and duty-cycle throttle.
    LongLived(LongLivedNodeState),
    /// [`BatterylessPolicy`] hysteresis power latch.
    Batteryless(BatterylessNodeState),
}

/// A policy's verdict for a freshly generated packet: the chosen
/// forecast window plus the diagnostics telemetry reports with it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowDecision {
    /// The forecast window to transmit in.
    pub window: usize,
    /// The objective value γ of the choice (0 for ALOHA).
    pub objective: f64,
    /// Utility lost by deferring, `1 − U(window)` (0 for ALOHA).
    pub utility_loss: f64,
    /// Degradation impact factor of the choice (0 for ALOHA).
    pub dif: f64,
    /// True when the decision came from the cold-start degradation
    /// ladder (forecaster wiped by a reboot), not Algorithm 1.
    pub fallback: bool,
    /// Trust in the disseminated `w_u` that informed the decision
    /// (1 within its TTL, decaying toward 0 past it; always 1 when no
    /// TTL is configured and for ALOHA).
    pub wu_trust: f64,
}

impl WindowDecision {
    /// The decision ALOHA always makes: transmit immediately.
    #[must_use]
    pub fn immediate() -> Self {
        WindowDecision {
            window: 0,
            objective: 0.0,
            utility_loss: 0.0,
            dif: 0.0,
            fallback: false,
            wu_trust: 1.0,
        }
    }
}

/// The protocol-specific decision points of a simulation run.
///
/// Methods receive the node they act on; the engine calls them at fixed
/// points of the per-node lifecycle (see `nodes.rs`). Implementations
/// must be deterministic — any randomness belongs to the engine's named
/// RNG streams, not the policy.
pub trait MacPolicy: Send + Sync {
    /// A short label for tables ("LoRaWAN", "H-50", "H-50C", …).
    fn label(&self) -> String;

    /// The charge threshold θ in effect (1 for unrestricted charging).
    fn theta(&self) -> f64;

    /// Extra uplink payload bytes the protocol piggybacks (the 4-byte
    /// compressed SoC trace for BLAM, nothing for LoRaWAN).
    fn payload_overhead(&self) -> usize;

    /// Validates protocol parameters against the scenario.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent combinations.
    fn validate(&self, scenario_window: Duration) {
        let _ = scenario_window;
    }

    /// Builds the per-node protocol state at network-construction time.
    fn node_state(
        &self,
        tx_energy: Joules,
        max_tx_energy: Joules,
        windows: usize,
    ) -> NodeProtocolState;

    /// One-time commissioning pass over a freshly built node, run by
    /// `build_nodes` after the node is in the store. This is where a
    /// policy reallocates radio parameters (Long-Lived LoRa's SF
    /// assignment) before the first event fires. Must not draw
    /// randomness. Default: no-op.
    fn on_commission(&self, node: &mut NodeMut<'_>) {
        let _ = node;
    }

    /// Folds the finished sampling period into protocol state when the
    /// next packet is generated: compresses the period's SoC trace for
    /// piggybacking and feeds the forecaster what actually arrived.
    /// Called before the node's period bookkeeping rolls over.
    fn on_period_rollover(&self, node: &mut NodeMut<'_>, now: SimTime, window: Duration);

    /// Chooses the forecast window for a freshly generated packet.
    /// `Some(decision)` transmits in `decision.window`; `None` drops
    /// the packet (Algorithm 1 FAIL).
    fn select_window(
        &self,
        node: &mut NodeMut<'_>,
        now: SimTime,
        window: Duration,
    ) -> Option<WindowDecision>;

    /// Last-instant transmit gate, polled at the same timestamp the
    /// radio would key up (first attempt and every retransmission,
    /// after energy settlement). `false` drops the attempt: the first
    /// attempt is accounted a brownout drop, a retransmission aborts
    /// the exchange. This is the seam the battery-less capacitor
    /// threshold enforces its "never transmit below `off_soc`"
    /// guarantee through. Default: always clear.
    fn clear_to_send(&self, node: &mut NodeMut<'_>, now: SimTime, required: Joules) -> bool {
        let _ = (node, now, required);
        true
    }

    /// Processes the normalized-degradation weight byte carried by an
    /// ACK downlink.
    fn on_ack_weight(&self, node: &mut NodeMut<'_>, byte: u8);

    /// A power cycle wiped the node's volatile state (see
    /// `Engine::reboot_wipe` for what the engine itself clears). A
    /// policy resets whatever of its private state lives in RAM.
    /// Default: no-op.
    fn on_reboot(&self, node: &mut NodeMut<'_>) {
        let _ = node;
    }

    /// Feeds the concluded exchange back into the protocol estimators.
    fn on_exchange_complete(
        &self,
        node: &mut NodeMut<'_>,
        packet: Option<PacketState>,
        report: &TxReport,
    );
}

impl Protocol {
    /// The [`MacPolicy`] implementation for this protocol variant — the
    /// single construction site dispatching on the enum; everything
    /// downstream of here talks to the trait.
    #[must_use]
    pub fn policy(&self) -> Box<dyn MacPolicy> {
        match self {
            Protocol::Lorawan => Box::new(AlohaPolicy),
            Protocol::Blam(cfg) => Box::new(BlamPolicy::new(cfg.clone())),
            Protocol::LongLived(cfg) => Box::new(LongLivedPolicy::new(cfg.clone())),
            Protocol::Batteryless(cfg) => Box::new(BatterylessPolicy::new(cfg.clone())),
        }
    }

    /// The registered protocol zoo: one representative configuration
    /// per [`Protocol`] variant, in stable roster order. This is the
    /// roster the cross-policy conformance battery
    /// (`tests/policy_conformance.rs`), the CLI `compare` default and
    /// the `check.sh` zoo smoke iterate.
    #[must_use]
    pub fn zoo() -> Vec<Protocol> {
        let roster = vec![
            Protocol::Lorawan,
            Protocol::h(0.5),
            Protocol::long_lived(),
            Protocol::batteryless(),
        ];
        // Exhaustive registry witness (no wildcard arm): adding a
        // `Protocol` variant without deciding its zoo representative
        // fails to compile here, which is what keeps the conformance
        // battery covering every policy.
        for p in &roster {
            match p {
                Protocol::Lorawan
                | Protocol::Blam(_)
                | Protocol::LongLived(_)
                | Protocol::Batteryless(_) => {}
            }
        }
        roster
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ::blam::{BlamConfig, CompressedSocTrace};

    #[test]
    fn aloha_is_the_lorawan_baseline() {
        let p = AlohaPolicy;
        assert_eq!(p.label(), "LoRaWAN");
        assert_eq!(p.theta(), 1.0);
        assert_eq!(p.payload_overhead(), 0);
        let state = p.node_state(Joules(0.04), Joules(0.08), 10);
        assert!(state.blam.is_none());
        assert_eq!(state.utility, Utility::Linear);
        assert_eq!(state.policy, PolicyState::Stateless);
    }

    #[test]
    fn blam_policy_reflects_its_config() {
        let p = BlamPolicy::new(BlamConfig::h(0.5));
        assert_eq!(p.label(), "H-50");
        assert_eq!(p.theta(), 0.5);
        assert_eq!(p.payload_overhead(), CompressedSocTrace::ENCODED_LEN);
        let state = p.node_state(Joules(0.04), Joules(0.08), 10);
        assert!(state.blam.is_some());
        assert_eq!(state.policy, PolicyState::Stateless);
    }

    #[test]
    fn immediate_decision_is_free() {
        let d = WindowDecision::immediate();
        assert_eq!(d.window, 0);
        assert_eq!(d.objective, 0.0);
        assert_eq!(d.utility_loss, 0.0);
        assert_eq!(d.dif, 0.0);
        assert!(!d.fallback);
        assert_eq!(d.wu_trust, 1.0);
    }

    #[test]
    fn protocol_factory_dispatches() {
        assert_eq!(Protocol::Lorawan.policy().label(), "LoRaWAN");
        assert_eq!(Protocol::h(0.05).policy().label(), "H-5");
        assert_eq!(Protocol::h50c().policy().label(), "H-50C");
        assert_eq!(Protocol::long_lived().policy().label(), "LongLived");
        assert_eq!(Protocol::batteryless().policy().label(), "Batteryless");
    }

    #[test]
    fn zoo_covers_every_variant_once() {
        let zoo = Protocol::zoo();
        assert_eq!(zoo.len(), 4);
        let labels: Vec<String> = zoo.iter().map(Protocol::label).collect();
        assert_eq!(labels, ["LoRaWAN", "H-50", "LongLived", "Batteryless"]);
        // Every roster entry validates against its default scenario.
        for p in zoo {
            crate::config::ScenarioConfig::large_scale(4, p, 1).validate();
        }
    }

    #[test]
    #[should_panic(expected = "must match ScenarioConfig.forecast_window")]
    fn blam_validate_rejects_window_mismatch() {
        BlamPolicy::new(BlamConfig::h(0.5)).validate(Duration::from_mins(2));
    }
}
