//! The paper's battery-lifespan-aware MAC policy (any H-θ variant).

use blam::{BlamConfig, BlamNode, CompressedSocTrace};
use blam_energy_harvest::{Forecaster, HarvestSource};
use blam_lorawan::TxReport;
use blam_units::{Duration, Joules, SimTime};

use super::{MacPolicy, NodeProtocolState, PolicyState, WindowDecision};
use crate::nodes::{NodeForecaster, NodeMut, PacketState};

/// Folds the finished period's SoC transitions into a 4-byte
/// compressed trace queued for the next uplink. The very first period
/// has no predecessor to report. Shared by every trace-piggybacking
/// policy (BLAM, Long-Lived LoRa).
pub(super) fn fold_period_trace(node: &mut NodeMut<'_>, trace_buffer: usize) {
    let prev_start = *node.period_start;
    if node.prev_period_start.is_some() || node.metrics.generated > 1 {
        let trace = match (*node.discharge_sample, *node.recharge_sample) {
            (Some(d), Some(r)) => Some(CompressedSocTrace {
                discharge: d,
                recharge: r,
            }),
            (Some(d), None) => Some(CompressedSocTrace {
                discharge: d,
                recharge: d,
            }),
            (None, Some(r)) => Some(CompressedSocTrace {
                discharge: r,
                recharge: r,
            }),
            (None, None) => None,
        };
        if let Some(t) = trace {
            // Depth 1 reproduces the paper's overwrite-with-newest
            // semantics; deeper queues keep older undelivered
            // traces so a node cut off by an outage or burst can
            // backfill the ledger once an exchange succeeds again.
            if trace_buffer <= 1 {
                node.trace_queue.clear();
            }
            node.trace_queue.push_back((prev_start, t));
            while node.trace_queue.len() > trace_buffer.max(1) {
                node.trace_queue.pop_front();
            }
        }
    }
}

/// Feeds the persistence forecaster the harvest that actually arrived
/// over the finished period's windows. The oracle variants already
/// know the trace. Shared by every forecast-driven policy.
pub(super) fn feed_persistence_forecaster(node: &mut NodeMut<'_>, now: SimTime, window: Duration) {
    if matches!(node.forecaster, NodeForecaster::Persistence(_)) {
        let prev_start = *node.period_start;
        for w in 0..*node.windows {
            let start = prev_start + window * w as u64;
            if start + window <= now {
                let e = node.harvest.energy_between(start, start + window);
                node.forecaster.observe(start, window, e);
            }
        }
    }
}

/// The paper's battery-lifespan-aware MAC (any H-θ variant): θ-capped
/// charging, Algorithm 1 window selection over green-energy forecasts,
/// compressed SoC traces piggybacked uplink, disseminated degradation
/// weights applied from ACKs, and EWMA estimator feedback.
#[derive(Debug, Clone)]
pub struct BlamPolicy {
    cfg: BlamConfig,
}

impl BlamPolicy {
    /// Wraps a BLAM configuration as a policy.
    #[must_use]
    pub fn new(cfg: BlamConfig) -> Self {
        BlamPolicy { cfg }
    }

    /// The underlying BLAM configuration.
    #[must_use]
    pub fn config(&self) -> &BlamConfig {
        &self.cfg
    }
}

impl MacPolicy for BlamPolicy {
    fn label(&self) -> String {
        let theta = (self.cfg.theta * 100.0).round() as u32;
        if self.cfg.use_window_selection {
            format!("H-{theta}")
        } else {
            format!("H-{theta}C")
        }
    }

    fn theta(&self) -> f64 {
        self.cfg.theta
    }

    fn payload_overhead(&self) -> usize {
        CompressedSocTrace::ENCODED_LEN
    }

    fn validate(&self, scenario_window: Duration) {
        assert!(
            self.cfg.forecast_window == scenario_window,
            "BlamConfig.forecast_window ({}) must match ScenarioConfig.forecast_window ({}) — \
             the simulator plans, observes and anchors SoC traces on the scenario's window",
            self.cfg.forecast_window,
            scenario_window
        );
    }

    fn node_state(
        &self,
        tx_energy: Joules,
        max_tx_energy: Joules,
        windows: usize,
    ) -> NodeProtocolState {
        NodeProtocolState {
            blam: Some(BlamNode::new(
                self.cfg.clone(),
                tx_energy,
                max_tx_energy,
                windows,
            )),
            utility: self.cfg.utility,
            policy: PolicyState::Stateless,
        }
    }

    fn on_period_rollover(&self, node: &mut NodeMut<'_>, now: SimTime, window: Duration) {
        fold_period_trace(node, self.cfg.trace_buffer);
        feed_persistence_forecaster(node, now, window);
    }

    fn select_window(
        &self,
        node: &mut NodeMut<'_>,
        now: SimTime,
        window: Duration,
    ) -> Option<WindowDecision> {
        // Cold start after a reboot: the forecaster has no history to
        // rank windows with, so degrade gracefully to the immediate
        // window (exactly LoRaWAN's choice) for this packet rather
        // than planning on an all-zero forecast.
        if *node.cold_start {
            *node.cold_start = false;
            return Some(WindowDecision {
                fallback: true,
                ..WindowDecision::immediate()
            });
        }
        let windows = *node.windows;
        // Reused scratch: select_window runs once per node per period,
        // so the forecast and the Eq. (14) estimates land in the node's
        // rows of the store's flat matrices (sized |T| at build time)
        // instead of fresh allocations.
        debug_assert_eq!(node.forecast_scratch.len(), windows);
        for w in 0..windows {
            node.forecast_scratch[w] = node.forecaster.predict(now + window * w as u64, window);
        }
        let battery = node.battery.stored();
        // Stale w_u decays toward the neutral weight: full trust inside
        // the TTL, then linear decay to zero over one further TTL.
        let trust = match (self.cfg.wu_ttl, *node.weight_updated_at) {
            (Some(ttl), Some(at)) => {
                let age = now.saturating_since(at);
                if age <= ttl {
                    1.0
                } else {
                    (1.0 - age.saturating_sub(ttl).as_secs_f64() / ttl.as_secs_f64()).max(0.0)
                }
            }
            _ => 1.0,
        };
        let blam = node
            .blam
            .as_mut()
            .expect("BlamPolicy installs BLAM state on every node");
        blam.set_weight_trust(trust);
        blam.plan_into(battery, node.forecast_scratch, node.plan_scratch)
            .map(|p| WindowDecision {
                window: p.window,
                objective: p.objective,
                utility_loss: p.utility_loss,
                dif: p.dif,
                fallback: false,
                wu_trust: trust,
            })
    }

    fn on_ack_weight(&self, node: &mut NodeMut<'_>, byte: u8) {
        if let Some(blam) = node.blam.as_mut() {
            blam.on_weight_update(byte);
        }
    }

    fn on_exchange_complete(
        &self,
        node: &mut NodeMut<'_>,
        packet: Option<PacketState>,
        report: &TxReport,
    ) {
        if let (Some(blam), Some(p)) = (node.blam.as_mut(), packet) {
            let tx_electrical =
                node.radio.tx_power_draw(node.mac.params().tx.power) * report.total_airtime;
            blam.on_exchange_complete(p.window, report.transmissions.max(1), tx_electrical);
        }
    }
}
