//! The energy-aware battery-less scheduler (Capuzzo, Delgado, Famaey,
//! Zanella, PAPERS.md): capacitor-threshold-gated transmission over
//! green-energy forecasts, with turn-off/turn-on hysteresis.
//!
//! A battery-less LoRaWAN device runs off a capacitor: it turns off
//! when the stored energy falls below a cut-off threshold and may only
//! resume once recharged past a strictly higher turn-on threshold
//! (hysteresis, so the device doesn't flap around the cut-off). Mapped
//! onto this simulator's storage substrate, the node's storage — the
//! battery column, optionally buffered by the existing supercapacitor
//! substrate — plays the capacitor, and the thresholds are fractions
//! of its state of charge:
//!
//! * [`MacPolicy::select_window`] schedules around the harvest
//!   forecast: a powered node transmits immediately; an unpowered one
//!   books the earliest forecast window whose cumulative predicted
//!   harvest lifts it past the turn-on threshold, and drops the packet
//!   when no window in the period can.
//! * [`MacPolicy::clear_to_send`] re-checks the hysteresis latch at
//!   the instant the radio would key up (first attempt and every
//!   retransmission). This is what makes the conformance battery's
//!   shape check — *no transmission ever starts below
//!   [`BatterylessConfig::off_soc`]* — hold by construction: the SoC
//!   telemetry records at the same timestamp the gate fires.

use blam::utility::Utility;
use blam_lorawan::TxReport;
use blam_units::{Duration, Joules, SimTime};
use serde::{Deserialize, Serialize};

use super::blam::feed_persistence_forecaster;
use super::{MacPolicy, NodeProtocolState, PolicyState, WindowDecision};
use crate::nodes::{NodeMut, PacketState};
use blam_energy_harvest::Forecaster;

/// Configuration of [`BatterylessPolicy`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatterylessConfig {
    /// Turn-off threshold: the storage SoC below which the node is
    /// unpowered and no transmission may start.
    pub off_soc: f64,
    /// Turn-on threshold: the SoC an unpowered node must recharge to
    /// before transmitting again. Strictly above `off_soc` —
    /// the hysteresis band that keeps the device from flapping.
    pub on_soc: f64,
}

impl Default for BatterylessConfig {
    fn default() -> Self {
        BatterylessConfig {
            off_soc: 0.30,
            on_soc: 0.45,
        }
    }
}

impl BatterylessConfig {
    /// Advances the turn-off/turn-on hysteresis latch for a measured
    /// SoC and reports whether the node is powered. After this
    /// returns `true`, `soc >= off_soc` holds by construction.
    pub fn latch(&self, soc: f64, state: &mut BatterylessNodeState) -> bool {
        if state.powered {
            if soc < self.off_soc {
                state.powered = false;
            }
        } else if soc >= self.on_soc {
            state.powered = true;
        }
        state.powered
    }
}

/// Per-node [`BatterylessPolicy`] state (checkpointed with the node).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct BatterylessNodeState {
    /// The hysteresis latch: whether the node is currently powered.
    /// Starts `false` — a battery-less device boots unpowered and must
    /// first charge past the turn-on threshold.
    pub powered: bool,
}

/// The battery-less scheduler: capacitor-threshold-gated transmissions
/// with hysteresis (see the module docs).
#[derive(Debug, Clone)]
pub struct BatterylessPolicy {
    cfg: BatterylessConfig,
}

impl BatterylessPolicy {
    /// Wraps a battery-less scheduler configuration as a policy.
    #[must_use]
    pub fn new(cfg: BatterylessConfig) -> Self {
        BatterylessPolicy { cfg }
    }

    /// The underlying configuration.
    #[must_use]
    pub fn config(&self) -> &BatterylessConfig {
        &self.cfg
    }
}

fn state_mut<'a>(node: &'a mut NodeMut<'_>) -> &'a mut BatterylessNodeState {
    match node.policy_state {
        PolicyState::Batteryless(s) => s,
        // analyzer: allow(panic-hygiene, reason = "node_state() installs this variant on every node at build; a mismatch is an engine wiring bug, same contract as BlamPolicy's state expect")
        _ => panic!("BatterylessPolicy installs Batteryless state on every node"),
    }
}

impl MacPolicy for BatterylessPolicy {
    fn label(&self) -> String {
        "Batteryless".to_string()
    }

    fn theta(&self) -> f64 {
        1.0
    }

    fn payload_overhead(&self) -> usize {
        0
    }

    fn validate(&self, _scenario_window: Duration) {
        assert!(
            self.cfg.off_soc > 0.0,
            "BatterylessConfig.off_soc must be positive"
        );
        assert!(
            self.cfg.on_soc > self.cfg.off_soc,
            "BatterylessConfig.on_soc must lie strictly above off_soc — \
             equal thresholds lose the hysteresis band and flap at the cut-off"
        );
        assert!(
            self.cfg.on_soc <= 1.0,
            "BatterylessConfig.on_soc must not exceed 1"
        );
    }

    fn node_state(
        &self,
        _tx_energy: Joules,
        _max_tx_energy: Joules,
        _windows: usize,
    ) -> NodeProtocolState {
        NodeProtocolState {
            blam: None,
            utility: Utility::Linear,
            policy: PolicyState::Batteryless(BatterylessNodeState::default()),
        }
    }

    fn on_period_rollover(&self, node: &mut NodeMut<'_>, now: SimTime, window: Duration) {
        feed_persistence_forecaster(node, now, window);
    }

    fn select_window(
        &self,
        node: &mut NodeMut<'_>,
        now: SimTime,
        window: Duration,
    ) -> Option<WindowDecision> {
        // A reboot changes nothing for a battery-less device — it is
        // *always* one brownout away from a cold boot — but the flag
        // must be consumed like every policy does.
        *node.cold_start = false;
        let soc = node.battery.soc();
        let powered = self.cfg.latch(soc, state_mut(node));
        let windows = *node.windows;
        if powered {
            // Powered: transmit immediately; clear_to_send re-checks
            // the latch at the actual transmit instant.
            return Some(WindowDecision {
                objective: soc,
                ..WindowDecision::immediate()
            });
        }
        // Unpowered: book the earliest window whose cumulative
        // predicted harvest lifts the store past the turn-on
        // threshold. Optimistic on purpose (sleep draw is ignored) —
        // the transmit-instant gate drops the attempt if the charge
        // didn't materialize.
        debug_assert_eq!(node.forecast_scratch.len(), windows);
        for w in 0..windows {
            node.forecast_scratch[w] = node.forecaster.predict(now + window * w as u64, window);
        }
        let target = self.cfg.on_soc * node.battery.max_capacity().0;
        let mut predicted = node.battery.stored().0;
        for w in 0..windows {
            predicted += node.forecast_scratch[w].0;
            if predicted >= target {
                return Some(WindowDecision {
                    window: w,
                    objective: predicted,
                    utility_loss: 1.0 - node.utility.at(w, windows),
                    dif: 0.0,
                    fallback: false,
                    wu_trust: 1.0,
                });
            }
        }
        // No window in this period can recharge the device: drop.
        None
    }

    fn clear_to_send(&self, node: &mut NodeMut<'_>, _now: SimTime, required: Joules) -> bool {
        // The gate runs at the same timestamp the TxAttempt telemetry
        // samples the SoC, right after settlement: a `true` here
        // *is* the shape-check guarantee that no transmission starts
        // below the cut-off threshold.
        let soc = node.battery.soc();
        let powered = self.cfg.latch(soc, state_mut(node));
        powered && node.battery.stored() >= required
    }

    fn on_ack_weight(&self, _node: &mut NodeMut<'_>, _byte: u8) {}

    fn on_reboot(&self, node: &mut NodeMut<'_>) {
        // The latch is RAM: a power cycle boots unpowered.
        state_mut(node).powered = false;
    }

    fn on_exchange_complete(
        &self,
        _node: &mut NodeMut<'_>,
        _packet: Option<PacketState>,
        _report: &TxReport,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        BatterylessPolicy::new(BatterylessConfig::default()).validate(Duration::from_mins(1));
    }

    #[test]
    fn hysteresis_latch_turns_on_above_on_and_off_below_off() {
        let cfg = BatterylessConfig::default();
        let mut state = BatterylessNodeState::default();
        // Boots unpowered; between the thresholds it stays unpowered.
        assert!(!cfg.latch(0.40, &mut state));
        // Crosses the turn-on threshold.
        assert!(cfg.latch(0.45, &mut state));
        // Inside the hysteresis band a powered node stays powered…
        assert!(cfg.latch(0.35, &mut state));
        // …until it crosses the cut-off.
        assert!(!cfg.latch(0.29, &mut state));
        // And must climb back past on_soc, not just off_soc.
        assert!(!cfg.latch(0.40, &mut state));
        assert!(cfg.latch(0.50, &mut state));
    }

    #[test]
    fn powered_latch_implies_soc_at_or_above_cutoff() {
        let cfg = BatterylessConfig::default();
        let mut state = BatterylessNodeState { powered: true };
        for soc in [0.0, 0.1, 0.29, 0.30, 0.31, 0.45, 1.0] {
            let powered = cfg.latch(soc, &mut state);
            assert!(
                !powered || soc >= cfg.off_soc,
                "latch reported powered at soc {soc}"
            );
            state.powered = true;
        }
    }

    #[test]
    #[should_panic(expected = "on_soc must lie strictly above off_soc")]
    fn validate_rejects_collapsed_hysteresis() {
        let cfg = BatterylessConfig {
            off_soc: 0.4,
            on_soc: 0.4,
        };
        BatterylessPolicy::new(cfg).validate(Duration::from_mins(1));
    }
}
