//! Long-Lived LoRa (Fahmida et al., PAPERS.md): per-node SF and
//! duty-cycle allocation that maximizes the *minimum* network
//! lifetime.
//!
//! The original work solves a joint SF/transmit-power/rate allocation
//! so the most-stressed node — the one that would die first — is
//! relieved until no reallocation helps. Mapped onto this simulator's
//! battery-degradation substrate, the policy pulls three levers:
//!
//! 1. **Commission-time SF reallocation** ([`MacPolicy::on_commission`]):
//!    each node re-derives its spreading factor from its own link
//!    budget with a tighter margin than the scenario's static
//!    assignment, and adopts it only when it is *faster* — shorter
//!    airtime, strictly less energy per attempt than the baseline, on
//!    hardware provisioned for the conservative static plan.
//! 2. **Wear-aware duty-cycle throttling**: nodes learn their
//!    fleet-normalized wear `w_u` from the gateway's degradation
//!    ledger (the same 4-byte SoC-trace piggyback + ACK dissemination
//!    path BLAM uses). A node whose wear is above
//!    [`LongLivedConfig::wear_threshold`] — by construction the
//!    network's lifetime bottleneck — skips every
//!    [`LongLivedConfig::skip_stride`]-th packet, trading a bounded
//!    amount of its traffic for cycle life.
//! 3. **Harvest-aligned windows**: packets transmit in the forecast
//!    window with the most predicted green energy, so the transmission
//!    draw is replenished immediately and battery cycles stay shallow.
//!
//! Charging stays unrestricted (θ = 1): unlike BLAM, Long-Lived LoRa
//! manages *load*, not state of charge.

use blam::dissemination::dequantize_weight;
use blam::utility::Utility;
use blam::CompressedSocTrace;
use blam_energy_harvest::Forecaster;
use blam_lora_phy::link::sf_for_link;
use blam_lora_phy::Bandwidth;
use blam_lorawan::TxReport;
use blam_units::{Db, Duration, Joules, SimTime};
use serde::{Deserialize, Serialize};

use super::blam::{feed_persistence_forecaster, fold_period_trace};
use super::{MacPolicy, NodeProtocolState, PolicyState, WindowDecision};
use crate::nodes::{NodeMut, PacketState};

/// Configuration of [`LongLivedPolicy`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LongLivedConfig {
    /// Link margin (dB) for the commission-time SF reallocation.
    /// Tighter than the scenario's `sf_margin`, trading static
    /// headroom for airtime; the shadowing realization is already in
    /// the link budget, so any SF this margin admits still closes.
    pub sf_margin: Db,
    /// Fleet-normalized wear `w_u` at or above which a node starts
    /// throttling its duty cycle. The ledger normalizes by the
    /// most-worn node, so the network's lifetime bottleneck always
    /// sits at 1.0 and is always throttled.
    pub wear_threshold: f64,
    /// A throttled node skips one packet out of every `skip_stride`
    /// (≥ 2, so a bottleneck node never falls silent).
    pub skip_stride: u32,
}

impl Default for LongLivedConfig {
    fn default() -> Self {
        LongLivedConfig {
            sf_margin: Db(6.0),
            wear_threshold: 0.95,
            skip_stride: 4,
        }
    }
}

/// Per-node [`LongLivedPolicy`] state (checkpointed with the node).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct LongLivedNodeState {
    /// Last disseminated fleet-normalized wear `w_u` (0 until the
    /// first ACK carries one; wiped by a reboot).
    pub wear: f64,
    /// Position within the current skip stride.
    pub stride_phase: u32,
}

/// Long-Lived LoRa: min-lifetime-maximizing SF/duty-cycle allocation
/// (see the module docs for the mapping onto this simulator).
#[derive(Debug, Clone)]
pub struct LongLivedPolicy {
    cfg: LongLivedConfig,
}

impl LongLivedPolicy {
    /// Wraps a Long-Lived LoRa configuration as a policy.
    #[must_use]
    pub fn new(cfg: LongLivedConfig) -> Self {
        LongLivedPolicy { cfg }
    }

    /// The underlying configuration.
    #[must_use]
    pub fn config(&self) -> &LongLivedConfig {
        &self.cfg
    }
}

fn state_mut<'a>(node: &'a mut NodeMut<'_>) -> &'a mut LongLivedNodeState {
    match node.policy_state {
        PolicyState::LongLived(s) => s,
        // analyzer: allow(panic-hygiene, reason = "node_state() installs this variant on every node at build; a mismatch is an engine wiring bug, same contract as BlamPolicy's state expect")
        _ => panic!("LongLivedPolicy installs LongLived state on every node"),
    }
}

impl MacPolicy for LongLivedPolicy {
    fn label(&self) -> String {
        "LongLived".to_string()
    }

    fn theta(&self) -> f64 {
        1.0
    }

    fn payload_overhead(&self) -> usize {
        // Rides the same gateway degradation ledger as BLAM: the wear
        // ranking the throttle needs is computed from piggybacked
        // compressed SoC traces.
        CompressedSocTrace::ENCODED_LEN
    }

    fn validate(&self, _scenario_window: Duration) {
        assert!(
            self.cfg.sf_margin.0 >= 0.0,
            "LongLivedConfig.sf_margin must be non-negative"
        );
        assert!(
            self.cfg.wear_threshold > 0.0 && self.cfg.wear_threshold <= 1.0,
            "LongLivedConfig.wear_threshold must be in (0, 1]"
        );
        assert!(
            self.cfg.skip_stride >= 2,
            "LongLivedConfig.skip_stride must be at least 2 — \
             a stride of 1 would silence the throttled node entirely"
        );
    }

    fn node_state(
        &self,
        _tx_energy: Joules,
        _max_tx_energy: Joules,
        _windows: usize,
    ) -> NodeProtocolState {
        NodeProtocolState {
            blam: None,
            utility: Utility::Linear,
            policy: PolicyState::LongLived(LongLivedNodeState::default()),
        }
    }

    fn on_commission(&self, node: &mut NodeMut<'_>) {
        // Re-derive the SF from this node's own link budget with the
        // policy margin, and adopt it only when strictly faster than
        // the static assignment: per-attempt energy can only drop.
        // Battery and panel were sized for the static SF — the slack
        // becomes lifetime.
        let tx = node.tx_config();
        let current = node.placement.sf;
        if let Some(sf) = sf_for_link(
            &node.placement.link,
            tx.power,
            Bandwidth::Khz125,
            self.cfg.sf_margin,
        ) {
            if sf.as_u8() < current.as_u8() {
                node.mac.set_tx_config(tx.with_sf(sf));
                node.placement.sf = sf;
            }
        }
    }

    fn on_period_rollover(&self, node: &mut NodeMut<'_>, now: SimTime, window: Duration) {
        fold_period_trace(node, 1);
        feed_persistence_forecaster(node, now, window);
    }

    fn select_window(
        &self,
        node: &mut NodeMut<'_>,
        now: SimTime,
        window: Duration,
    ) -> Option<WindowDecision> {
        // Cold start after a reboot: no forecast history — transmit
        // immediately, exactly like the baseline.
        if *node.cold_start {
            *node.cold_start = false;
            return Some(WindowDecision {
                fallback: true,
                ..WindowDecision::immediate()
            });
        }
        // Wear throttle: the fleet's most-worn nodes trade one packet
        // per stride for cycle life. The stride phase advances only
        // while throttled, so a recovered node resumes full rate.
        {
            let threshold = self.cfg.wear_threshold;
            let stride = self.cfg.skip_stride;
            let state = state_mut(node);
            if state.wear >= threshold {
                state.stride_phase += 1;
                if state.stride_phase >= stride {
                    state.stride_phase = 0;
                    return None;
                }
            } else {
                state.stride_phase = 0;
            }
        }
        // Harvest-aligned window: transmit where the forecast puts the
        // most green energy (earliest such window on ties), so the
        // battery sees the shallowest possible cycle.
        let windows = *node.windows;
        debug_assert_eq!(node.forecast_scratch.len(), windows);
        for w in 0..windows {
            node.forecast_scratch[w] = node.forecaster.predict(now + window * w as u64, window);
        }
        let mut best = 0;
        for w in 1..windows {
            if node.forecast_scratch[w] > node.forecast_scratch[best] {
                best = w;
            }
        }
        Some(WindowDecision {
            window: best,
            objective: node.forecast_scratch[best].0,
            utility_loss: 1.0 - node.utility.at(best, windows),
            dif: 0.0,
            fallback: false,
            wu_trust: 1.0,
        })
    }

    fn on_ack_weight(&self, node: &mut NodeMut<'_>, byte: u8) {
        state_mut(node).wear = dequantize_weight(byte);
    }

    fn on_reboot(&self, node: &mut NodeMut<'_>) {
        // The wear byte and stride phase live in RAM; a power cycle
        // loses both (the next dissemination restores the wear).
        *state_mut(node) = LongLivedNodeState::default();
    }

    fn on_exchange_complete(
        &self,
        _node: &mut NodeMut<'_>,
        _packet: Option<PacketState>,
        _report: &TxReport,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        LongLivedPolicy::new(LongLivedConfig::default()).validate(Duration::from_mins(1));
    }

    #[test]
    fn label_and_overhead() {
        let p = LongLivedPolicy::new(LongLivedConfig::default());
        assert_eq!(p.label(), "LongLived");
        assert_eq!(p.theta(), 1.0);
        assert_eq!(p.payload_overhead(), CompressedSocTrace::ENCODED_LEN);
        let state = p.node_state(Joules(0.04), Joules(0.08), 10);
        assert!(state.blam.is_none());
        assert_eq!(
            state.policy,
            PolicyState::LongLived(LongLivedNodeState::default())
        );
    }

    #[test]
    #[should_panic(expected = "skip_stride must be at least 2")]
    fn validate_rejects_silencing_stride() {
        let cfg = LongLivedConfig {
            skip_stride: 1,
            ..LongLivedConfig::default()
        };
        LongLivedPolicy::new(cfg).validate(Duration::from_mins(1));
    }

    #[test]
    #[should_panic(expected = "wear_threshold must be in (0, 1]")]
    fn validate_rejects_bad_threshold() {
        let cfg = LongLivedConfig {
            wear_threshold: 0.0,
            ..LongLivedConfig::default()
        };
        LongLivedPolicy::new(cfg).validate(Duration::from_mins(1));
    }
}
