//! The LoRaWAN baseline policy: pure ALOHA.

use blam::utility::Utility;
use blam_lorawan::TxReport;
use blam_units::{Duration, Joules, SimTime};

use super::{MacPolicy, NodeProtocolState, PolicyState, WindowDecision};
use crate::nodes::{NodeMut, PacketState};

/// Standard LoRaWAN: pure ALOHA. Transmit immediately in the first
/// forecast window, charge without limit, piggyback nothing, learn
/// nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlohaPolicy;

impl MacPolicy for AlohaPolicy {
    fn label(&self) -> String {
        "LoRaWAN".to_string()
    }

    fn theta(&self) -> f64 {
        1.0
    }

    fn payload_overhead(&self) -> usize {
        0
    }

    fn node_state(
        &self,
        _tx_energy: Joules,
        _max_tx_energy: Joules,
        _windows: usize,
    ) -> NodeProtocolState {
        NodeProtocolState {
            blam: None,
            utility: Utility::Linear,
            policy: PolicyState::Stateless,
        }
    }

    fn on_period_rollover(&self, _node: &mut NodeMut<'_>, _now: SimTime, _window: Duration) {}

    fn select_window(
        &self,
        _node: &mut NodeMut<'_>,
        _now: SimTime,
        _window: Duration,
    ) -> Option<WindowDecision> {
        Some(WindowDecision::immediate())
    }

    fn on_ack_weight(&self, _node: &mut NodeMut<'_>, _byte: u8) {}

    fn on_exchange_complete(
        &self,
        _node: &mut NodeMut<'_>,
        _packet: Option<PacketState>,
        _report: &TxReport,
    ) {
    }
}
