//! Simulator-side telemetry wiring: per-run sink construction for the
//! engine and batch runner, and reconciliation helpers binding traces
//! back to [`NodeMetrics`].
//!
//! The policy is split across two crates on purpose: `blam-telemetry`
//! knows nothing about the simulator (events are plain numbers), while
//! this module knows how to hand one shared JSONL writer to many
//! concurrent per-run [`Recorder`]s and how a trace's event counts map
//! onto the simulator's own counters.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use blam_telemetry::{
    ExpectedNodeCounts, Recorder, RecorderConfig, TailBuffer, TelemetrySink, TraceWriter,
};

use crate::metrics::NodeMetrics;

/// A trace destination shared between batch workers. Each recorder
/// writes whole lines under the lock, so runs interleave at line
/// granularity only.
pub type SharedTraceWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// An in-memory trace sink for one cell of a sharded run.
///
/// Cell engines run concurrently, so they cannot share one ordered
/// writer the way batch runs do: interleaving at line granularity
/// would make the trace depend on thread scheduling. Instead each cell
/// traces into its own `SharedBuffer`, and the coordinator drains the
/// buffers **in cell order** at every epoch barrier, concatenating
/// them onto the real trace file. Recorders write whole lines per
/// event, so a drained buffer always ends on a line boundary.
#[derive(Clone, Default)]
pub struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl SharedBuffer {
    /// Empties the buffer, returning everything written since the last
    /// drain (whole trace lines).
    #[must_use]
    pub fn drain(&self) -> Vec<u8> {
        // A poisoned buffer still holds only whole already-written
        // lines; recovering it loses nothing.
        let mut bytes = self
            .0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        std::mem::take(&mut bytes)
    }
}

impl std::fmt::Debug for SharedBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let len = self.0.lock().map(|b| b.len()).unwrap_or(0);
        f.debug_tuple("SharedBuffer").field(&len).finish()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// What telemetry a run (or batch) should collect.
#[derive(Debug, Clone, Default)]
pub struct TelemetryOptions {
    /// Write a schema-versioned JSONL trace to this path.
    pub trace_path: Option<PathBuf>,
    /// Collect in-memory reports (histograms + counters) even without
    /// a trace file.
    pub collect: bool,
    /// Flight-recorder depth per node (events kept for anomaly dumps).
    pub flight_capacity: usize,
    /// Stream trace lines into this live-tail ring as well (the
    /// campaign daemon's `GET /jobs/:id/tail` source). Composes with
    /// `trace_path`: with both set the writer tees every line.
    pub tail: Option<TailBuffer>,
}

impl TelemetryOptions {
    /// Telemetry fully disabled: engines keep their [`NullSink`]
    /// (zero overhead, byte-identical results).
    ///
    /// [`NullSink`]: blam_telemetry::NullSink
    #[must_use]
    pub fn off() -> Self {
        TelemetryOptions::default()
    }

    /// In-memory collection only (report, no trace file).
    #[must_use]
    pub fn collect() -> Self {
        TelemetryOptions {
            collect: true,
            flight_capacity: RecorderConfig::default().flight_capacity,
            ..TelemetryOptions::default()
        }
    }

    /// Collection plus a JSONL trace written to `path`.
    #[must_use]
    pub fn with_trace<P: AsRef<Path>>(path: P) -> Self {
        TelemetryOptions {
            trace_path: Some(path.as_ref().to_path_buf()),
            ..TelemetryOptions::collect()
        }
    }

    /// Like [`TelemetryOptions::collect`], additionally streaming
    /// trace lines into `tail` for live followers.
    #[must_use]
    pub fn with_tail(tail: TailBuffer) -> Self {
        TelemetryOptions {
            tail: Some(tail),
            ..TelemetryOptions::collect()
        }
    }

    /// Whether any recording sink should be attached at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.collect || self.trace_path.is_some() || self.tail.is_some()
    }

    /// Opens the shared trace writer: the trace file, the live-tail
    /// ring, or a tee of both — `None` when neither is configured.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the trace file cannot be
    /// created.
    pub fn open_writer(&self) -> std::io::Result<Option<SharedTraceWriter>> {
        let file: Option<Box<dyn Write + Send>> = match &self.trace_path {
            Some(path) => {
                // analyzer: allow(atomic-write, reason = "the trace is a streaming JSONL log appended live for tailing; there is no final payload to rename into place")
                let file = File::create(path).map_err(|e| {
                    std::io::Error::new(e.kind(), format!("creating trace file {path:?}: {e}"))
                })?;
                Some(Box::new(BufWriter::new(file)))
            }
            None => None,
        };
        let tail: Option<Box<dyn Write + Send>> =
            self.tail.as_ref().map(|t| Box::new(t.writer()) as _);
        let boxed: Box<dyn Write + Send> = match (file, tail) {
            (Some(file), Some(tail)) => Box::new(Tee(file, tail)),
            (Some(file), None) => file,
            (None, Some(tail)) => tail,
            (None, None) => return Ok(None),
        };
        Ok(Some(Arc::new(Mutex::new(boxed))))
    }

    /// Builds the sink for run `run` of a batch, attached to the shared
    /// writer when tracing. Returns `None` when telemetry is off (the
    /// engine then keeps its zero-overhead `NullSink`).
    #[must_use]
    pub fn sink_for_run(
        &self,
        run: u32,
        writer: Option<SharedTraceWriter>,
    ) -> Option<Box<dyn TelemetrySink>> {
        if !self.enabled() {
            return None;
        }
        let config = RecorderConfig {
            flight_capacity: self.flight_capacity,
            ..RecorderConfig::default()
        };
        let mut recorder = Recorder::new(run, config);
        if let Some(writer) = writer {
            recorder = recorder.with_writer(TraceWriter::Shared(writer));
        }
        Some(Box::new(recorder))
    }

    /// Builds the sink for one cell of a sharded run, tracing into the
    /// cell's private buffer (see [`SharedBuffer`]). The `run` field of
    /// the trace carries the cell index so replay can attribute lines.
    #[must_use]
    pub fn sink_for_cell(
        &self,
        cell: u32,
        buffer: Option<SharedBuffer>,
    ) -> Option<Box<dyn TelemetrySink>> {
        if !self.enabled() {
            return None;
        }
        let config = RecorderConfig {
            flight_capacity: self.flight_capacity,
            ..RecorderConfig::default()
        };
        let mut recorder = Recorder::new(cell, config);
        if let Some(buffer) = buffer {
            recorder = recorder.with_writer(TraceWriter::Owned(Box::new(buffer)));
        }
        Some(Box::new(recorder))
    }
}

/// Duplicates every write to two destinations (trace file + tail
/// ring). Write errors report the file's (the tail ring never fails);
/// both always receive the same whole lines.
struct Tee(Box<dyn Write + Send>, Box<dyn Write + Send>);

impl Write for Tee {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.1.write_all(buf)?;
        self.0.write_all(buf)?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.1.flush()?;
        self.0.flush()
    }
}

/// The per-node counters a valid trace must reconcile with, in node
/// order — pass to
/// [`ReplaySummary::reconcile`](blam_telemetry::ReplaySummary::reconcile).
///
/// `dropped` combines the no-window and brownout/MAC-busy drops, the
/// same split [`NodeMetrics`] keeps.
#[must_use]
pub fn expected_counts(nodes: &[NodeMetrics]) -> Vec<ExpectedNodeCounts> {
    nodes
        .iter()
        .map(|m| ExpectedNodeCounts {
            generated: m.generated,
            delivered: m.delivered,
            transmissions: m.transmissions,
            dropped: m.dropped_no_window + m.dropped_brownout,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_disabled_and_builds_no_sink() {
        let opts = TelemetryOptions::off();
        assert!(!opts.enabled());
        assert!(opts.sink_for_run(0, None).is_none());
        assert!(opts.open_writer().unwrap().is_none());
    }

    #[test]
    fn collect_builds_a_sink_without_writer() {
        let opts = TelemetryOptions::collect();
        assert!(opts.enabled());
        assert!(opts.trace_path.is_none());
        assert!(opts.sink_for_run(3, None).is_some());
    }

    #[test]
    fn with_trace_remembers_the_path() {
        let opts = TelemetryOptions::with_trace("/tmp/trace.jsonl");
        assert!(opts.enabled());
        assert_eq!(
            opts.trace_path.as_deref(),
            Some(Path::new("/tmp/trace.jsonl"))
        );
    }

    #[test]
    fn with_tail_enables_and_streams_lines() {
        let tail = TailBuffer::new(4096);
        let opts = TelemetryOptions::with_tail(tail.clone());
        assert!(opts.enabled());
        assert!(opts.trace_path.is_none());
        let writer = opts.open_writer().unwrap().expect("tail implies a writer");
        writer.lock().unwrap().write_all(b"{\"line\":1}\n").unwrap();
        let chunk = tail.read_from(0, std::time::Duration::from_millis(50));
        assert_eq!(chunk.bytes, b"{\"line\":1}\n");
    }

    #[test]
    fn trace_file_and_tail_tee_identical_bytes() {
        let dir = std::env::temp_dir().join(format!("blam-tee-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let tail = TailBuffer::new(4096);
        let opts = TelemetryOptions {
            tail: Some(tail.clone()),
            ..TelemetryOptions::with_trace(&path)
        };
        let writer = opts.open_writer().unwrap().expect("writer");
        {
            let mut w = writer.lock().unwrap();
            w.write_all(b"a\nb\n").unwrap();
            w.flush().unwrap();
        }
        let file_bytes = std::fs::read(&path).unwrap();
        let chunk = tail.read_from(0, std::time::Duration::from_millis(50));
        assert_eq!(file_bytes, chunk.bytes);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn expected_counts_map_node_metrics() {
        let m = NodeMetrics {
            generated: 10,
            delivered: 7,
            transmissions: 12,
            dropped_no_window: 2,
            dropped_brownout: 1,
            ..NodeMetrics::default()
        };
        let counts = expected_counts(&[m]);
        assert_eq!(counts.len(), 1);
        assert_eq!(counts[0].generated, 10);
        assert_eq!(counts[0].delivered, 7);
        assert_eq!(counts[0].transmissions, 12);
        assert_eq!(counts[0].dropped, 3);
    }
}
