//! Determinism regression tests.
//!
//! The batch runner's contract is that results depend only on each
//! scenario's config (including its seed) — never on thread count,
//! scheduling order, or position in the batch. Serialized `RunResult`s
//! must therefore be byte-identical across all of these axes.

use blam_netsim::engine::Engine;
use blam_netsim::{config::Protocol, BatchRunner, RunResult, ScenarioConfig};
use blam_units::Duration;

fn quick_cfg(protocol: Protocol, nodes: usize, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        duration: Duration::from_days(1),
        sample_interval: Duration::from_days(1),
        ..ScenarioConfig::large_scale(nodes, protocol, seed)
    }
}

fn serialize(r: &RunResult) -> String {
    serde_json::to_string(r).expect("RunResult serializes")
}

#[test]
fn same_seed_gives_identical_serialized_results() {
    for protocol in [Protocol::Lorawan, Protocol::h(0.5)] {
        let a = Engine::build(quick_cfg(protocol, 10, 99)).run();
        let b = Engine::build(quick_cfg(protocol, 10, 99)).run();
        assert_eq!(
            serialize(&a),
            serialize(&b),
            "consecutive runs with one master seed must be byte-identical"
        );
    }
}

#[test]
fn thread_count_does_not_change_results() {
    let configs: Vec<ScenarioConfig> = vec![
        quick_cfg(Protocol::Lorawan, 10, 7),
        quick_cfg(Protocol::h(0.5), 10, 7),
        quick_cfg(Protocol::h(0.05), 8, 21),
        quick_cfg(Protocol::h50c(), 8, 21),
    ];
    let serial = BatchRunner::new(1).quiet().run_all(configs.clone());
    let parallel = BatchRunner::new(8).quiet().run_all(configs);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(
            serialize(s),
            serialize(p),
            "--jobs 1 and --jobs 8 must agree for {}",
            s.label
        );
    }
}

#[test]
fn batch_order_does_not_change_per_config_results() {
    let configs: Vec<ScenarioConfig> = vec![
        quick_cfg(Protocol::Lorawan, 10, 31),
        quick_cfg(Protocol::h(0.5), 10, 31),
        quick_cfg(Protocol::h(1.0), 10, 31),
    ];
    let shuffled: Vec<ScenarioConfig> =
        vec![configs[2].clone(), configs[0].clone(), configs[1].clone()];
    let base = BatchRunner::new(2).quiet().run_all(configs);
    let moved = BatchRunner::new(2).quiet().run_all(shuffled);
    // Results land at their input index, so base[i] pairs with the
    // shuffled position holding the same config.
    for (b, m) in [(0usize, 1usize), (1, 2), (2, 0)] {
        assert_eq!(
            serialize(&base[b]),
            serialize(&moved[m]),
            "a config's result must not depend on its batch position"
        );
    }
}
