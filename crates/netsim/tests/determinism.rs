//! Determinism regression tests.
//!
//! The batch runner's contract is that results depend only on each
//! scenario's config (including its seed) — never on thread count,
//! scheduling order, or position in the batch. Serialized `RunResult`s
//! must therefore be byte-identical across all of these axes.

use blam_netsim::engine::Engine;
use blam_netsim::faults::{GilbertElliott, OutageWindow, SocSensorFaults};
use blam_netsim::{config::Protocol, BatchRunner, FaultConfig, RunResult, ScenarioConfig};
use blam_units::{Duration, SimTime};

fn quick_cfg(protocol: Protocol, nodes: usize, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        duration: Duration::from_days(1),
        sample_interval: Duration::from_days(1),
        ..ScenarioConfig::large_scale(nodes, protocol, seed)
    }
}

fn serialize(r: &RunResult) -> String {
    serde_json::to_string(r).expect("RunResult serializes")
}

#[test]
fn same_seed_gives_identical_serialized_results() {
    for protocol in [Protocol::Lorawan, Protocol::h(0.5)] {
        let a = Engine::build(quick_cfg(protocol.clone(), 10, 99)).run();
        let b = Engine::build(quick_cfg(protocol, 10, 99)).run();
        assert_eq!(
            serialize(&a),
            serialize(&b),
            "consecutive runs with one master seed must be byte-identical"
        );
    }
}

#[test]
fn thread_count_does_not_change_results() {
    let configs: Vec<ScenarioConfig> = vec![
        quick_cfg(Protocol::Lorawan, 10, 7),
        quick_cfg(Protocol::h(0.5), 10, 7),
        quick_cfg(Protocol::h(0.05), 8, 21),
        quick_cfg(Protocol::h50c(), 8, 21),
        quick_cfg(Protocol::long_lived(), 8, 21),
        quick_cfg(Protocol::batteryless(), 8, 21),
    ];
    let serial = BatchRunner::new(1).quiet().run_all(configs.clone());
    let parallel = BatchRunner::new(8).quiet().run_all(configs);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(
            serialize(s),
            serialize(p),
            "--jobs 1 and --jobs 8 must agree for {}",
            s.label
        );
    }
}

/// The fault layer at zero intensity must be a perfect no-op: loss
/// chains that never lose, a sensor with no error, and a corruption
/// channel that never corrupts draw only from their own streams, so
/// results stay byte-identical to a config with no faults at all.
#[test]
fn zero_intensity_faults_are_byte_identical_to_no_faults() {
    for protocol in [Protocol::Lorawan, Protocol::h(0.5)] {
        let clean = quick_cfg(protocol.clone(), 10, 42);
        let mut faulted = clean.clone();
        faulted.faults.uplink_loss = Some(GilbertElliott::uniform(0.0));
        faulted.faults.downlink_loss = Some(GilbertElliott::uniform(0.0));
        faulted.faults.soc_sensor = Some(SocSensorFaults {
            sigma: 0.0,
            bias: 0.0,
        });
        faulted.faults.weight_corruption = Some(0.0);
        let a = Engine::build(clean).run();
        let b = Engine::build(faulted).run();
        assert_eq!(
            serialize(&a),
            serialize(&b),
            "zero-intensity faults must not perturb {} at all",
            a.label
        );
    }
}

/// An ACK path with 100% downlink loss is indistinguishable from a
/// gateway that is down for the whole run: in both worlds the node
/// transmits, pays the energy, and never hears back — and nothing
/// (ledger, ADR, server state, event counts) may differ between them.
#[test]
fn total_downlink_loss_matches_permanently_down_gateway() {
    for protocol in Protocol::zoo() {
        let mut lossy = quick_cfg(protocol.clone(), 10, 77);
        lossy.faults.downlink_loss = Some(GilbertElliott::uniform(1.0));
        let mut dead = quick_cfg(protocol, 10, 77);
        dead.faults.scheduled_outages = vec![OutageWindow {
            gateway: 0,
            start: SimTime::ZERO,
            end: SimTime::MAX,
        }];
        let a = Engine::build(lossy).run();
        let b = Engine::build(dead).run();
        assert_eq!(
            serialize(&a),
            serialize(&b),
            "100% downlink loss and a dead gateway must agree for {}",
            a.label
        );
    }
}

/// Faulted runs obey the same determinism contract as clean ones:
/// repeatable, and independent of worker count.
#[test]
fn chaos_runs_are_repeatable_and_thread_independent() {
    let chaos = |protocol: Protocol, seed: u64| {
        let mut cfg = quick_cfg(protocol, 8, seed);
        cfg.faults = FaultConfig::chaos(0.3, 0.1, Duration::from_hours(8));
        cfg
    };
    let configs = vec![
        chaos(Protocol::Lorawan, 5),
        chaos(Protocol::h(0.5), 5),
        chaos(Protocol::h(0.05), 13),
    ];
    let serial = BatchRunner::new(1).quiet().run_all(configs.clone());
    let parallel = BatchRunner::new(8).quiet().run_all(configs);
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(
            serialize(s),
            serialize(p),
            "faulted --jobs 1 and --jobs 8 must agree for {}",
            s.label
        );
    }
}

#[test]
fn batch_order_does_not_change_per_config_results() {
    let configs: Vec<ScenarioConfig> = vec![
        quick_cfg(Protocol::Lorawan, 10, 31),
        quick_cfg(Protocol::h(0.5), 10, 31),
        quick_cfg(Protocol::h(1.0), 10, 31),
    ];
    let shuffled: Vec<ScenarioConfig> =
        vec![configs[2].clone(), configs[0].clone(), configs[1].clone()];
    let base = BatchRunner::new(2).quiet().run_all(configs);
    let moved = BatchRunner::new(2).quiet().run_all(shuffled);
    // Results land at their input index, so base[i] pairs with the
    // shuffled position holding the same config.
    for (b, m) in [(0usize, 1usize), (1, 2), (2, 0)] {
        assert_eq!(
            serialize(&base[b]),
            serialize(&moved[m]),
            "a config's result must not depend on its batch position"
        );
    }
}
