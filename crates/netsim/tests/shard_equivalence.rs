//! Sharded-execution equivalence tests.
//!
//! The sharded engine's contract is that `--shards N --jobs M` is a
//! pure function of the scenario: serialized `RunResult`s (telemetry
//! included) must be byte-identical across every shard count and
//! worker count, with and without fault injection, on the optimized
//! and the reference code paths alike. Cells only interact at epoch
//! barriers in fixed cell order, so none of these axes may reorder a
//! single RNG draw.

use blam_netsim::shard::run_sharded;
use blam_netsim::{
    config::Protocol, FaultConfig, RunResult, Scenario, ScenarioConfig, TelemetryOptions,
};
use blam_units::Duration;

/// A multi-gateway scenario small enough for CI: 4 cells, 3 simulated
/// days (2 dissemination barriers), daily degradation snapshots.
fn scale_cfg(protocol: Protocol, nodes: usize, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        duration: Duration::from_days(3),
        sample_interval: Duration::from_days(1),
        ..ScenarioConfig::scale(nodes, 4, protocol, seed)
    }
}

fn serialize(r: &RunResult) -> String {
    serde_json::to_string(r).expect("RunResult serializes")
}

#[test]
fn shard_and_job_counts_do_not_change_results() {
    for protocol in [Protocol::Lorawan, Protocol::h(0.5)] {
        let cfg = scale_cfg(protocol, 48, 11);
        let baseline = serialize(&run_sharded(&cfg, 1, 1, &TelemetryOptions::off()));
        for (shards, jobs) in [(2, 1), (4, 1), (2, 4), (4, 4), (99, 3)] {
            let r = run_sharded(&cfg, shards, jobs, &TelemetryOptions::off());
            assert_eq!(
                baseline,
                serialize(&r),
                "--shards {shards} --jobs {jobs} diverged from --shards 1 --jobs 1 ({})",
                r.label
            );
        }
    }
}

#[test]
fn sharding_is_invariant_under_chaos_faults() {
    for seed in [3, 71] {
        let mut cfg = scale_cfg(Protocol::h(0.5), 40, seed);
        cfg.faults = FaultConfig::chaos(0.1, 0.05, Duration::from_days(2));
        let baseline = serialize(&run_sharded(&cfg, 1, 1, &TelemetryOptions::off()));
        for (shards, jobs) in [(2, 1), (4, 4)] {
            let r = run_sharded(&cfg, shards, jobs, &TelemetryOptions::off());
            assert_eq!(
                baseline,
                serialize(&r),
                "chaos seed {seed}: --shards {shards} --jobs {jobs} diverged"
            );
        }
    }
}

/// The PR-5 differential-oracle contract carries over: a sharded run
/// on the reference code paths (binary-heap queue, uncached PHY
/// arithmetic, replay-per-pass ledger) must be byte-identical to the
/// optimized sharded run — and itself invariant under shard count.
#[test]
fn sharded_reference_impl_matches_optimized() {
    let cfg = scale_cfg(Protocol::h(0.5), 32, 23);
    let mut reference = cfg.clone();
    reference.reference_impl = true;
    let fast = serialize(&run_sharded(&cfg, 4, 2, &TelemetryOptions::off()));
    let oracle1 = serialize(&run_sharded(&reference, 1, 1, &TelemetryOptions::off()));
    let oracle4 = serialize(&run_sharded(&reference, 4, 2, &TelemetryOptions::off()));
    assert_eq!(oracle1, oracle4, "reference sharding must be invariant");
    // The oracle serializes with reference_impl's identical numbers;
    // only the seed/label/topology/metrics payload is compared — the
    // flag itself is not part of RunResult.
    assert_eq!(
        fast, oracle4,
        "optimized vs reference sharded runs diverged"
    );
}

/// Telemetry reports ride the same contract: per-cell recorders merge
/// in cell order, so the merged report (and hence the full serialized
/// result) is byte-identical across shard and job counts.
#[test]
fn telemetry_reports_merge_identically_across_shards() {
    let cfg = scale_cfg(Protocol::h(0.5), 36, 5);
    let opts = TelemetryOptions::collect();
    let a = run_sharded(&cfg, 1, 1, &opts);
    let b = run_sharded(&cfg, 4, 4, &opts);
    assert!(a.telemetry.is_some(), "collect() must attach a sink");
    assert_eq!(serialize(&a), serialize(&b));
}

#[test]
fn scenario_scale_builder_routes_through_sharding() {
    let a = Scenario::scale(24, 2, Protocol::Lorawan, 9)
        .with_duration(Duration::from_days(2))
        .with_sample_interval(Duration::from_days(1))
        .run_sharded(2, 2);
    let b = Scenario::scale(24, 2, Protocol::Lorawan, 9)
        .with_duration(Duration::from_days(2))
        .with_sample_interval(Duration::from_days(1))
        .run_sharded(1, 1);
    assert_eq!(serialize(&a), serialize(&b));
    assert_eq!(a.nodes.len(), 24);
    assert_eq!(a.topology.placements.len(), 24);
}

#[test]
#[should_panic(expected = "stop_at_first_eol")]
fn sharded_mode_rejects_stop_at_first_eol() {
    let mut cfg = scale_cfg(Protocol::h(0.5), 8, 1);
    cfg.stop_at_first_eol = true;
    let _ = run_sharded(&cfg, 2, 1, &TelemetryOptions::off());
}
