//! Crash-injection tests for the checkpoint/resume subsystem.
//!
//! The contract under test: a run killed at *any* epoch barrier and
//! resumed from its snapshot produces a serialized [`RunResult`]
//! byte-identical to the uninterrupted run — single-engine and
//! sharded, faults and scenario scripts included — and a torn or
//! corrupt snapshot is quarantined, never trusted.

use std::path::PathBuf;

use blam_netsim::engine::Engine;
use blam_netsim::{
    config::Protocol, run_sharded, run_sharded_checkpointed, CheckpointConfig, FaultConfig,
    RunResult, ScenarioConfig, ScriptAction, ScriptConfig, ScriptedEvent, TelemetryOptions,
};
use blam_units::Duration;

fn serialize(r: &RunResult) -> String {
    serde_json::to_string(r).expect("RunResult serializes")
}

/// A worst-case single-engine scenario for resume: chaos faults (all
/// RNG families live), ADR, and a script that churns hardware and
/// flips a protocol knob mid-run. 1 day with 4-hour dissemination
/// epochs gives 5 mid-run barriers to kill at.
fn hostile_cfg(seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig {
        duration: Duration::from_days(1),
        sample_interval: Duration::from_hours(8),
        dissemination_interval: Duration::from_hours(4),
        ..ScenarioConfig::large_scale(10, Protocol::h(0.5), seed)
    };
    cfg.adr = true;
    cfg.faults = FaultConfig::chaos(0.2, 0.05, Duration::from_days(2));
    cfg.script = ScriptConfig {
        events: vec![
            ScriptedEvent {
                at: Duration::from_hours(7),
                action: ScriptAction::Churn { fraction: 0.3 },
            },
            ScriptedEvent {
                at: Duration::from_hours(13),
                action: ScriptAction::SetWuTtl {
                    ttl: Some(Duration::from_hours(12)),
                },
            },
        ],
    };
    cfg
}

fn snap_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("blam-ckpt-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Polls `true` `n` times, then `false` forever — the in-process stand
/// in for a SIGKILL landing after the n-th epoch window.
fn die_after(n: u64) -> impl FnMut() -> bool {
    let mut polls = 0;
    move || {
        polls += 1;
        polls <= n
    }
}

#[test]
fn single_engine_resume_is_byte_identical_at_every_kill_epoch() {
    let cfg = hostile_cfg(42);
    let baseline = serialize(&Engine::build(cfg.clone()).run());
    // Kill after k epoch windows, for every mid-run barrier, then
    // resume to completion and compare bytes.
    for k in 1..=5 {
        let path = snap_path(&format!("single-kill-{k}.ckpt"));
        let killed = Engine::build(cfg.clone())
            .run_checkpointed(&CheckpointConfig::every_epoch(&path), die_after(k))
            .expect("checkpoint I/O");
        assert!(killed.is_none(), "kill at epoch {k} must abandon the run");
        assert!(path.exists(), "snapshot must survive the kill at epoch {k}");
        let resumed = Engine::build(cfg.clone())
            .run_checkpointed(&CheckpointConfig::every_epoch(&path), || true)
            .expect("checkpoint I/O")
            .expect("resumed run completes");
        assert_eq!(
            baseline,
            serialize(&resumed),
            "resume after kill at epoch {k} diverged from the uninterrupted run"
        );
        assert!(!path.exists(), "completed run must remove its snapshot");
    }
}

/// The zoo's newer policies carry policy-private per-node state
/// (`PolicyState`: Long-Lived wear/stride, the battery-less power
/// latch) that must survive snapshots too: kill at *every* mid-run
/// epoch barrier, resume, and byte-compare against the uninterrupted
/// run — the same contract H-50 is held to above.
#[test]
fn zoo_policy_resume_is_byte_identical_at_every_kill_epoch() {
    for (tag, protocol) in [
        ("longlived", Protocol::long_lived()),
        ("batteryless", Protocol::batteryless()),
    ] {
        let mut cfg = hostile_cfg(42);
        cfg.protocol = protocol;
        let baseline = serialize(&Engine::build(cfg.clone()).run());
        for k in 1..=5 {
            let path = snap_path(&format!("zoo-{tag}-kill-{k}.ckpt"));
            let killed = Engine::build(cfg.clone())
                .run_checkpointed(&CheckpointConfig::every_epoch(&path), die_after(k))
                .expect("checkpoint I/O");
            assert!(
                killed.is_none(),
                "{tag}: kill at epoch {k} must abandon the run"
            );
            let resumed = Engine::build(cfg.clone())
                .run_checkpointed(&CheckpointConfig::every_epoch(&path), || true)
                .expect("checkpoint I/O")
                .expect("resumed run completes");
            assert_eq!(
                baseline,
                serialize(&resumed),
                "{tag}: resume after kill at epoch {k} diverged from the uninterrupted run"
            );
            assert!(!path.exists(), "completed run must remove its snapshot");
        }
    }
}

#[test]
fn single_engine_survives_repeated_kills() {
    let cfg = hostile_cfg(7);
    let baseline = serialize(&Engine::build(cfg.clone()).run());
    let path = snap_path("single-repeated.ckpt");
    let ckpt = CheckpointConfig::every_epoch(&path);
    // Three consecutive crashes, each a little further in, then a
    // clean finish — every leg resumes from the previous leg's
    // snapshot.
    for k in [1, 2, 2] {
        let out = Engine::build(cfg.clone())
            .run_checkpointed(&ckpt, die_after(k))
            .expect("checkpoint I/O");
        assert!(out.is_none());
    }
    let resumed = Engine::build(cfg.clone())
        .run_checkpointed(&ckpt, || true)
        .expect("checkpoint I/O")
        .expect("final leg completes");
    assert_eq!(baseline, serialize(&resumed));
}

#[test]
fn uninterrupted_checkpointed_run_matches_plain_run() {
    let cfg = hostile_cfg(99);
    let plain = serialize(&Engine::build(cfg.clone()).run());
    let path = snap_path("single-uninterrupted.ckpt");
    let checkpointed = Engine::build(cfg.clone())
        .run_checkpointed(&CheckpointConfig::every_epoch(&path), || true)
        .expect("checkpoint I/O")
        .expect("run completes");
    assert_eq!(
        plain,
        serialize(&checkpointed),
        "the epoch-windowed checkpointing loop must not perturb results"
    );
}

#[test]
fn sharded_resume_is_byte_identical_across_shard_and_job_counts() {
    let mut cfg = ScenarioConfig {
        duration: Duration::from_days(3),
        sample_interval: Duration::from_days(1),
        ..ScenarioConfig::scale(40, 4, Protocol::h(0.5), 17)
    };
    cfg.faults = FaultConfig::chaos(0.1, 0.05, Duration::from_days(2));
    let baseline = serialize(&run_sharded(&cfg, 1, 1, &TelemetryOptions::off()));
    for (kill_at, shards, jobs) in [(1, 1, 1), (2, 2, 2), (1, 4, 4)] {
        let path = snap_path(&format!("sharded-{shards}x{jobs}.ckpt"));
        let ckpt = CheckpointConfig::every_epoch(&path);
        let killed = run_sharded_checkpointed(
            &cfg,
            shards,
            jobs,
            &TelemetryOptions::off(),
            &ckpt,
            die_after(kill_at),
        )
        .expect("checkpoint I/O");
        assert!(killed.is_none());
        assert!(path.exists());
        // Resume under a *different* worker layout: the snapshot is
        // cell-structured, so shards/jobs may change across the crash.
        let resumed = run_sharded_checkpointed(
            &cfg,
            shards.max(2) / 2,
            1,
            &TelemetryOptions::off(),
            &ckpt,
            || true,
        )
        .expect("checkpoint I/O")
        .expect("resumed run completes");
        assert_eq!(
            baseline,
            serialize(&resumed),
            "sharded resume (killed at barrier {kill_at}, --shards {shards} --jobs {jobs}) diverged"
        );
        assert!(!path.exists(), "completed run must remove its snapshot");
    }
}

#[test]
fn torn_snapshot_is_quarantined_and_the_run_recovers() {
    let cfg = hostile_cfg(5);
    let baseline = serialize(&Engine::build(cfg.clone()).run());
    let path = snap_path("torn.ckpt");
    let ckpt = CheckpointConfig::every_epoch(&path);
    let killed = Engine::build(cfg.clone())
        .run_checkpointed(&ckpt, die_after(3))
        .expect("checkpoint I/O");
    assert!(killed.is_none());
    // Tear the snapshot: keep the header's promises, lose the tail —
    // exactly what a power cut mid-write-without-rename would leave.
    let text = std::fs::read_to_string(&path).expect("snapshot readable");
    std::fs::write(&path, &text[..text.len() * 2 / 3]).expect("truncate snapshot");
    let resumed = Engine::build(cfg.clone())
        .run_checkpointed(&ckpt, || true)
        .expect("checkpoint I/O")
        .expect("recovered run completes");
    assert_eq!(
        baseline,
        serialize(&resumed),
        "a quarantined snapshot must restart the run from scratch, not diverge"
    );
    let quarantined = PathBuf::from(format!("{}.corrupt", path.display()));
    assert!(
        quarantined.exists(),
        "the torn snapshot must be preserved at *.corrupt for forensics"
    );
    std::fs::remove_file(&quarantined).ok();
}

#[test]
fn snapshot_from_a_different_scenario_is_refused() {
    let cfg = hostile_cfg(42);
    let path = snap_path("mismatch.ckpt");
    let ckpt = CheckpointConfig::every_epoch(&path);
    let killed = Engine::build(cfg.clone())
        .run_checkpointed(&ckpt, die_after(2))
        .expect("checkpoint I/O");
    assert!(killed.is_none());
    let mut other = cfg;
    other.seed = 43;
    let err = Engine::build(other)
        .run_checkpointed(&ckpt, || true)
        .expect_err("resuming a different scenario must fail loudly");
    assert!(
        err.to_string().contains("different scenario"),
        "unexpected error: {err}"
    );
    std::fs::remove_file(&path).ok();
}
