//! Refactor-parity snapshots.
//!
//! Pins the full `NetworkMetrics` of two fixed-seed quick scenarios —
//! the LoRaWAN baseline and H-50 — as pretty-printed JSON under
//! `tests/snapshots/`. On the first run a missing snapshot is recorded
//! (golden-record style); afterwards any engine change that shifts a
//! single metric bit fails the comparison. Delete a snapshot file to
//! intentionally re-baseline after a behavior-changing commit.

use std::path::PathBuf;

use blam_netsim::engine::Engine;
use blam_netsim::{config::Protocol, FaultConfig, ScenarioConfig};
use blam_units::Duration;

fn snapshot_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(format!("{name}.json"))
}

fn check_network_snapshot(name: &str, protocol: Protocol) {
    check_faulted_network_snapshot(name, protocol, FaultConfig::default());
}

fn check_faulted_network_snapshot(name: &str, protocol: Protocol, faults: FaultConfig) {
    let cfg = ScenarioConfig {
        duration: Duration::from_days(2),
        sample_interval: Duration::from_days(1),
        faults,
        ..ScenarioConfig::large_scale(20, protocol, 11)
    };
    let run = Engine::build(cfg).run();
    let actual =
        serde_json::to_string_pretty(&run.network).expect("NetworkMetrics serializes") + "\n";

    let path = snapshot_path(name);
    match std::fs::read_to_string(&path) {
        Ok(expected) => assert_eq!(
            actual,
            expected,
            "NetworkMetrics diverged from the recorded snapshot {} — if this \
             behavior change is intentional, delete the file to re-baseline",
            path.display()
        ),
        Err(_) => {
            std::fs::create_dir_all(path.parent().expect("snapshot dir")).expect("mkdir snapshots");
            std::fs::write(&path, &actual).expect("record snapshot");
            eprintln!("[recorded new snapshot {}]", path.display());
        }
    }
}

#[test]
fn lorawan_quick_scenario_matches_snapshot() {
    check_network_snapshot("network_lorawan_20n_2d_seed11", Protocol::Lorawan);
}

#[test]
fn h50_quick_scenario_matches_snapshot() {
    check_network_snapshot("network_h50_20n_2d_seed11", Protocol::h(0.5));
}

/// Pins a fully faulted run too: any change to the fault layer's draw
/// order or hook placement shifts these metrics and must re-baseline
/// deliberately.
#[test]
fn h50_chaos_scenario_matches_snapshot() {
    check_faulted_network_snapshot(
        "network_h50_chaos_20n_2d_seed11",
        Protocol::h(0.5),
        FaultConfig::chaos(0.25, 0.1, Duration::from_days(1)),
    );
}
