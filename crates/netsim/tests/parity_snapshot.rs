//! Refactor-parity snapshots.
//!
//! Pins the full `NetworkMetrics` of fixed-seed quick scenarios — one
//! per policy in the zoo, plus a faulted H-50 — as pretty-printed JSON
//! under `tests/snapshots/`. On the first run a missing snapshot is
//! recorded (golden-record style); afterwards any engine change that
//! shifts a single metric bit fails the comparison. Delete a snapshot
//! file to intentionally re-baseline after a behavior-changing commit.
//!
//! The comparison itself is a `Result`-returning helper so the
//! anti-vacuity test can assert the negative case: a corrupted
//! snapshot *must* fail, proving the pin actually bites.

use std::path::{Path, PathBuf};

use blam_netsim::engine::Engine;
use blam_netsim::{config::Protocol, FaultConfig, ScenarioConfig};
use blam_units::Duration;

fn snapshot_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(format!("{name}.json"))
}

/// The pinned view: a run's `NetworkMetrics` as pretty JSON.
fn network_json(cfg: ScenarioConfig) -> String {
    let run = Engine::build(cfg).run();
    serde_json::to_string_pretty(&run.network).expect("NetworkMetrics serializes") + "\n"
}

/// Compares `actual` against the snapshot at `path`. A missing
/// snapshot is recorded and passes (golden-record); a present one must
/// match byte-for-byte.
fn compare_snapshot(path: &Path, actual: &str) -> Result<(), String> {
    match std::fs::read_to_string(path) {
        Ok(expected) if expected == actual => Ok(()),
        Ok(_) => Err(format!(
            "NetworkMetrics diverged from the recorded snapshot {} — if this \
             behavior change is intentional, delete the file to re-baseline",
            path.display()
        )),
        Err(_) => {
            std::fs::create_dir_all(path.parent().expect("snapshot dir")).expect("mkdir snapshots");
            std::fs::write(path, actual).expect("record snapshot");
            eprintln!("[recorded new snapshot {}]", path.display());
            Ok(())
        }
    }
}

fn check_network_snapshot(name: &str, protocol: Protocol) {
    check_faulted_network_snapshot(name, protocol, FaultConfig::default());
}

fn check_faulted_network_snapshot(name: &str, protocol: Protocol, faults: FaultConfig) {
    let cfg = ScenarioConfig {
        duration: Duration::from_days(2),
        sample_interval: Duration::from_days(1),
        faults,
        ..ScenarioConfig::large_scale(20, protocol, 11)
    };
    if let Err(msg) = compare_snapshot(&snapshot_path(name), &network_json(cfg)) {
        panic!("{msg}");
    }
}

#[test]
fn lorawan_quick_scenario_matches_snapshot() {
    check_network_snapshot("network_lorawan_20n_2d_seed11", Protocol::Lorawan);
}

#[test]
fn h50_quick_scenario_matches_snapshot() {
    check_network_snapshot("network_h50_20n_2d_seed11", Protocol::h(0.5));
}

#[test]
fn longlived_quick_scenario_matches_snapshot() {
    check_network_snapshot("network_longlived_20n_2d_seed11", Protocol::long_lived());
}

#[test]
fn batteryless_quick_scenario_matches_snapshot() {
    check_network_snapshot("network_batteryless_20n_2d_seed11", Protocol::batteryless());
}

/// Pins a fully faulted run too: any change to the fault layer's draw
/// order or hook placement shifts these metrics and must re-baseline
/// deliberately.
#[test]
fn h50_chaos_scenario_matches_snapshot() {
    check_faulted_network_snapshot(
        "network_h50_chaos_20n_2d_seed11",
        Protocol::h(0.5),
        FaultConfig::chaos(0.25, 0.1, Duration::from_days(1)),
    );
}

/// Anti-vacuity twin: proves the snapshot machinery can fail. Records
/// a snapshot into a scratch directory, corrupts one byte, and asserts
/// the comparison rejects it — so a future refactor that silently
/// turns `compare_snapshot` into a tautology is caught here, not by a
/// real regression slipping through.
#[test]
fn corrupted_snapshot_fails_the_comparison() {
    let cfg = ScenarioConfig {
        duration: Duration::from_days(1),
        sample_interval: Duration::from_days(1),
        ..ScenarioConfig::large_scale(5, Protocol::h(0.5), 11)
    };
    let actual = network_json(cfg);
    let dir = std::env::temp_dir().join(format!("blam-parity-vacuity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("anti_vacuity.json");

    // Leg 1: a faithful snapshot passes.
    std::fs::write(&path, &actual).expect("write snapshot");
    assert!(
        compare_snapshot(&path, &actual).is_ok(),
        "a byte-identical snapshot must pass"
    );

    // Leg 2: the same snapshot with a single flipped byte must fail.
    let mut corrupted = actual.clone().into_bytes();
    let i = corrupted
        .iter()
        .position(|b| b.is_ascii_digit())
        .expect("metrics JSON contains a digit");
    corrupted[i] = if corrupted[i] == b'9' {
        b'0'
    } else {
        corrupted[i] + 1
    };
    std::fs::write(&path, &corrupted).expect("corrupt snapshot");
    assert!(
        compare_snapshot(&path, &actual).is_err(),
        "a corrupted snapshot must fail the comparison — the pin is vacuous"
    );

    std::fs::remove_dir_all(&dir).ok();
}
