//! Cross-policy conformance battery.
//!
//! Every MAC policy in the zoo — the LoRaWAN baseline, BLAM H-50,
//! Long-Lived LoRa and the battery-less scheduler — runs through one
//! shared battery of engine contracts:
//!
//! * determinism across worker counts (`--jobs 1` vs `--jobs 4`),
//! * byte-identity across shard and job counts on the sharded path,
//! * zero-intensity fault inertness,
//! * checkpoint kill/resume parity,
//! * packet- and energy-conservation invariants,
//!
//! plus one *shape* check per non-baseline policy pinning the behavior
//! it exists for: Long-Lived LoRa must not worsen the minimum network
//! lifetime relative to the ALOHA baseline on the paper topology, and
//! the battery-less scheduler must never start a transmission below
//! its capacitor cut-off threshold.
//!
//! Wiring guard: [`roster`] exhaustively matches `Protocol`, so adding
//! a policy variant without registering it here is a compile error —
//! a new policy cannot dodge the battery.

use std::path::PathBuf;

use blam_netsim::engine::Engine;
use blam_netsim::faults::{GilbertElliott, SocSensorFaults};
use blam_netsim::shard::run_sharded;
use blam_netsim::{
    config::Protocol, BatchRunner, BatterylessConfig, CheckpointConfig, FaultConfig, RunResult,
    ScenarioConfig, TelemetryOptions,
};
use blam_telemetry::{Recorder, RecorderConfig};
use blam_units::Duration;

/// The policies under test. The `match` is the compile-time wiring
/// guard: a new `Protocol` variant fails to compile here until its
/// policy is added to [`Protocol::zoo`] and thereby to every test in
/// this battery.
fn roster() -> Vec<Protocol> {
    let zoo = Protocol::zoo();
    for p in &zoo {
        match p {
            Protocol::Lorawan => {}
            Protocol::Blam(_) => {}
            Protocol::LongLived(_) => {}
            Protocol::Batteryless(_) => {}
        }
    }
    zoo
}

fn quick_cfg(protocol: Protocol, nodes: usize, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        duration: Duration::from_days(1),
        sample_interval: Duration::from_days(1),
        ..ScenarioConfig::large_scale(nodes, protocol, seed)
    }
}

fn serialize(r: &RunResult) -> String {
    serde_json::to_string(r).expect("RunResult serializes")
}

#[test]
fn roster_labels_are_unique_and_complete() {
    let labels: Vec<String> = roster().iter().map(Protocol::label).collect();
    assert_eq!(labels.len(), 4, "the zoo fields four policies");
    for (i, a) in labels.iter().enumerate() {
        for b in &labels[i + 1..] {
            assert_ne!(a, b, "duplicate policy label {a}");
        }
    }
}

/// Identical configs are byte-identical regardless of worker count,
/// for every policy.
#[test]
fn every_policy_is_deterministic_across_jobs() {
    let configs: Vec<ScenarioConfig> = roster().into_iter().map(|p| quick_cfg(p, 10, 77)).collect();
    let serial = BatchRunner::new(1).quiet().run_all(configs.clone());
    let parallel = BatchRunner::new(4).quiet().run_all(configs);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(
            serialize(s),
            serialize(p),
            "--jobs 1 and --jobs 4 must agree for {}",
            s.label
        );
    }
}

/// The cell-sharded path is a pure function of the scenario for every
/// policy: shard and worker counts never shift a byte.
#[test]
fn every_policy_is_byte_identical_across_shard_and_job_counts() {
    for protocol in roster() {
        let cfg = ScenarioConfig {
            duration: Duration::from_days(3),
            sample_interval: Duration::from_days(1),
            ..ScenarioConfig::scale(24, 4, protocol, 13)
        };
        let baseline = serialize(&run_sharded(&cfg, 1, 1, &TelemetryOptions::off()));
        for (shards, jobs) in [(2, 2), (4, 4)] {
            let r = run_sharded(&cfg, shards, jobs, &TelemetryOptions::off());
            assert_eq!(
                baseline,
                serialize(&r),
                "{}: --shards {shards} --jobs {jobs} diverged from --shards 1 --jobs 1",
                r.label
            );
        }
    }
}

/// A fault layer dialed to zero intensity must be invisible to every
/// policy: the chains draw only from their own RNG streams.
#[test]
fn zero_intensity_faults_are_inert_for_every_policy() {
    for protocol in roster() {
        let clean = quick_cfg(protocol, 10, 42);
        let mut faulted = clean.clone();
        faulted.faults.uplink_loss = Some(GilbertElliott::uniform(0.0));
        faulted.faults.downlink_loss = Some(GilbertElliott::uniform(0.0));
        faulted.faults.soc_sensor = Some(SocSensorFaults {
            sigma: 0.0,
            bias: 0.0,
        });
        faulted.faults.weight_corruption = Some(0.0);
        let a = Engine::build(clean).run();
        let b = Engine::build(faulted).run();
        assert_eq!(
            serialize(&a),
            serialize(&b),
            "zero-intensity faults must not perturb {} at all",
            a.label
        );
    }
}

/// Every policy's private per-node state survives a mid-run kill: a
/// run killed at an epoch barrier and resumed from its snapshot is
/// byte-identical to the uninterrupted run, chaos faults included.
/// (`checkpoint_resume.rs` drills every barrier; this leg keeps one
/// kill point per policy inside the shared battery.)
#[test]
fn every_policy_resumes_from_a_checkpoint_byte_identically() {
    let dir = std::env::temp_dir().join(format!("blam-conformance-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    for protocol in roster() {
        let mut cfg = quick_cfg(protocol, 8, 9);
        cfg.dissemination_interval = Duration::from_hours(6);
        cfg.faults = FaultConfig::chaos(0.2, 0.05, Duration::from_days(2));
        let label = cfg.protocol.label();
        let baseline = serialize(&Engine::build(cfg.clone()).run());
        let path: PathBuf = dir.join(format!("{label}.ckpt"));
        let ckpt = CheckpointConfig::every_epoch(&path);
        let mut polls = 0u64;
        let killed = Engine::build(cfg.clone())
            .run_checkpointed(&ckpt, || {
                polls += 1;
                polls <= 2
            })
            .expect("checkpoint I/O");
        assert!(killed.is_none(), "{label}: the kill must abandon the run");
        assert!(path.exists(), "{label}: snapshot must survive the kill");
        let resumed = Engine::build(cfg)
            .run_checkpointed(&ckpt, || true)
            .expect("checkpoint I/O")
            .expect("resumed run completes");
        assert_eq!(
            baseline,
            serialize(&resumed),
            "{label}: resume diverged from the uninterrupted run"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Packet accounting closes and energy stays physical for every
/// policy: every generated packet concludes exactly once, SoC sampled
/// at each transmission lies in [0, 1], degradation stays in [0, 1).
#[test]
fn conservation_invariants_hold_for_every_policy() {
    for protocol in roster() {
        let mut cfg = quick_cfg(protocol, 10, 31);
        cfg.duration = Duration::from_days(2);
        let recorder = Recorder::new(0, RecorderConfig::default());
        let run = Engine::build(cfg).with_sink(Box::new(recorder)).run();
        for (i, n) in run.nodes.iter().enumerate() {
            let concluded =
                n.delivered + n.failed_no_ack + n.dropped_no_window + n.dropped_brownout;
            assert_eq!(concluded, n.concluded, "{}: node {i}", run.label);
            assert!(n.generated >= concluded, "{}: node {i}", run.label);
            assert!(
                n.generated - concluded <= 1,
                "{}: node {i} leaked packets",
                run.label
            );
            assert!(
                n.final_degradation >= 0.0 && n.final_degradation < 1.0,
                "{}: node {i} unphysical degradation {}",
                run.label,
                n.final_degradation
            );
        }
        let report = run.telemetry.as_ref().expect("recording sink reports");
        if report.soc_at_tx.count() > 0 {
            assert!(report.soc_at_tx.min() >= 0.0, "{}", run.label);
            assert!(report.soc_at_tx.max() <= 1.0, "{}", run.label);
        }
    }
}

/// Shape check, Long-Lived LoRa: on the paper topology the policy's
/// whole purpose is the minimum network lifetime, which the engine
/// projects from the worst per-node degradation — so its most-worn
/// node must not age faster than the ALOHA baseline's (5% slack
/// absorbs collision noise from the reallocated SFs).
#[test]
fn long_lived_min_lifetime_is_at_least_the_baselines() {
    let run = |protocol: Protocol| {
        let cfg = ScenarioConfig {
            duration: Duration::from_days(20),
            sample_interval: Duration::from_days(5),
            ..ScenarioConfig::large_scale(12, protocol, 42)
        };
        Engine::build(cfg).run()
    };
    let max_deg = |r: &RunResult| {
        r.nodes
            .iter()
            .map(|n| n.final_degradation)
            .fold(0.0f64, f64::max)
    };
    let aloha = run(Protocol::Lorawan);
    let long_lived = run(Protocol::long_lived());
    assert!(
        long_lived.network.delivered > 0,
        "vacuous: Long-Lived LoRa delivered nothing"
    );
    let (a, l) = (max_deg(&aloha), max_deg(&long_lived));
    assert!(
        l <= a * 1.05,
        "Long-Lived LoRa's most-worn node ({l:.6}) ages faster than \
         the ALOHA baseline's ({a:.6}): min lifetime got worse"
    );
}

/// Shape check, battery-less: no transmission ever starts below the
/// capacitor cut-off. The SoC histogram records at the same timestamp
/// the policy's transmit gate fires, so the observed minimum is the
/// gate's guarantee, not a sampling artifact.
#[test]
fn batteryless_never_transmits_below_the_cutoff() {
    let protocol = Protocol::batteryless();
    let off_soc = match &protocol {
        Protocol::Batteryless(BatterylessConfig { off_soc, .. }) => *off_soc,
        _ => unreachable!("just constructed"),
    };
    let mut cfg = quick_cfg(protocol, 12, 7);
    cfg.duration = Duration::from_days(4);
    let recorder = Recorder::new(0, RecorderConfig::default());
    let run = Engine::build(cfg).with_sink(Box::new(recorder)).run();
    assert!(
        run.network.delivered > 0,
        "vacuous: the battery-less network never delivered a packet"
    );
    let report = run.telemetry.as_ref().expect("recording sink reports");
    assert!(report.soc_at_tx.count() > 0, "no transmissions recorded");
    assert!(
        report.soc_at_tx.min() >= off_soc - 1e-9,
        "a transmission started at SoC {:.4}, below the {off_soc} cut-off",
        report.soc_at_tx.min()
    );
}
