//! Telemetry must observe the simulation without perturbing it.
//!
//! The subsystem's contract has three parts, each tested here:
//!
//! 1. attaching a recording sink leaves the simulation results
//!    byte-identical to the zero-overhead `NullSink` path;
//! 2. a recorded JSONL trace passes the structural replay validator and
//!    its event tallies reconcile exactly with the run's own
//!    [`NodeMetrics`](blam_netsim::NodeMetrics);
//! 3. the batch runner's traced path produces the same results as the
//!    plain path, plus a merged report and a valid multi-run trace.

use std::io::Write;
use std::sync::{Arc, Mutex};

use blam_netsim::engine::Engine;
use blam_netsim::telemetry::{expected_counts, TelemetryOptions};
use blam_netsim::{config::Protocol, BatchRunner, RunResult, ScenarioConfig};
use blam_telemetry::{replay, Recorder, RecorderConfig, TraceWriter};
use blam_units::Duration;

fn quick_cfg(protocol: Protocol, nodes: usize, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        duration: Duration::from_days(1),
        sample_interval: Duration::from_days(1),
        ..ScenarioConfig::large_scale(nodes, protocol, seed)
    }
}

/// An in-memory trace destination the test can read back.
#[derive(Debug, Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> Vec<u8> {
        self.0.lock().unwrap().clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The simulation-relevant parts of a result — everything except the
/// observational `telemetry` field, which is `Some` iff a recording
/// sink was attached.
fn sim_fields(r: &RunResult) -> String {
    let mut v = serde_json::to_value(r).expect("RunResult serializes");
    v.as_object_mut().unwrap().remove("telemetry");
    v.to_string()
}

#[test]
fn recording_sink_does_not_change_results() {
    for protocol in [Protocol::Lorawan, Protocol::h(0.5), Protocol::h50c()] {
        let plain = Engine::build(quick_cfg(protocol.clone(), 10, 99)).run();
        let recorder = Recorder::new(0, RecorderConfig::default());
        let traced = Engine::build(quick_cfg(protocol, 10, 99))
            .with_sink(Box::new(recorder))
            .run();
        assert!(plain.telemetry.is_none(), "NullSink reports nothing");
        assert!(traced.telemetry.is_some(), "Recorder reports");
        assert_eq!(
            sim_fields(&plain),
            sim_fields(&traced),
            "telemetry must be purely observational for {}",
            plain.label
        );
    }
}

#[test]
fn trace_validates_and_reconciles_with_metrics() {
    let buf = SharedBuf::default();
    let writer: Box<dyn Write + Send> = Box::new(buf.clone());
    let recorder =
        Recorder::new(0, RecorderConfig::default()).with_writer(TraceWriter::Owned(writer));
    let result = Engine::build(quick_cfg(Protocol::h(0.5), 8, 7))
        .with_sink(Box::new(recorder))
        .run();

    let trace = buf.contents();
    let summary = replay::validate(trace.as_slice()).expect("trace is structurally valid");
    assert_eq!(summary.runs, 1);
    assert!(summary.events > 0, "a day of simulation emits events");

    let expected = expected_counts(&result.nodes);
    summary
        .reconcile(0, &expected)
        .expect("trace tallies match NodeMetrics");

    // The in-memory report agrees with the trace on the event count.
    let report = result.telemetry.expect("recorder returns a report");
    assert_eq!(report.events, summary.events);
}

#[test]
fn traced_batch_matches_plain_batch_and_validates() {
    let configs: Vec<ScenarioConfig> = vec![
        quick_cfg(Protocol::Lorawan, 8, 31),
        quick_cfg(Protocol::h(0.5), 8, 31),
        quick_cfg(Protocol::h(0.05), 6, 21),
    ];
    let plain = BatchRunner::new(2).quiet().run_all(configs.clone());

    let dir = std::env::temp_dir().join("blam-telemetry-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace_path = dir.join(format!("batch-{}.jsonl", std::process::id()));
    let opts = TelemetryOptions::with_trace(&trace_path);
    let outcome = BatchRunner::new(2).quiet().run_all_with(configs, &opts);

    assert_eq!(plain.len(), outcome.results.len());
    for (p, t) in plain.iter().zip(&outcome.results) {
        assert_eq!(
            sim_fields(p),
            sim_fields(t),
            "traced batch must match the plain batch for {}",
            p.label
        );
    }

    let merged = outcome.telemetry.expect("traced batch merges reports");
    assert_eq!(merged.merged_runs, outcome.results.len() as u32);
    assert_eq!(outcome.profile.runs, outcome.results.len());
    assert_eq!(
        outcome.profile.sim_run.count,
        outcome.results.len() as u64,
        "every run is profiled"
    );

    let file = std::fs::File::open(&trace_path).expect("trace file written");
    let summary =
        replay::validate(std::io::BufReader::new(file)).expect("batch trace is valid JSONL");
    assert_eq!(summary.runs, outcome.results.len() as u64);
    for (i, result) in outcome.results.iter().enumerate() {
        summary
            .reconcile(i as u32, &expected_counts(&result.nodes))
            .unwrap_or_else(|e| panic!("run {i} ({}) reconciles: {e}", result.label));
    }
    let _ = std::fs::remove_file(&trace_path);
}
