//! Scenario-script determinism tests.
//!
//! Scripted mid-run events (churn, protocol-knob flips) ride the same
//! determinism contract as everything else: every draw comes from a
//! named RNG stream keyed by global ids, so a scripted run is
//! byte-identical across `--shards`/`--jobs`. `AddGateway` is the one
//! action that changes the cell structure and is rejected by the
//! sharded coordinator.

use blam_netsim::shard::run_sharded;
use blam_netsim::{
    config::Protocol, RunResult, ScenarioConfig, ScriptAction, ScriptConfig, ScriptedEvent,
    TelemetryOptions,
};
use blam_units::Duration;

fn serialize(r: &RunResult) -> String {
    serde_json::to_string(r).expect("RunResult serializes")
}

/// A 4-cell scripted scenario small enough for CI: churn a tenth of
/// the fleet on day 1, flip two BLAM knobs on day 2.
fn scripted_cfg(nodes: usize, seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig {
        duration: Duration::from_days(3),
        sample_interval: Duration::from_days(1),
        ..ScenarioConfig::scale(nodes, 4, Protocol::h(0.5), seed)
    };
    cfg.script = ScriptConfig {
        events: vec![
            ScriptedEvent {
                at: Duration::from_days(1),
                action: ScriptAction::Churn { fraction: 0.1 },
            },
            ScriptedEvent {
                at: Duration::from_days(2),
                action: ScriptAction::SetWuTtl {
                    ttl: Some(Duration::from_days(2)),
                },
            },
            ScriptedEvent {
                at: Duration::from_days(2),
                action: ScriptAction::SetTraceBuffer { depth: 4 },
            },
        ],
    };
    cfg
}

/// The ISSUE's headline determinism claim: a scripted run is
/// byte-identical at `--shards 1 --jobs 1` and `--shards 2 --jobs 4`
/// (and a few more axes for good measure).
#[test]
fn scripted_runs_are_byte_identical_across_shards_and_jobs() {
    for seed in [11, 42] {
        let cfg = scripted_cfg(48, seed);
        let baseline = serialize(&run_sharded(&cfg, 1, 1, &TelemetryOptions::off()));
        for (shards, jobs) in [(2, 4), (4, 1), (4, 4)] {
            let r = run_sharded(&cfg, shards, jobs, &TelemetryOptions::off());
            assert_eq!(
                baseline,
                serialize(&r),
                "seed {seed}: scripted --shards {shards} --jobs {jobs} diverged"
            );
        }
    }
}

/// The script must actually change the run — otherwise the test above
/// would pass vacuously on a script that never fires.
#[test]
fn scripted_events_change_the_run() {
    let scripted = scripted_cfg(48, 11);
    let mut plain = scripted.clone();
    plain.script = ScriptConfig::default();
    let a = serialize(&run_sharded(&scripted, 2, 2, &TelemetryOptions::off()));
    let b = serialize(&run_sharded(&plain, 2, 2, &TelemetryOptions::off()));
    assert_ne!(a, b, "the churn + knob script must perturb the results");
}

/// Churn draws are keyed by (event index, global id), so a full-churn
/// script replaces every node — the end-of-run degradation must drop
/// versus the unscripted run (fresh batteries mid-run).
#[test]
fn full_churn_resets_fleet_degradation() {
    let mut cfg = scripted_cfg(32, 7);
    cfg.script = ScriptConfig {
        events: vec![ScriptedEvent {
            at: Duration::from_days(2),
            action: ScriptAction::Churn { fraction: 1.0 },
        }],
    };
    let mut plain = cfg.clone();
    plain.script = ScriptConfig::default();
    let churned = run_sharded(&cfg, 2, 2, &TelemetryOptions::off());
    let aged = run_sharded(&plain, 2, 2, &TelemetryOptions::off());
    assert!(
        churned.network.degradation.max < aged.network.degradation.max,
        "day-2 full churn must leave younger batteries at day 3 \
         ({} vs {})",
        churned.network.degradation.max,
        aged.network.degradation.max
    );
}

/// AddGateway rewires the cell structure the sharded coordinator
/// fixed at build time, so sharded mode must refuse it loudly.
#[test]
#[should_panic(expected = "AddGateway script events require the single-engine mode")]
fn sharded_mode_rejects_add_gateway_scripts() {
    let mut cfg = scripted_cfg(16, 1);
    cfg.script.events.push(ScriptedEvent {
        at: Duration::from_days(1),
        action: ScriptAction::AddGateway { x: 900.0, y: 900.0 },
    });
    let _ = run_sharded(&cfg, 2, 1, &TelemetryOptions::off());
}

/// AddGateway works single-engine: the new gateway appears in the
/// run and the result stays a pure function of the config (two
/// identical runs agree byte-for-byte).
#[test]
fn add_gateway_runs_single_engine_and_is_deterministic() {
    let mut cfg = scripted_cfg(24, 5);
    cfg.script.events.push(ScriptedEvent {
        at: Duration::from_days(1),
        action: ScriptAction::AddGateway { x: 120.0, y: -60.0 },
    });
    let a = run_sharded(&cfg, 1, 1, &TelemetryOptions::off());
    let b = run_sharded(&cfg, 1, 1, &TelemetryOptions::off());
    assert_eq!(serialize(&a), serialize(&b));
}
