//! The engine-level differential-oracle battery.
//!
//! This PR replaced three hot paths — the event queue (binary heap →
//! calendar queue), the PHY airtime/TX-energy arithmetic (direct
//! Semtech formula → memo tables), and the gateway degradation ledger
//! (replay-per-pass → incremental streaming) — and kept every naive
//! implementation alive behind `ScenarioConfig::reference_impl`. The
//! contract is total: for any scenario, fault schedule, and worker
//! count, the optimized engine and the reference engine must produce
//! **byte-identical** serialized [`RunResult`]s.
//!
//! Per-crate differential tests pin each substitution in isolation
//! (`blam-des/tests/differential_queue.rs`, the exhaustive airtime
//! conformance table in `blam-lora-phy`, the ledger replay oracle in
//! `blam`); this battery pins their composition end to end.

use blam_netsim::engine::Engine;
use blam_netsim::{config::Protocol, BatchRunner, FaultConfig, RunResult, ScenarioConfig};
use blam_units::Duration;

/// xorshift64* — deterministic scenario scrambling without pulling a
/// PRNG crate into the differential battery.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn quick_cfg(protocol: Protocol, nodes: usize, seed: u64, days: u64) -> ScenarioConfig {
    ScenarioConfig {
        duration: Duration::from_days(days),
        sample_interval: Duration::from_days(1),
        ..ScenarioConfig::large_scale(nodes, protocol, seed)
    }
}

fn reference(mut cfg: ScenarioConfig) -> ScenarioConfig {
    cfg.reference_impl = true;
    cfg
}

fn serialize(r: &RunResult) -> String {
    serde_json::to_string(r).expect("RunResult serializes")
}

fn assert_parity(cfg: ScenarioConfig, what: &str) {
    let label = cfg.protocol.label();
    let opt = Engine::build(cfg.clone()).run();
    let oracle = Engine::build(reference(cfg)).run();
    assert_eq!(
        serialize(&opt),
        serialize(&oracle),
        "optimized engine diverged from the reference oracle ({what}, {label})"
    );
}

/// Randomized scenarios: every protocol family, scrambled node counts
/// and seeds, optimized vs reference byte parity on each.
#[test]
fn optimized_engine_matches_reference_oracle_on_random_scenarios() {
    let mut rng = XorShift(0xB1A4_0001);
    let protocols = [
        Protocol::Lorawan,
        Protocol::h(1.0),
        Protocol::h(0.5),
        Protocol::h50c(),
    ];
    for protocol in protocols {
        let nodes = 6 + (rng.next() % 5) as usize;
        let seed = rng.next();
        assert_parity(
            quick_cfg(protocol, nodes, seed, 1),
            "random fault-free scenario",
        );
    }
}

/// The oracle contract survives an active fault schedule: burst loss,
/// gateway outages and node reboots drive the retransmission, ledger
/// staleness and brownout paths on both engines.
#[test]
fn optimized_engine_matches_reference_oracle_under_faults() {
    let faults = FaultConfig::chaos(0.3, 0.1, Duration::from_days(1));
    for (protocol, seed) in [(Protocol::Lorawan, 11_u64), (Protocol::h(0.5), 23)] {
        let mut cfg = quick_cfg(protocol, 8, seed, 2);
        cfg.faults = faults.clone();
        assert_parity(cfg, "chaos fault schedule");
    }
}

/// Longer horizon with multiple dissemination passes, so the
/// incremental ledger's accumulated state (and the reference ledger's
/// replay logs) are exercised across several daily recomputations.
#[test]
fn optimized_engine_matches_reference_oracle_across_dissemination_days() {
    assert_parity(
        quick_cfg(Protocol::h(1.0), 10, 0xD15E, 3),
        "multi-day dissemination",
    );
}

/// Worker-count invariance composed with the oracle: a mixed batch of
/// reference and optimized configs run at `--jobs 1` and `--jobs 4`
/// must agree pairwise (opt == ref) and across job counts.
#[test]
fn parity_is_jobs_invariant() {
    let mut configs: Vec<ScenarioConfig> = Vec::new();
    for (protocol, seed) in [(Protocol::Lorawan, 5_u64), (Protocol::h(0.5), 9)] {
        let cfg = quick_cfg(protocol, 8, seed, 1);
        configs.push(cfg.clone());
        configs.push(reference(cfg));
    }
    let serial = BatchRunner::new(1).quiet().run_all(configs.clone());
    let parallel = BatchRunner::new(4).quiet().run_all(configs);
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(
            serialize(s),
            serialize(p),
            "--jobs 1 and --jobs 4 must agree for {}",
            s.label
        );
    }
    // Input order is [opt, ref, opt, ref]: each adjacent pair must be
    // byte-identical — the reference flag may never leak into results.
    for pair in serial.chunks(2) {
        assert_eq!(
            serialize(&pair[0]),
            serialize(&pair[1]),
            "reference and optimized engines diverged in batch for {}",
            pair[0].label
        );
    }
}
