//! Property-based tests over whole simulation runs: for randomly drawn
//! small scenarios, the engine's global invariants must hold.

use blam::BlamConfig;
use blam_netsim::config::{ForecasterKind, HarvestKind, Protocol, ScenarioConfig};
use blam_netsim::engine::Engine;
use blam_netsim::{BatterylessConfig, FaultConfig, LongLivedConfig};
use blam_units::{Db, Duration};
use proptest::prelude::*;

fn any_protocol() -> impl Strategy<Value = Protocol> {
    prop_oneof![
        Just(Protocol::Lorawan),
        (1u32..=20).prop_map(|t| Protocol::h(f64::from(t) / 20.0)),
        Just(Protocol::h50c()),
        Just(Protocol::Blam(BlamConfig::h(0.5).hardened())),
        // The rest of the zoo, with their knobs drawn too, so the
        // conservation/fault invariants below cover all four policies.
        (0.0f64..=12.0, 2u32..=8).prop_map(|(margin, stride)| {
            Protocol::LongLived(LongLivedConfig {
                sf_margin: Db(margin),
                skip_stride: stride,
                ..LongLivedConfig::default()
            })
        }),
        (0.05f64..=0.5, 0.01f64..=0.5).prop_map(|(off, band)| {
            Protocol::Batteryless(BatterylessConfig {
                off_soc: off,
                on_soc: (off + band).min(1.0),
            })
        }),
    ]
}

/// `None` is the fault-free engine; `Some` draws a full chaos schedule
/// of the given loss rate, outage duty cycle and reboot mean.
fn any_faults() -> impl Strategy<Value = FaultConfig> {
    prop::option::of((0.0f64..=0.6, 0.0f64..=0.2, 4u64..=48)).prop_map(|params| {
        params.map_or_else(FaultConfig::default, |(loss, duty, reboot_hours)| {
            FaultConfig::chaos(loss, duty, Duration::from_hours(reboot_hours))
        })
    })
}

fn any_config() -> impl Strategy<Value = ScenarioConfig> {
    (
        any_protocol(),
        3usize..12,   // nodes
        1u64..4,      // days
        any::<u64>(), // seed
        prop_oneof![
            Just(ForecasterKind::DiurnalPersistence),
            Just(ForecasterKind::Oracle),
            Just(ForecasterKind::Noisy(0.5)),
        ],
        prop_oneof![Just(HarvestKind::Solar), Just(HarvestKind::Wind)],
        1usize..3,                      // gateways
        prop::option::of(2.0f64..20.0), // supercap multiple
        any_faults(),
    )
        .prop_map(
            |(protocol, nodes, days, seed, forecaster, harvest, gateways, supercap, faults)| {
                let mut cfg = ScenarioConfig::large_scale(nodes, protocol, seed);
                cfg.duration = Duration::from_days(days);
                cfg.sample_interval = Duration::from_days(1);
                cfg.solar_trace_days = 4;
                cfg.forecaster = forecaster;
                cfg.harvest = harvest;
                cfg.gateways = gateways;
                cfg.supercap_tx_multiple = supercap;
                cfg.faults = faults;
                cfg
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Packet accounting closes for every node under any configuration.
    #[test]
    fn accounting_closes(cfg in any_config()) {
        let run = Engine::build(cfg).run();
        for (i, n) in run.nodes.iter().enumerate() {
            let concluded =
                n.delivered + n.failed_no_ack + n.dropped_no_window + n.dropped_brownout;
            prop_assert_eq!(concluded, n.concluded, "node {}", i);
            prop_assert!(n.generated >= concluded);
            prop_assert!(n.generated - concluded <= 1, "node {} leaked packets", i);
            prop_assert!((0.0..=1.0).contains(&n.prr()));
            prop_assert!((0.0..=1.0).contains(&n.avg_utility()));
            prop_assert!(n.final_degradation >= 0.0 && n.final_degradation < 1.0);
            let exchanges = n.delivered + n.failed_no_ack;
            prop_assert!(n.transmissions >= exchanges);
        }
    }

    /// Identical configurations produce bit-identical outcomes.
    #[test]
    fn determinism(cfg in any_config()) {
        let a = Engine::build(cfg.clone()).run();
        let b = Engine::build(cfg).run();
        prop_assert_eq!(a.events_processed, b.events_processed);
        prop_assert_eq!(a.network.generated, b.network.generated);
        prop_assert_eq!(a.network.delivered, b.network.delivered);
        prop_assert_eq!(a.network.brownouts, b.network.brownouts);
        for (x, y) in a.nodes.iter().zip(&b.nodes) {
            prop_assert_eq!(x.transmissions, y.transmissions);
            prop_assert!((x.final_degradation - y.final_degradation).abs() < 1e-18);
        }
    }

    /// Under an always-on chaos schedule the engine's conservation
    /// invariants still hold: packet accounting closes with no leaks,
    /// the SoC observed at every transmission stays within [0, 1]
    /// of capacity, degradation stays physical, and the faulted run
    /// replays event for event.
    #[test]
    fn chaos_schedules_preserve_conservation_invariants(
        cfg in any_config(),
        loss in 0.05f64..=0.5,
    ) {
        let mut cfg = cfg;
        cfg.faults = blam_netsim::FaultConfig::chaos(loss, 0.15, Duration::from_hours(6));
        let recorder = blam_telemetry::Recorder::new(0, blam_telemetry::RecorderConfig::default());
        let a = Engine::build(cfg.clone())
            .with_sink(Box::new(recorder))
            .run();
        let b = Engine::build(cfg).run();
        // Replayability: the sink observes without feeding back, so a
        // plain rerun must process the identical event sequence.
        prop_assert_eq!(a.events_processed, b.events_processed);
        for (x, y) in a.nodes.iter().zip(&b.nodes) {
            prop_assert_eq!(x.transmissions, y.transmissions);
            prop_assert!((x.final_degradation - y.final_degradation).abs() < 1e-18);
        }
        for (i, n) in a.nodes.iter().enumerate() {
            let concluded =
                n.delivered + n.failed_no_ack + n.dropped_no_window + n.dropped_brownout;
            prop_assert_eq!(concluded, n.concluded, "node {}", i);
            prop_assert!(n.generated >= concluded);
            prop_assert!(
                n.generated - concluded <= 1,
                "node {} leaked packets under faults",
                i
            );
            prop_assert!(n.final_degradation >= 0.0 && n.final_degradation < 1.0);
        }
        for d in &a.gateway_degradation_estimates {
            prop_assert!((0.0..=1.0).contains(d), "ledger estimate {} out of range", d);
        }
        let report = a.telemetry.as_ref().expect("recording sink returns a report");
        if report.soc_at_tx.count() > 0 {
            prop_assert!(report.soc_at_tx.min() >= 0.0);
            prop_assert!(report.soc_at_tx.max() <= 1.0);
        }
    }

    /// Degradation snapshots never decrease over time.
    #[test]
    fn degradation_monotone(cfg in any_config()) {
        let run = Engine::build(cfg).run();
        for pair in run.samples.windows(2) {
            prop_assert!(pair[1].at > pair[0].at);
            for (a, b) in pair[0].per_node.iter().zip(&pair[1].per_node) {
                prop_assert!(b.total >= a.total - 1e-15);
                prop_assert!(b.calendar >= a.calendar - 1e-15);
                prop_assert!(b.cycle >= a.cycle - 1e-15);
            }
        }
    }
}
