//! End-to-end behavior of the simulation engine, exercised through the
//! public API. These pin the qualitative physics of the model: packets
//! get delivered, runs are deterministic, degradation accumulates, duty
//! cycles stretch exchanges, gateways help, and H-5 starves at night.

use blam_netsim::engine::Engine;
use blam_netsim::{config::Protocol, RunResult, ScenarioConfig};
use blam_units::Duration;

fn quick(protocol: Protocol, days: u64, nodes: usize, seed: u64) -> RunResult {
    let cfg = ScenarioConfig {
        duration: Duration::from_days(days),
        sample_interval: Duration::from_days(1),
        ..ScenarioConfig::large_scale(nodes, protocol, seed)
    };
    Engine::build(cfg).run()
}

#[test]
fn lorawan_network_delivers_packets() {
    let r = quick(Protocol::Lorawan, 2, 20, 11);
    assert!(
        r.network.generated > 20 * 24 * 2,
        "generated {}",
        r.network.generated
    );
    assert!(r.network.prr > 0.6, "PRR {}", r.network.prr);
    // Delivered packets conclude within the retransmission budget;
    // the penalized average is dominated by collision losses under
    // synchronized ALOHA starts.
    assert!(r.network.avg_latency_delivered_secs < 60.0);
    assert_eq!(r.nodes.len(), 20);
}

#[test]
fn blam_network_delivers_packets() {
    let r = quick(Protocol::h(0.5), 2, 20, 11);
    assert!(r.network.prr > 0.6, "PRR {}", r.network.prr);
    // BLAM may defer: some node should use a window beyond 0 at
    // least occasionally once degradation weights arrive; at two
    // days the main check is that deferral doesn't break delivery.
    assert!(
        r.network.avg_utility > 0.4,
        "utility {}",
        r.network.avg_utility
    );
}

#[test]
fn runs_are_deterministic() {
    let a = quick(Protocol::h(0.5), 1, 10, 77);
    let b = quick(Protocol::h(0.5), 1, 10, 77);
    assert_eq!(a.network.generated, b.network.generated);
    assert_eq!(a.network.delivered, b.network.delivered);
    assert_eq!(a.events_processed, b.events_processed);
    assert!((a.network.avg_latency_secs - b.network.avg_latency_secs).abs() < 1e-12);
}

#[test]
fn different_seeds_differ() {
    let a = quick(Protocol::Lorawan, 1, 10, 1);
    let b = quick(Protocol::Lorawan, 1, 10, 2);
    assert_ne!(
        (a.network.generated, a.network.delivered),
        (b.network.generated, b.network.delivered)
    );
}

#[test]
fn lorawan_latency_is_window_zero() {
    let r = quick(Protocol::Lorawan, 1, 10, 5);
    // Successful first-try exchanges conclude within ~2 s; even with
    // retransmissions the bulk stays far below one forecast window.
    assert!(
        r.network.avg_latency_delivered_secs < 40.0,
        "{}",
        r.network.avg_latency_delivered_secs
    );
    for n in &r.nodes {
        if n.generated > 0 {
            assert_eq!(n.majority_window(), Some(0));
        }
    }
}

#[test]
fn degradation_accumulates_over_time() {
    let r = quick(Protocol::Lorawan, 5, 10, 3);
    assert!(r.network.degradation.mean > 0.0);
    assert!(r.samples.len() >= 4);
    let first = r.samples.first().unwrap().mean_total();
    let last = r.samples.last().unwrap().mean_total();
    assert!(last > first);
}

#[test]
fn duty_cycle_stretches_retransmission_bursts() {
    // With a 1% duty cycle, a retransmission burst must wait out
    // ~99 airtimes between attempts, so exchanges take far longer
    // and fewer retransmissions fit before the next period.
    let mut free = ScenarioConfig::large_scale(25, Protocol::Lorawan, 13);
    free.duration = Duration::from_days(3);
    let mut limited = free.clone();
    limited.duty_cycle = Some(0.01);
    let free = Engine::build(free).run();
    let limited = Engine::build(limited).run();
    assert!(
        limited.network.avg_latency_delivered_secs > free.network.avg_latency_delivered_secs,
        "duty cycle should delay delivery: {} !> {}",
        limited.network.avg_latency_delivered_secs,
        free.network.avg_latency_delivered_secs
    );
    assert!(limited.network.prr > 0.5);
}

#[test]
fn multi_gateway_improves_reception() {
    let mut one = ScenarioConfig::large_scale(60, Protocol::Lorawan, 17);
    one.duration = Duration::from_days(3);
    let mut four = one.clone();
    four.gateways = 4;
    let one = Engine::build(one).run();
    let four = Engine::build(four).run();
    assert!(four.network.avg_retx <= one.network.avg_retx);
    assert!(four.network.prr >= one.network.prr - 0.01);
}

#[test]
fn h5_starves_at_night() {
    // θ = 0.05 cannot bank enough to survive dark hours: brownouts
    // and dropped packets appear (Fig. 6b's H-5 behaviour).
    let r = quick(Protocol::h(0.05), 3, 15, 9);
    let dropped: u64 = r
        .nodes
        .iter()
        .map(|n| n.dropped_no_window + n.dropped_brownout)
        .sum();
    assert!(dropped > 0, "H-5 should drop packets at night");
    let full = quick(Protocol::h(0.5), 3, 15, 9);
    assert!(r.network.prr < full.network.prr);
}
