//! Green-energy substrate: harvest traces, a synthetic solar model and
//! short-horizon forecasters.
//!
//! The paper powers every node from a small solar panel plus a
//! rechargeable battery, drives its simulations from a year-long NREL
//! solar trace scaled so that peak power sustains two transmissions per
//! forecast window, and assumes nodes run a lightweight on-device
//! forecaster (Kraemer et al., their ref. \[22\]) for very-short-term
//! green-energy prediction.
//!
//! This crate provides the equivalents:
//!
//! * [`trace`] — [`HarvestTrace`], a step-function power time series
//!   with exact energy integration and cyclic extension (a one-year
//!   trace drives a 15-year simulation).
//! * [`solar`] — [`SolarModel`], a synthetic clear-sky × season ×
//!   Markov-cloud generator, and [`SolarField`], which derives
//!   per-node traces (shared cloud regions × per-node shading) without
//!   storing 500 copies of the year.
//! * [`forecast`] — the [`Forecaster`] trait with oracle, diurnal
//!   persistence and noisy-oracle implementations.
//! * [`wind`] — [`WindModel`], a mean-reverting gust model with a
//!   turbine power curve, for testing the protocol's independence from
//!   the specific green-energy source.
//! * [`ewma`] — the exponentially-weighted moving average of the
//!   paper's Eq. (13).
//!
//! # Examples
//!
//! ```
//! use blam_energy_harvest::{HarvestSource, SolarModel};
//! use blam_units::{Duration, SimTime};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let trace = SolarModel::default().generate(3, Duration::from_mins(5), &mut rng);
//! let noon_day_one = SimTime::ZERO + Duration::from_hours(36);
//! let night = SimTime::ZERO + Duration::from_hours(24);
//! assert!(trace.power_at(noon_day_one).0 > trace.power_at(night).0);
//! ```

// `forbid(unsafe_code)` comes from `[workspace.lints]` in the root
// manifest; only the doc requirement stays crate-local.
#![warn(missing_docs)]

pub mod ewma;
pub mod forecast;
pub mod solar;
pub mod trace;
pub mod wind;

pub use ewma::Ewma;
pub use forecast::{DiurnalPersistence, Forecaster, NoisyOracle, Oracle};
pub use solar::{CloudModel, NodeHarvest, SolarField, SolarModel};
pub use trace::{HarvestSource, HarvestTrace};
pub use wind::WindModel;
