//! Exponentially weighted moving average — the paper's Eq. (13).

use serde::{Deserialize, Serialize};

/// The estimator of Eq. (13):
///
/// ```text
/// e[p] = β · x[p−1] + (1 − β) · e[p−1]
/// ```
///
/// where `β` weights the newest observation. The paper uses it to
/// estimate per-packet transmission energy across sampling periods,
/// smoothing out parameter changes commanded by the network server.
///
/// # Examples
///
/// ```
/// use blam_energy_harvest::Ewma;
///
/// let mut e = Ewma::new(0.5, 10.0);
/// e.update(20.0);
/// assert!((e.value() - 15.0).abs() < 1e-12);
/// e.update(20.0);
/// assert!((e.value() - 17.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    beta: f64,
    value: f64,
    observations: u64,
}

impl Ewma {
    /// Creates an estimator with importance weight `beta` and an initial
    /// estimate.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is outside `[0, 1]` or `initial` is not finite.
    #[must_use]
    pub fn new(beta: f64, initial: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&beta),
            "β must be in [0,1], got {beta}"
        );
        assert!(initial.is_finite(), "initial estimate must be finite");
        Ewma {
            beta,
            value: initial,
            observations: 0,
        }
    }

    /// Folds in a new observation and returns the updated estimate.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `observation` is not finite.
    pub fn update(&mut self, observation: f64) -> f64 {
        debug_assert!(observation.is_finite(), "observation must be finite");
        self.value = self.beta * observation + (1.0 - self.beta) * self.value;
        self.observations += 1;
        self.value
    }

    /// The current estimate.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The importance weight β.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// How many observations have been folded in.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_one_tracks_last_observation() {
        let mut e = Ewma::new(1.0, 0.0);
        e.update(7.0);
        assert_eq!(e.value(), 7.0);
        e.update(-2.0);
        assert_eq!(e.value(), -2.0);
    }

    #[test]
    fn beta_zero_never_moves() {
        let mut e = Ewma::new(0.0, 5.0);
        e.update(100.0);
        assert_eq!(e.value(), 5.0);
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(0.3, 0.0);
        for _ in 0..100 {
            e.update(42.0);
        }
        assert!((e.value() - 42.0).abs() < 1e-9);
        assert_eq!(e.observations(), 100);
    }

    #[test]
    fn stays_within_observation_envelope() {
        let mut e = Ewma::new(0.4, 3.0);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            e.update(x);
            assert!(e.value() >= 1.0 && e.value() <= 5.0);
        }
    }

    #[test]
    #[should_panic(expected = "β must be in")]
    fn invalid_beta_rejected() {
        let _ = Ewma::new(1.5, 0.0);
    }
}
