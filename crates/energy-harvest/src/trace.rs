//! Harvest power traces.

use std::fmt;
use std::sync::Arc;

use blam_units::{Duration, Joules, SimTime, Watts};
use serde::{Deserialize, Serialize};

/// Anything that can report harvested power over simulated time.
///
/// Implementors must provide *exact* energy integration so the
/// simulator can skip across hours of sleep in one step without
/// accumulating error.
pub trait HarvestSource {
    /// Instantaneous power at `at`.
    fn power_at(&self, at: SimTime) -> Watts;

    /// Energy harvested over `[from, to)`.
    fn energy_between(&self, from: SimTime, to: SimTime) -> Joules;

    /// The peak power of the source (used for scaling rules).
    fn peak_power(&self) -> Watts;
}

/// A harvested-power time series sampled at a fixed step, held constant
/// within each step, and extended cyclically beyond its end.
///
/// The cyclic extension is what lets the paper's year-long solar trace
/// drive 15-year lifespan simulations.
///
/// # Examples
///
/// ```
/// use blam_energy_harvest::{HarvestSource, HarvestTrace};
/// use blam_units::{Duration, Joules, SimTime, Watts};
///
/// let trace = HarvestTrace::from_samples(
///     Duration::from_mins(30),
///     vec![Watts(0.0), Watts(2.0), Watts(1.0)],
/// );
/// // Integrate across a step boundary: 15 min of 2 W + 15 min of 1 W.
/// let e = trace.energy_between(SimTime::from_secs(45 * 60), SimTime::from_secs(75 * 60));
/// assert!((e.0 - (2.0 * 900.0 + 1.0 * 900.0)).abs() < 1e-9);
/// // Cyclic wrap: 90 minutes in, the trace restarts.
/// assert_eq!(trace.power_at(SimTime::from_secs(90 * 60)), Watts(0.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HarvestTrace {
    step: Duration,
    samples: Vec<Watts>,
}

impl HarvestTrace {
    /// Creates a trace from power samples at a fixed `step`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `step` is zero.
    #[must_use]
    pub fn from_samples(step: Duration, samples: Vec<Watts>) -> Self {
        assert!(
            !samples.is_empty(),
            "harvest trace needs at least one sample"
        );
        assert!(!step.is_zero(), "harvest trace step must be positive");
        HarvestTrace { step, samples }
    }

    /// Creates a trace by sampling `f` at each step midpoint over
    /// `duration`.
    ///
    /// # Panics
    ///
    /// Panics if `duration < step` or `step` is zero.
    #[must_use]
    pub fn from_fn(
        step: Duration,
        duration: Duration,
        mut f: impl FnMut(SimTime) -> Watts,
    ) -> Self {
        assert!(!step.is_zero(), "harvest trace step must be positive");
        let n = duration / step;
        assert!(n > 0, "duration must cover at least one step");
        let samples = (0..n)
            .map(|i| f(SimTime::ZERO + step * i + step / 2))
            .collect();
        HarvestTrace { step, samples }
    }

    /// A constant-power trace (useful in tests and toy scenarios).
    #[must_use]
    pub fn constant(power: Watts) -> Self {
        HarvestTrace::from_samples(Duration::from_hours(1), vec![power])
    }

    /// Parses a trace from `seconds,watts` CSV lines (comments with `#`,
    /// blank lines ignored). Samples must be equally spaced and start at
    /// zero — the format of the NREL-style traces the paper uses.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed line or spacing
    /// violation.
    pub fn from_csv(text: &str) -> Result<Self, String> {
        let mut rows: Vec<(u64, f64)> = Vec::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split(',');
            let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
                return Err(format!("line {}: expected `seconds,watts`", ln + 1));
            };
            let secs: u64 = a
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad seconds: {e}", ln + 1))?;
            let watts: f64 = b
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad watts: {e}", ln + 1))?;
            rows.push((secs, watts));
        }
        if rows.len() < 2 {
            return Err("trace needs at least two samples".into());
        }
        let step = rows[1].0 - rows[0].0;
        if step == 0 {
            return Err("sample spacing must be positive".into());
        }
        for (i, w) in rows.windows(2).enumerate() {
            if w[1].0 - w[0].0 != step {
                return Err(format!("uneven spacing at row {}", i + 1));
            }
        }
        Ok(HarvestTrace::from_samples(
            Duration::from_secs(step),
            rows.into_iter().map(|(_, w)| Watts(w)).collect(),
        ))
    }

    /// The sampling step.
    #[must_use]
    pub fn step(&self) -> Duration {
        self.step
    }

    /// The duration of one period of the trace.
    #[must_use]
    pub fn period(&self) -> Duration {
        self.step * self.samples.len() as u64
    }

    /// Number of samples in one period.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the trace has no samples (cannot occur via constructors).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Multiplies every sample by `factor`.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        HarvestTrace {
            step: self.step,
            samples: self.samples.iter().map(|w| *w * factor).collect(),
        }
    }

    /// Rescales so the trace's peak equals `peak`.
    ///
    /// The paper scales its NREL trace so that *peak power generates
    /// enough energy for two transmissions* per forecast window:
    /// `peak = 2 · E_tx / window`.
    ///
    /// # Panics
    ///
    /// Panics if the trace is identically zero.
    #[must_use]
    pub fn scaled_to_peak(&self, peak: Watts) -> Self {
        let current = self.peak_power();
        assert!(current.0 > 0.0, "cannot rescale an all-zero trace");
        self.scaled(peak.0 / current.0)
    }

    fn index_at(&self, at: SimTime) -> usize {
        ((at % self.period()) / self.step) as usize % self.samples.len()
    }
}

impl HarvestSource for HarvestTrace {
    fn power_at(&self, at: SimTime) -> Watts {
        self.samples[self.index_at(at)]
    }

    fn energy_between(&self, from: SimTime, to: SimTime) -> Joules {
        if to <= from {
            return Joules::ZERO;
        }
        let period = self.period();
        let span = to - from;
        // Whole periods integrate to the same total.
        let whole = span / period;
        let mut energy = if whole > 0 {
            let one: Joules = self.samples.iter().map(|&w| w * self.step).sum();
            one * whole as f64
        } else {
            Joules::ZERO
        };
        // Remainder: walk the covered steps.
        let mut t = from + period * whole;
        while t < to {
            let idx = self.index_at(t);
            let step_end = t - (t % self.step) + self.step;
            let seg_end = step_end.min(to);
            energy += self.samples[idx] * (seg_end - t);
            t = seg_end;
        }
        energy
    }

    fn peak_power(&self) -> Watts {
        self.samples.iter().copied().fold(Watts::ZERO, Watts::max)
    }
}

impl<T: HarvestSource + ?Sized> HarvestSource for Arc<T> {
    fn power_at(&self, at: SimTime) -> Watts {
        (**self).power_at(at)
    }
    fn energy_between(&self, from: SimTime, to: SimTime) -> Joules {
        (**self).energy_between(from, to)
    }
    fn peak_power(&self) -> Watts {
        (**self).peak_power()
    }
}

impl fmt::Display for HarvestTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "harvest trace: {} samples @ {} (peak {})",
            self.samples.len(),
            self.step,
            self.peak_power()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_step() -> HarvestTrace {
        HarvestTrace::from_samples(
            Duration::from_mins(10),
            vec![Watts(1.0), Watts(3.0), Watts(0.0)],
        )
    }

    #[test]
    fn power_lookup_steps() {
        let t = three_step();
        assert_eq!(t.power_at(SimTime::ZERO), Watts(1.0));
        assert_eq!(t.power_at(SimTime::from_secs(599)), Watts(1.0));
        assert_eq!(t.power_at(SimTime::from_secs(600)), Watts(3.0));
        assert_eq!(t.power_at(SimTime::from_secs(1500)), Watts(0.0));
    }

    #[test]
    fn power_wraps_cyclically() {
        let t = three_step();
        let period = t.period();
        for secs in [0u64, 100, 700, 1500] {
            let a = t.power_at(SimTime::from_secs(secs));
            let b = t.power_at(SimTime::from_secs(secs) + period);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn energy_whole_period() {
        let t = three_step();
        let e = t.energy_between(SimTime::ZERO, SimTime::ZERO + t.period());
        // (1 + 3 + 0) W × 600 s
        assert!((e.0 - 2_400.0).abs() < 1e-9);
    }

    #[test]
    fn energy_multi_period_plus_fraction() {
        let t = three_step();
        let from = SimTime::ZERO;
        let to = SimTime::ZERO + t.period() * 2 + Duration::from_mins(15);
        let e = t.energy_between(from, to);
        // 2 periods (4800 J) + 10 min @ 1 W (600) + 5 min @ 3 W (900).
        assert!((e.0 - 6_300.0).abs() < 1e-9, "got {e}");
    }

    #[test]
    fn energy_zero_or_reversed_interval() {
        let t = three_step();
        assert_eq!(
            t.energy_between(SimTime::from_secs(50), SimTime::from_secs(50)),
            Joules::ZERO
        );
        assert_eq!(
            t.energy_between(SimTime::from_secs(60), SimTime::from_secs(50)),
            Joules::ZERO
        );
    }

    #[test]
    fn energy_is_additive() {
        let t = three_step();
        let (a, b, c) = (
            SimTime::from_secs(123),
            SimTime::from_secs(987),
            SimTime::from_secs(4_321),
        );
        let whole = t.energy_between(a, c);
        let split = t.energy_between(a, b) + t.energy_between(b, c);
        assert!((whole - split).0.abs() < 1e-9);
    }

    #[test]
    fn scaling() {
        let t = three_step().scaled(2.0);
        assert_eq!(t.peak_power(), Watts(6.0));
        let t = t.scaled_to_peak(Watts(1.5));
        assert_eq!(t.peak_power(), Watts(1.5));
    }

    #[test]
    fn from_fn_samples_midpoints() {
        let t = HarvestTrace::from_fn(Duration::from_mins(1), Duration::from_mins(3), |at| {
            Watts(at.as_secs_f64())
        });
        assert_eq!(t.len(), 3);
        assert_eq!(t.power_at(SimTime::ZERO), Watts(30.0));
    }

    #[test]
    fn csv_roundtrip() {
        let t = HarvestTrace::from_csv("# comment\n0,0.5\n300,1.5\n600,0.0\n").unwrap();
        assert_eq!(t.step(), Duration::from_secs(300));
        assert_eq!(t.len(), 3);
        assert_eq!(t.power_at(SimTime::from_secs(400)), Watts(1.5));
    }

    #[test]
    fn csv_rejects_malformed() {
        assert!(HarvestTrace::from_csv("").is_err());
        assert!(HarvestTrace::from_csv("0,1.0").is_err());
        assert!(HarvestTrace::from_csv("0,1.0\n10,x").is_err());
        assert!(HarvestTrace::from_csv("0,1.0\n10,2.0\n30,1.0").is_err());
    }

    #[test]
    fn constant_trace() {
        let t = HarvestTrace::constant(Watts(0.004));
        let e = t.energy_between(SimTime::ZERO, SimTime::ZERO + Duration::from_days(1));
        assert!((e.0 - 0.004 * 86_400.0).abs() < 1e-9);
    }

    #[test]
    fn arc_delegation() {
        let t = Arc::new(three_step());
        assert_eq!(t.power_at(SimTime::ZERO), Watts(1.0));
        assert_eq!(t.peak_power(), Watts(3.0));
    }
}
