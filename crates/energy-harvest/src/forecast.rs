//! Short-horizon green-energy forecasters.
//!
//! The paper assumes each node runs a lightweight, locally-trained
//! forecaster (its ref. \[22\]) able to predict solar generation over
//! the next sampling period at forecast-window granularity (1–2 min).
//! Proposing forecasting models is out of scope for the paper and for
//! this reproduction; what matters to the protocol is the *interface* —
//! per-window energy predictions — and its error characteristics. Three
//! implementations cover the spectrum:
//!
//! * [`Oracle`] — perfect knowledge (upper bound / ablation).
//! * [`DiurnalPersistence`] — predicts each time-of-day bucket with an
//!   EWMA of past observations at the same time of day; uses only
//!   locally observable data, like \[22\].
//! * [`NoisyOracle`] — the oracle corrupted by deterministic
//!   multiplicative noise, for sensitivity ablations.

use blam_units::{Duration, Joules, SimTime};

use crate::ewma::Ewma;
use crate::trace::HarvestSource;

/// A per-window green-energy predictor.
pub trait Forecaster {
    /// Feeds back the energy actually harvested over
    /// `[start, start + window)`.
    fn observe(&mut self, start: SimTime, window: Duration, energy: Joules);

    /// Predicts the energy harvested over `[start, start + window)`.
    fn predict(&self, start: SimTime, window: Duration) -> Joules;

    /// Predicts each of the `count` consecutive windows starting at
    /// `start` — the per-forecast-window vector Algorithm 1 consumes.
    fn predict_horizon(&self, start: SimTime, window: Duration, count: usize) -> Vec<Joules> {
        (0..count)
            .map(|i| self.predict(start + window * i as u64, window))
            .collect()
    }
}

/// Clairvoyant forecaster: reads the actual trace.
#[derive(Debug, Clone)]
pub struct Oracle<S> {
    source: S,
}

impl<S: HarvestSource> Oracle<S> {
    /// Wraps a harvest source.
    #[must_use]
    pub fn new(source: S) -> Self {
        Oracle { source }
    }
}

impl<S: HarvestSource> Forecaster for Oracle<S> {
    fn observe(&mut self, _start: SimTime, _window: Duration, _energy: Joules) {}

    fn predict(&self, start: SimTime, window: Duration) -> Joules {
        self.source.energy_between(start, start + window)
    }
}

/// Time-of-day persistence forecaster.
///
/// Divides the day into buckets of `bucket` length and keeps, per
/// bucket, an EWMA of observed harvest energy normalized per second.
/// Predictions integrate the bucket estimates over the requested
/// window. Unseen buckets predict zero (conservative: the protocol then
/// assumes the transmission must come from the battery).
///
/// # Examples
///
/// ```
/// use blam_energy_harvest::{DiurnalPersistence, Forecaster};
/// use blam_units::{Duration, Joules, SimTime};
///
/// let w = Duration::from_mins(1);
/// let mut f = DiurnalPersistence::new(w, 0.3);
/// let nine_am = SimTime::ZERO + Duration::from_hours(9);
/// f.observe(nine_am, w, Joules(0.24));
/// // Tomorrow at 09:00 it expects what it saw today at 09:00.
/// let tomorrow = nine_am + Duration::from_days(1);
/// assert!((f.predict(tomorrow, w).0 - 0.24).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DiurnalPersistence {
    bucket: Duration,
    beta: f64,
    /// Per-bucket EWMA of power (J/s), `None` until first observation.
    buckets: Vec<Option<Ewma>>,
}

impl DiurnalPersistence {
    /// Creates a forecaster with the given bucket length and EWMA β.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero, longer than a day, or does not
    /// divide a day evenly, or if `beta` is outside `[0, 1]`.
    #[must_use]
    pub fn new(bucket: Duration, beta: f64) -> Self {
        assert!(
            !bucket.is_zero() && bucket <= Duration::DAY,
            "bucket must be within (0, 1 day], got {bucket}"
        );
        assert!(
            (Duration::DAY % bucket).is_zero(),
            "bucket must divide a day evenly, got {bucket}"
        );
        assert!((0.0..=1.0).contains(&beta), "β must be in [0,1]");
        let n = (Duration::DAY / bucket) as usize;
        DiurnalPersistence {
            bucket,
            beta,
            buckets: vec![None; n],
        }
    }

    fn bucket_index(&self, at: SimTime) -> usize {
        ((at % Duration::DAY) / self.bucket) as usize % self.buckets.len()
    }

    /// Average predicted power (J/s) for the bucket containing `at`.
    #[must_use]
    pub fn bucket_power(&self, at: SimTime) -> f64 {
        self.buckets[self.bucket_index(at)]
            .as_ref()
            .map_or(0.0, Ewma::value)
    }
}

impl Forecaster for DiurnalPersistence {
    fn observe(&mut self, start: SimTime, window: Duration, energy: Joules) {
        if window.is_zero() {
            return;
        }
        let power = energy.0 / window.as_secs_f64();
        // Attribute the observation to every bucket the window covers.
        let mut t = start;
        let end = start + window;
        while t < end {
            let idx = self.bucket_index(t);
            let bucket_end = t - (t % self.bucket) + self.bucket;
            match &mut self.buckets[idx] {
                Some(e) => {
                    e.update(power);
                }
                None => self.buckets[idx] = Some(Ewma::new(self.beta, power)),
            }
            t = bucket_end.min(end);
        }
    }

    fn predict(&self, start: SimTime, window: Duration) -> Joules {
        // Integrate bucket power over the window.
        let mut energy = 0.0;
        let mut t = start;
        let end = start + window;
        while t < end {
            let bucket_end = t - (t % self.bucket) + self.bucket;
            let seg_end = bucket_end.min(end);
            energy += self.bucket_power(t) * (seg_end - t).as_secs_f64();
            t = seg_end;
        }
        Joules(energy)
    }
}

/// An oracle corrupted by deterministic multiplicative noise — used to
/// study the protocol's sensitivity to forecast error.
///
/// The noise factor for a window starting at `t` is
/// `exp(σ · z(t))` where `z(t)` is a standard-normal-ish value derived
/// from a hash of `(seed, t)` — reproducible without mutable state.
#[derive(Debug, Clone)]
pub struct NoisyOracle<S> {
    inner: Oracle<S>,
    sigma: f64,
    seed: u64,
}

impl<S: HarvestSource> NoisyOracle<S> {
    /// Wraps a source with log-normal error of scale `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    #[must_use]
    pub fn new(source: S, sigma: f64, seed: u64) -> Self {
        assert!(sigma.is_finite() && sigma >= 0.0, "σ must be ≥ 0");
        NoisyOracle {
            inner: Oracle::new(source),
            sigma,
            seed,
        }
    }

    fn noise(&self, at: SimTime) -> f64 {
        // SplitMix64 over (seed, time) → two uniforms → Box-Muller.
        let mut x = self.seed ^ at.as_millis().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64
        };
        let (u1, u2) = (next().max(1e-12), next());
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.sigma * z).exp()
    }
}

impl<S: HarvestSource> Forecaster for NoisyOracle<S> {
    fn observe(&mut self, _start: SimTime, _window: Duration, _energy: Joules) {}

    fn predict(&self, start: SimTime, window: Duration) -> Joules {
        self.inner.predict(start, window) * self.noise(start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::HarvestTrace;
    use blam_units::Watts;

    #[test]
    fn oracle_predicts_exactly() {
        let trace = HarvestTrace::constant(Watts(2.0));
        let f = Oracle::new(trace);
        let e = f.predict(SimTime::from_secs(100), Duration::from_secs(60));
        assert!((e.0 - 120.0).abs() < 1e-9);
    }

    #[test]
    fn oracle_horizon_covers_consecutive_windows() {
        let trace = HarvestTrace::from_samples(
            Duration::from_mins(1),
            vec![Watts(1.0), Watts(2.0), Watts(3.0)],
        );
        let f = Oracle::new(trace);
        let h = f.predict_horizon(SimTime::ZERO, Duration::from_mins(1), 3);
        assert_eq!(h.len(), 3);
        assert!((h[0].0 - 60.0).abs() < 1e-9);
        assert!((h[1].0 - 120.0).abs() < 1e-9);
        assert!((h[2].0 - 180.0).abs() < 1e-9);
    }

    #[test]
    fn persistence_unseen_buckets_predict_zero() {
        let f = DiurnalPersistence::new(Duration::from_mins(1), 0.3);
        assert_eq!(
            f.predict(SimTime::from_secs(0), Duration::from_mins(1)),
            Joules::ZERO
        );
    }

    #[test]
    fn persistence_learns_time_of_day() {
        let w = Duration::from_mins(1);
        let mut f = DiurnalPersistence::new(w, 0.5);
        let noon = SimTime::ZERO + Duration::from_hours(12);
        let midnight = SimTime::ZERO;
        for day in 0..5u64 {
            f.observe(noon + Duration::from_days(day), w, Joules(0.3));
            f.observe(midnight + Duration::from_days(day), w, Joules(0.0));
        }
        let p_noon = f.predict(noon + Duration::from_days(7), w);
        let p_night = f.predict(midnight + Duration::from_days(7), w);
        assert!((p_noon.0 - 0.3).abs() < 0.02, "noon {p_noon}");
        assert!(p_night.0 < 0.01, "midnight {p_night}");
    }

    #[test]
    fn persistence_window_spanning_buckets_integrates() {
        let bucket = Duration::from_mins(1);
        let mut f = DiurnalPersistence::new(bucket, 1.0);
        let t0 = SimTime::ZERO + Duration::from_hours(9);
        // Bucket A: 1 W; bucket B: 3 W.
        f.observe(t0, bucket, Joules(60.0));
        f.observe(t0 + bucket, bucket, Joules(180.0));
        // Window straddling the two buckets half-and-half.
        let p = f.predict(t0 + Duration::from_secs(30), Duration::from_mins(1));
        assert!((p.0 - (30.0 * 1.0 + 30.0 * 3.0)).abs() < 1e-9, "{p}");
    }

    #[test]
    fn persistence_ewma_converges_to_new_regime() {
        let w = Duration::from_mins(1);
        let mut f = DiurnalPersistence::new(w, 0.4);
        let t = SimTime::ZERO + Duration::from_hours(10);
        for day in 0..3u64 {
            f.observe(t + Duration::from_days(day), w, Joules(0.1));
        }
        for day in 3..20u64 {
            f.observe(t + Duration::from_days(day), w, Joules(0.5));
        }
        let p = f.predict(t + Duration::from_days(30), w);
        assert!((p.0 - 0.5).abs() < 0.01, "{p}");
    }

    #[test]
    fn noisy_oracle_is_deterministic_and_unbiased_ish() {
        let trace = HarvestTrace::constant(Watts(1.0));
        let f = NoisyOracle::new(trace.clone(), 0.2, 99);
        let g = NoisyOracle::new(trace, 0.2, 99);
        let w = Duration::from_mins(1);
        let mut sum = 0.0;
        for i in 0..500u64 {
            let t = SimTime::from_secs(i * 60);
            let a = f.predict(t, w);
            assert_eq!(a, g.predict(t, w), "determinism at {t}");
            sum += a.0;
        }
        let mean = sum / 500.0;
        // Log-normal with σ=0.2 has mean e^{σ²/2} ≈ 1.02 of truth (60 J).
        assert!(
            (mean / 60.0 - 1.0).abs() < 0.1,
            "mean ratio {}",
            mean / 60.0
        );
    }

    #[test]
    fn noisy_oracle_zero_sigma_is_exact() {
        let trace = HarvestTrace::constant(Watts(1.0));
        let f = NoisyOracle::new(trace, 0.0, 1);
        let e = f.predict(SimTime::from_secs(5), Duration::from_secs(10));
        assert!((e.0 - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "divide a day")]
    fn uneven_bucket_rejected() {
        let _ = DiurnalPersistence::new(Duration::from_mins(7), 0.3);
    }
}
