//! Synthetic solar generation.
//!
//! Substitutes for the paper's year-long NREL solar trace (their ref.
//! \[26\]), which is not redistributable here. The model composes
//!
//! * a **clear-sky** component from solar elevation (latitude,
//!   day-of-year, time-of-day),
//! * a **seasonal** modulation implied by the declination cycle, and
//! * a **cloud** component: a three-state Markov chain
//!   (clear / partly cloudy / overcast) with per-step attenuation
//!   jitter — the paper likewise injects "random variations … to
//!   emulate cloud cover and shades over the deployment area".
//!
//! [`SolarField`] derives per-node sources cheaply: nodes share a small
//! number of regional cloud traces and differ by a static shading
//! factor, so a 500-node field does not store 500 year-long traces.

use std::f64::consts::PI;
use std::sync::Arc;

use blam_units::{Duration, Joules, SimTime, Watts};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::trace::{HarvestSource, HarvestTrace};

/// Markov cloud-cover model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CloudModel {
    /// Probability per step of leaving the current sky state.
    pub transition_prob: f64,
    /// Probability of entering the clear state on a transition (the
    /// remainder splits between partly cloudy and overcast 3:2).
    pub clear_weight: f64,
    /// Transmission factor in the clear state.
    pub clear_factor: f64,
    /// Transmission factor when partly cloudy.
    pub partly_factor: f64,
    /// Transmission factor when overcast.
    pub overcast_factor: f64,
    /// Uniform ± jitter applied to the factor each step.
    pub jitter: f64,
}

impl Default for CloudModel {
    /// Mid-latitude mix: ~2.8 h dwell per sky state at a 5-min step,
    /// half the transitions landing on clear sky; mean transmission
    /// ≈ 0.73 — comparable to the NREL sites the paper's trace comes
    /// from.
    fn default() -> Self {
        CloudModel {
            transition_prob: 0.03,
            clear_weight: 0.5,
            clear_factor: 1.0,
            partly_factor: 0.6,
            overcast_factor: 0.25,
            jitter: 0.08,
        }
    }
}

impl CloudModel {
    fn step_factor(&self, state: &mut u8, rng: &mut impl Rng) -> f64 {
        if rng.gen::<f64>() < self.transition_prob {
            let u = rng.gen::<f64>();
            *state = if u < self.clear_weight {
                0
            } else if u < self.clear_weight + (1.0 - self.clear_weight) * 0.6 {
                1
            } else {
                2
            };
        }
        let base = match *state {
            0 => self.clear_factor,
            1 => self.partly_factor,
            _ => self.overcast_factor,
        };
        let jitter = rng.gen_range(-self.jitter..=self.jitter);
        (base + jitter).clamp(0.0, 1.0)
    }
}

/// Synthetic solar panel model.
///
/// # Examples
///
/// ```
/// use blam_energy_harvest::{HarvestSource, SolarModel};
/// use blam_units::{Duration, SimTime, Watts};
/// use rand::SeedableRng;
///
/// let model = SolarModel {
///     peak_power: Watts::from_milliwatts(100.0),
///     ..SolarModel::default()
/// };
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let trace = model.generate(2, Duration::from_mins(5), &mut rng);
/// assert!(trace.peak_power().0 <= 0.1 + 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolarModel {
    /// Site latitude in degrees.
    pub latitude_deg: f64,
    /// Panel output at full perpendicular sun.
    pub peak_power: Watts,
    /// Day of year (0-based) at which the generated trace starts.
    pub start_day_of_year: u32,
    /// Cloud model.
    pub clouds: CloudModel,
}

impl Default for SolarModel {
    /// A mid-latitude site (40° N, roughly the NREL Colorado traces),
    /// 1 W panel, starting January 1st.
    fn default() -> Self {
        SolarModel {
            latitude_deg: 40.0,
            peak_power: Watts(1.0),
            start_day_of_year: 0,
            clouds: CloudModel::default(),
        }
    }
}

impl SolarModel {
    /// Clear-sky output fraction (0–1) at a given day of year and
    /// seconds past local midnight: `max(0, sin(solar elevation))`.
    #[must_use]
    pub fn clear_sky_fraction(&self, day_of_year: u32, secs_of_day: u64) -> f64 {
        let lat = self.latitude_deg.to_radians();
        // Solar declination (Cooper's formula).
        let decl = (23.45f64).to_radians()
            * (2.0 * PI * (284.0 + f64::from(day_of_year) + 1.0) / 365.0).sin();
        // Hour angle: 0 at solar noon, ±π at midnight.
        let hour_angle = 2.0 * PI * (secs_of_day as f64 / 86_400.0) - PI;
        let sin_elev = lat.sin() * decl.sin() + lat.cos() * decl.cos() * hour_angle.cos();
        sin_elev.max(0.0)
    }

    /// Generates a `days`-long trace at the given `step`, with clouds
    /// driven by `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero or longer than a day.
    #[must_use]
    pub fn generate(&self, days: u32, step: Duration, rng: &mut impl Rng) -> HarvestTrace {
        assert!(!step.is_zero() && step <= Duration::DAY, "bad step {step}");
        let steps_per_day = Duration::DAY / step;
        let mut samples = Vec::with_capacity((u64::from(days) * steps_per_day) as usize);
        let mut sky_state = 0u8;
        for d in 0..days {
            let doy = (self.start_day_of_year + d) % 365;
            for s in 0..steps_per_day {
                let mid = (step * s + step / 2).as_secs();
                let clear = self.clear_sky_fraction(doy, mid);
                let cloud = self.clouds.step_factor(&mut sky_state, rng);
                samples.push(self.peak_power * (clear * cloud));
            }
        }
        HarvestTrace::from_samples(step, samples)
    }
}

/// A per-node harvest source: a shared regional trace dimmed by a
/// static shading factor.
#[derive(Debug, Clone)]
pub struct NodeHarvest {
    region: Arc<HarvestTrace>,
    shading: f64,
}

impl NodeHarvest {
    /// Creates a node source over a regional trace with a shading
    /// factor in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `shading` is outside `[0, 1]`.
    #[must_use]
    pub fn new(region: Arc<HarvestTrace>, shading: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&shading),
            "shading factor must be in [0,1], got {shading}"
        );
        NodeHarvest { region, shading }
    }

    /// The static shading factor.
    #[must_use]
    pub fn shading(&self) -> f64 {
        self.shading
    }
}

impl HarvestSource for NodeHarvest {
    fn power_at(&self, at: SimTime) -> Watts {
        self.region.power_at(at) * self.shading
    }
    fn energy_between(&self, from: SimTime, to: SimTime) -> Joules {
        self.region.energy_between(from, to) * self.shading
    }
    fn peak_power(&self) -> Watts {
        self.region.peak_power() * self.shading
    }
}

/// A deployment-wide solar field: `regions` independently-clouded
/// traces; each node draws from one region with its own shading factor.
///
/// # Examples
///
/// ```
/// use blam_energy_harvest::{HarvestSource, SolarField, SolarModel};
/// use blam_units::Duration;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
/// let field = SolarField::generate(&SolarModel::default(), 4, 7, Duration::from_mins(5), &mut rng);
/// let a = field.node_source(0, &mut rng);
/// let b = field.node_source(1, &mut rng);
/// assert!(a.peak_power().0 > 0.0 && b.peak_power().0 > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SolarField {
    regions: Vec<Arc<HarvestTrace>>,
    /// Minimum shading factor drawn for a node (maximum is 1).
    min_shading: f64,
}

impl SolarField {
    /// Generates `regions` cloud realizations of `model` over `days`.
    ///
    /// # Panics
    ///
    /// Panics if `regions` is zero.
    #[must_use]
    pub fn generate(
        model: &SolarModel,
        regions: usize,
        days: u32,
        step: Duration,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(regions > 0, "need at least one cloud region");
        let regions = (0..regions)
            .map(|_| Arc::new(model.generate(days, step, rng)))
            .collect();
        SolarField {
            regions,
            min_shading: 0.7,
        }
    }

    /// Builds a field over pre-existing regional traces.
    ///
    /// # Panics
    ///
    /// Panics if `regions` is empty.
    #[must_use]
    pub fn from_regions(regions: Vec<Arc<HarvestTrace>>) -> Self {
        assert!(!regions.is_empty(), "need at least one cloud region");
        SolarField {
            regions,
            min_shading: 0.7,
        }
    }

    /// Sets the lower bound of the per-node shading draw.
    ///
    /// # Panics
    ///
    /// Panics if `min` is outside `[0, 1]`.
    #[must_use]
    pub fn with_min_shading(mut self, min: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&min),
            "min shading in [0,1], got {min}"
        );
        self.min_shading = min;
        self
    }

    /// Number of cloud regions.
    #[must_use]
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// The raw regional trace `i` (modulo the region count).
    #[must_use]
    pub fn region(&self, i: usize) -> &Arc<HarvestTrace> {
        &self.regions[i % self.regions.len()]
    }

    /// Derives the harvest source for node `i`: region `i mod regions`,
    /// with a shading factor drawn uniformly from
    /// `[min_shading, 1]`.
    #[must_use]
    pub fn node_source(&self, i: usize, rng: &mut impl Rng) -> NodeHarvest {
        let shading = rng.gen_range(self.min_shading..=1.0);
        NodeHarvest::new(Arc::clone(self.region(i)), shading)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn clear_sky_is_zero_at_night_and_peaks_at_noon() {
        let m = SolarModel::default();
        let midnight = m.clear_sky_fraction(180, 0);
        let noon = m.clear_sky_fraction(180, 43_200);
        let evening = m.clear_sky_fraction(180, 80_000);
        assert_eq!(midnight, 0.0);
        assert!(noon > 0.8, "midsummer noon fraction {noon}");
        assert!(evening < noon);
    }

    #[test]
    fn summer_outshines_winter_at_northern_latitudes() {
        let m = SolarModel::default();
        let summer_noon = m.clear_sky_fraction(172, 43_200);
        let winter_noon = m.clear_sky_fraction(355, 43_200);
        assert!(summer_noon > winter_noon + 0.2);
    }

    #[test]
    fn generated_trace_has_diurnal_cycle() {
        let m = SolarModel::default();
        let t = m.generate(5, Duration::from_mins(5), &mut rng());
        assert_eq!(t.period(), Duration::from_days(5));
        let mut any_day_power = false;
        for d in 0..5u64 {
            let night = t.power_at(SimTime::ZERO + Duration::from_days(d));
            assert_eq!(night, Watts::ZERO, "midnight of day {d}");
            let noon =
                t.power_at(SimTime::ZERO + Duration::from_days(d) + Duration::from_hours(12));
            any_day_power |= noon.0 > 0.0;
        }
        assert!(any_day_power, "no day produced noon power (all overcast?)");
    }

    #[test]
    fn clouds_reduce_energy_vs_clear_sky() {
        let clear = SolarModel {
            clouds: CloudModel {
                transition_prob: 0.0,
                clear_factor: 1.0,
                jitter: 0.0,
                ..CloudModel::default()
            },
            ..SolarModel::default()
        };
        let cloudy = SolarModel {
            clouds: CloudModel {
                transition_prob: 0.5,
                jitter: 0.0,
                ..CloudModel::default()
            },
            ..SolarModel::default()
        };
        let step = Duration::from_mins(5);
        let span = Duration::from_days(30);
        let e_clear = clear
            .generate(30, step, &mut rng())
            .energy_between(SimTime::ZERO, SimTime::ZERO + span);
        let e_cloudy = cloudy
            .generate(30, step, &mut rng())
            .energy_between(SimTime::ZERO, SimTime::ZERO + span);
        assert!(e_cloudy.0 < e_clear.0 * 0.9, "{e_cloudy} !< {e_clear}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let m = SolarModel::default();
        let a = m.generate(3, Duration::from_mins(10), &mut rng());
        let b = m.generate(3, Duration::from_mins(10), &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn node_sources_share_regions_but_differ_in_shading() {
        let mut r = rng();
        let field = SolarField::generate(
            &SolarModel::default(),
            3,
            2,
            Duration::from_mins(10),
            &mut r,
        );
        assert_eq!(field.region_count(), 3);
        let a = field.node_source(0, &mut r);
        let b = field.node_source(3, &mut r); // same region as node 0
        assert!(Arc::ptr_eq(field.region(0), field.region(3)));
        let t = SimTime::ZERO + Duration::from_hours(12);
        let ratio_a = a.power_at(t).0 / field.region(0).power_at(t).0.max(1e-12);
        assert!((ratio_a - a.shading()).abs() < 1e-9);
        assert!(a.shading() >= 0.7 && b.shading() >= 0.7);
    }

    #[test]
    fn node_harvest_scales_energy() {
        let region = Arc::new(HarvestTrace::constant(Watts(1.0)));
        let node = NodeHarvest::new(region, 0.8);
        let e = node.energy_between(SimTime::ZERO, SimTime::from_secs(100));
        assert!((e.0 - 80.0).abs() < 1e-9);
        assert_eq!(node.peak_power(), Watts(0.8));
    }

    #[test]
    #[should_panic(expected = "shading factor")]
    fn invalid_shading_rejected() {
        let _ = NodeHarvest::new(Arc::new(HarvestTrace::constant(Watts(1.0))), 1.5);
    }
}
