//! Synthetic wind generation.
//!
//! The paper's introduction motivates wind (and vibration) harvesting
//! alongside solar; the protocol itself only consumes per-window energy
//! predictions, so any green source with a plausible autocorrelation
//! structure slots in. This model gives wind its essential character —
//! no diurnal guarantee, multi-hour lulls and gusts — so experiments can
//! test the protocol's source-independence claim (§I: "applicable to
//! most other LPWANs" extends to most other harvesters).
//!
//! Model: wind speed follows a mean-reverting (Ornstein–Uhlenbeck-like)
//! random walk around a site mean, with a mild diurnal modulation
//! (daytime heating strengthens surface wind). Power follows the
//! standard turbine curve: zero below cut-in, cubic between cut-in and
//! rated speed, constant at rated, zero above cut-out.

use blam_units::{Duration, Watts};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::trace::HarvestTrace;

/// Synthetic micro wind-turbine model.
///
/// # Examples
///
/// ```
/// use blam_energy_harvest::{HarvestSource, WindModel};
/// use blam_units::Duration;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
/// let trace = WindModel::default().generate(7, Duration::from_mins(5), &mut rng);
/// assert!(trace.peak_power().0 > 0.0);
/// assert!(trace.peak_power() <= WindModel::default().rated_power);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindModel {
    /// Site mean wind speed (m/s).
    pub mean_speed: f64,
    /// Mean-reversion rate per step (0–1; higher = choppier).
    pub reversion: f64,
    /// Per-step random shock scale (m/s).
    pub gust_scale: f64,
    /// Relative diurnal modulation amplitude (0–1).
    pub diurnal_amplitude: f64,
    /// Turbine cut-in speed (m/s).
    pub cut_in: f64,
    /// Rated speed (m/s): full power at and above this.
    pub rated_speed: f64,
    /// Cut-out speed (m/s): storm protection, zero power above.
    pub cut_out: f64,
    /// Electrical output at rated speed.
    pub rated_power: Watts,
}

impl Default for WindModel {
    /// A small 4 m/s site with a micro turbine rated at 1 W.
    fn default() -> Self {
        WindModel {
            mean_speed: 4.0,
            reversion: 0.05,
            gust_scale: 0.6,
            diurnal_amplitude: 0.3,
            cut_in: 2.0,
            rated_speed: 9.0,
            cut_out: 20.0,
            rated_power: Watts(1.0),
        }
    }
}

impl WindModel {
    /// Electrical power at wind speed `v` (m/s): the turbine curve.
    #[must_use]
    pub fn power_at_speed(&self, v: f64) -> Watts {
        if v < self.cut_in || v >= self.cut_out {
            return Watts::ZERO;
        }
        if v >= self.rated_speed {
            return self.rated_power;
        }
        // Cubic ramp normalized between cut-in and rated.
        let x =
            (v.powi(3) - self.cut_in.powi(3)) / (self.rated_speed.powi(3) - self.cut_in.powi(3));
        self.rated_power * x
    }

    /// Generates a `days`-long power trace at `step` resolution.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero or longer than a day.
    #[must_use]
    pub fn generate(&self, days: u32, step: Duration, rng: &mut impl Rng) -> HarvestTrace {
        assert!(!step.is_zero() && step <= Duration::DAY, "bad step {step}");
        let steps_per_day = Duration::DAY / step;
        let mut samples = Vec::with_capacity((u64::from(days) * steps_per_day) as usize);
        let mut speed = self.mean_speed;
        for _ in 0..days {
            for s in 0..steps_per_day {
                // Diurnal target: stronger surface wind mid-afternoon.
                let frac = (s as f64 + 0.5) / steps_per_day as f64;
                let diurnal =
                    1.0 + self.diurnal_amplitude * (std::f64::consts::TAU * (frac - 0.375)).sin();
                let target = self.mean_speed * diurnal;
                let shock = rng.gen_range(-1.0..=1.0) * self.gust_scale;
                speed += self.reversion * (target - speed) + shock;
                speed = speed.clamp(0.0, self.cut_out * 1.5);
                samples.push(self.power_at_speed(speed));
            }
        }
        HarvestTrace::from_samples(step, samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::HarvestSource;
    use blam_units::SimTime;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(11)
    }

    #[test]
    fn turbine_curve_regions() {
        let m = WindModel::default();
        assert_eq!(m.power_at_speed(0.0), Watts::ZERO);
        assert_eq!(m.power_at_speed(1.9), Watts::ZERO);
        assert!(m.power_at_speed(5.0).0 > 0.0);
        assert!(m.power_at_speed(5.0) < m.rated_power);
        assert_eq!(m.power_at_speed(9.0), m.rated_power);
        assert_eq!(m.power_at_speed(15.0), m.rated_power);
        assert_eq!(m.power_at_speed(25.0), Watts::ZERO, "cut-out");
    }

    #[test]
    fn curve_is_monotone_below_rated() {
        let m = WindModel::default();
        let mut last = -1.0;
        for v in 20..=90 {
            let p = m.power_at_speed(f64::from(v) / 10.0).0;
            assert!(p >= last, "power curve dipped at {v}");
            last = p;
        }
    }

    #[test]
    fn generated_trace_is_bounded_and_variable() {
        let m = WindModel::default();
        let t = m.generate(10, Duration::from_mins(5), &mut rng());
        assert!(t.peak_power() <= m.rated_power);
        // Wind must actually fluctuate: distinct power levels.
        let mut levels = std::collections::BTreeSet::new();
        for s in 0..(10 * 288) {
            let p = t.power_at(SimTime::from_secs(s * 300));
            levels.insert((p.as_milliwatts() * 1000.0) as i64);
        }
        assert!(levels.len() > 50, "wind trace looks constant");
    }

    #[test]
    fn wind_has_lulls_unlike_solar() {
        // Over ten days there should be at least one multi-hour lull
        // (zero output while a solar panel at noon would produce).
        let m = WindModel::default();
        let t = m.generate(10, Duration::from_mins(5), &mut rng());
        let mut longest_zero_run = 0u32;
        let mut run = 0u32;
        for s in 0..(10 * 288) {
            if t.power_at(SimTime::from_secs(s * 300)).0 <= 1e-12 {
                run += 1;
                longest_zero_run = longest_zero_run.max(run);
            } else {
                run = 0;
            }
        }
        assert!(
            longest_zero_run >= 6,
            "no lulls found ({longest_zero_run} steps)"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let m = WindModel::default();
        assert_eq!(
            m.generate(3, Duration::from_mins(10), &mut rng()),
            m.generate(3, Duration::from_mins(10), &mut rng())
        );
    }
}
