//! Property-based tests for harvest traces and forecasters.

use blam_energy_harvest::{DiurnalPersistence, Ewma, Forecaster, HarvestSource, HarvestTrace};
use blam_units::{Duration, Joules, SimTime, Watts};
use proptest::prelude::*;

fn any_trace() -> impl Strategy<Value = HarvestTrace> {
    (1u64..120, prop::collection::vec(0.0f64..5.0, 1..48)).prop_map(|(step_mins, samples)| {
        HarvestTrace::from_samples(
            Duration::from_mins(step_mins),
            samples.into_iter().map(Watts).collect(),
        )
    })
}

proptest! {
    /// Energy integration is additive over interval splits.
    #[test]
    fn energy_additive(trace in any_trace(), a in 0u64..10_000_000, b in 0u64..10_000_000, c in 0u64..10_000_000) {
        let mut ts = [a, b, c];
        ts.sort_unstable();
        let (t0, t1, t2) = (
            SimTime::from_millis(ts[0]),
            SimTime::from_millis(ts[1]),
            SimTime::from_millis(ts[2]),
        );
        let whole = trace.energy_between(t0, t2);
        let split = trace.energy_between(t0, t1) + trace.energy_between(t1, t2);
        prop_assert!((whole - split).0.abs() < 1e-6 * (1.0 + whole.0));
    }

    /// Integrated energy is bounded by peak power × interval.
    #[test]
    fn energy_bounded_by_peak(trace in any_trace(), start in 0u64..10_000_000, span in 0u64..10_000_000) {
        let t0 = SimTime::from_millis(start);
        let t1 = t0 + Duration::from_millis(span);
        let e = trace.energy_between(t0, t1);
        let bound = trace.peak_power() * Duration::from_millis(span);
        prop_assert!(e.0 >= -1e-12);
        prop_assert!(e.0 <= bound.0 + 1e-9);
    }

    /// Instantaneous power is periodic with the trace period.
    #[test]
    fn power_is_periodic(trace in any_trace(), at in 0u64..10_000_000) {
        let t = SimTime::from_millis(at);
        prop_assert_eq!(trace.power_at(t), trace.power_at(t + trace.period()));
    }

    /// Rescaling to a peak actually hits the peak and scales energy
    /// proportionally.
    #[test]
    fn scaled_to_peak_consistent(trace in any_trace(), peak in 0.001f64..10.0) {
        prop_assume!(trace.peak_power().0 > 0.0);
        let scaled = trace.scaled_to_peak(Watts(peak));
        prop_assert!((scaled.peak_power().0 - peak).abs() < 1e-9 * (1.0 + peak));
        let t0 = SimTime::ZERO;
        let t1 = SimTime::ZERO + trace.period();
        let ratio = peak / trace.peak_power().0;
        let orig = trace.energy_between(t0, t1);
        let new = scaled.energy_between(t0, t1);
        prop_assert!((new.0 - orig.0 * ratio).abs() < 1e-6 * (1.0 + new.0.abs()));
    }

    /// The persistence forecaster's predictions are non-negative and
    /// bounded by the largest power it has ever observed.
    #[test]
    fn persistence_bounded_by_observations(
        observations in prop::collection::vec((0u64..86_400, 0.0f64..2.0), 1..60),
    ) {
        let w = Duration::from_mins(1);
        let mut f = DiurnalPersistence::new(w, 0.4);
        let mut max_power = 0.0f64;
        for &(secs, e) in &observations {
            f.observe(SimTime::from_secs(secs), w, Joules(e));
            max_power = max_power.max(e / w.as_secs_f64());
        }
        for probe in 0..24u64 {
            let p = f.predict(SimTime::ZERO + Duration::from_hours(probe), w);
            prop_assert!(p.0 >= -1e-12);
            prop_assert!(p.0 <= max_power * w.as_secs_f64() + 1e-9);
        }
    }

    /// EWMA stays within the running min/max envelope of inputs.
    #[test]
    fn ewma_envelope(beta in 0.0f64..=1.0, init in 0.0f64..10.0, xs in prop::collection::vec(0.0f64..10.0, 1..50)) {
        let mut e = Ewma::new(beta, init);
        let mut lo = init;
        let mut hi = init;
        for &x in &xs {
            e.update(x);
            lo = lo.min(x);
            hi = hi.max(x);
            prop_assert!(e.value() >= lo - 1e-12 && e.value() <= hi + 1e-12);
        }
    }
}
