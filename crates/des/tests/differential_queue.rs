//! Differential oracle for the calendar event queue: drive the
//! optimized backend and the reference binary heap through identical
//! randomized schedule/cancel/pop/peek interleavings and require
//! identical observable behaviour at every step.
//!
//! The generator is a hand-rolled xorshift so the crate stays
//! dependency-free; each seed is an independent "property case".

use blam_des::{EventId, EventQueue};
use blam_units::SimTime;

/// xorshift64* — deterministic, seedable, good enough to shuffle op
/// sequences.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One randomized episode: both backends must agree on every return
/// value — schedule handles, cancel outcomes, peeks, pops, lengths.
fn run_episode(seed: u64, ops: usize, time_range_ms: u64) {
    let mut rng = XorShift(seed | 1);
    let mut fast: EventQueue<u64> = EventQueue::new();
    let mut slow: EventQueue<u64> = EventQueue::reference();
    let mut handles: Vec<EventId> = Vec::new();
    // Times never go below the last pop, mirroring Simulator usage
    // (the queue itself tolerates earlier times; `interleaved` unit
    // tests cover that separately).
    let mut floor_ms = 0u64;

    for op_idx in 0..ops {
        match rng.below(10) {
            // Schedule (weighted heaviest, like the sim).
            0..=4 => {
                let t = floor_ms + rng.below(time_range_ms);
                // Occasional far-future event (dissemination/sample
                // scale) to exercise the sparse-horizon fallback.
                let t = if rng.below(20) == 0 {
                    t + 30 * 86_400_000
                } else {
                    t
                };
                let payload = op_idx as u64;
                let a = fast.schedule(SimTime::from_millis(t), payload);
                let b = slow.schedule(SimTime::from_millis(t), payload);
                assert_eq!(a, b, "handle divergence (seed {seed}, op {op_idx})");
                handles.push(a);
            }
            // Cancel a random historical handle (live, settled, or
            // already cancelled — all must agree).
            5..=6 => {
                if !handles.is_empty() {
                    let h = handles[rng.below(handles.len() as u64) as usize];
                    assert_eq!(
                        fast.cancel(h),
                        slow.cancel(h),
                        "cancel divergence (seed {seed}, op {op_idx})"
                    );
                }
            }
            // Peek.
            7 => {
                assert_eq!(
                    fast.peek_time(),
                    slow.peek_time(),
                    "peek divergence (seed {seed}, op {op_idx})"
                );
            }
            // Pop.
            _ => {
                let a = fast.pop();
                let b = slow.pop();
                assert_eq!(a, b, "pop divergence (seed {seed}, op {op_idx})");
                if let Some((t, _)) = a {
                    floor_ms = t.as_millis();
                }
            }
        }
        assert_eq!(fast.len(), slow.len(), "len divergence (seed {seed})");
        assert_eq!(fast.is_empty(), slow.is_empty());
    }

    // Drain: the full remaining sequences must match element for
    // element (time, payload).
    loop {
        let a = fast.pop();
        let b = slow.pop();
        assert_eq!(a, b, "drain divergence (seed {seed})");
        if a.is_none() {
            break;
        }
    }
}

#[test]
fn randomized_interleavings_match_reference() {
    for seed in 1..=40u64 {
        run_episode(seed, 600, 5_000);
    }
}

#[test]
fn dense_equal_timestamps_match_reference() {
    // Heavy FIFO-tie pressure: tiny time range forces many equal
    // timestamps, where only the id order separates events.
    for seed in 100..=120u64 {
        run_episode(seed, 400, 3);
    }
}

#[test]
fn sparse_horizons_match_reference() {
    // Wide spread relative to population: the calendar's rotation
    // scan fails often and the direct-sweep fallback carries the load.
    for seed in 200..=215u64 {
        run_episode(seed, 300, 50_000_000);
    }
}

#[test]
fn cancellation_storms_match_reference() {
    // High cancel ratio: most scheduled events die before popping,
    // stressing tombstone cleanup in both backends.
    let mut rng = XorShift(0xDEAD_BEEF);
    let mut fast: EventQueue<u64> = EventQueue::new();
    let mut slow: EventQueue<u64> = EventQueue::reference();
    let mut pending = Vec::new();
    for i in 0..2_000u64 {
        let t = SimTime::from_millis(rng.below(100_000));
        let a = fast.schedule(t, i);
        let b = slow.schedule(t, i);
        assert_eq!(a, b);
        pending.push(a);
        if rng.below(4) != 0 {
            let h = pending[rng.below(pending.len() as u64) as usize];
            assert_eq!(fast.cancel(h), slow.cancel(h));
        }
    }
    loop {
        let a = fast.pop();
        assert_eq!(a, slow.pop());
        if a.is_none() {
            break;
        }
    }
}
