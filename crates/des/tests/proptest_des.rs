//! Property-based tests for the event kernel.

use blam_des::{EventQueue, RngSeeder, Simulator};
use blam_units::SimTime;
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, FIFO within
    /// equal timestamps, regardless of insertion order.
    #[test]
    fn pop_order_is_sorted_and_stable(times in prop::collection::vec(0u64..1_000, 0..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_millis(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        let mut popped = 0;
        while let Some((t, i)) = q.pop() {
            popped += 1;
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "FIFO violated for equal timestamps");
                }
            }
            last = Some((t, i));
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Cancelled events never pop; live count stays consistent.
    #[test]
    fn cancellation_is_exact(
        times in prop::collection::vec(0u64..1_000, 1..200),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_millis(t), i))
            .collect();
        let mut cancelled = std::collections::HashSet::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert!(q.cancel(*id));
                cancelled.insert(i);
            }
        }
        prop_assert_eq!(q.len(), times.len() - cancelled.len());
        while let Some((_, i)) = q.pop() {
            prop_assert!(!cancelled.contains(&i), "cancelled event {i} popped");
        }
    }

    /// The simulator clock never runs backwards and processes every
    /// scheduled event exactly once.
    #[test]
    fn simulator_clock_monotone(times in prop::collection::vec(0u64..10_000, 0..200)) {
        let mut sim = Simulator::new();
        for &t in &times {
            sim.schedule(SimTime::from_millis(t), t);
        }
        let mut clock = SimTime::ZERO;
        let mut count = 0usize;
        sim.run_to_completion(|sim, now, _| {
            assert!(now >= clock);
            assert!(sim.now() == now);
            clock = now;
            count += 1;
        });
        prop_assert_eq!(count, times.len());
    }

    /// Named RNG streams are reproducible and (statistically) disjoint.
    #[test]
    fn rng_streams_reproducible(seed in any::<u64>(), idx in 0u64..1_000) {
        use rand::Rng;
        let s = RngSeeder::new(seed);
        let a: u64 = s.stream_indexed("x", idx).gen();
        let b: u64 = s.stream_indexed("x", idx).gen();
        prop_assert_eq!(a, b);
        let c: u64 = s.stream_indexed("x", idx + 1).gen();
        prop_assert_ne!(a, c);
    }
}
