//! Deterministic named RNG streams.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Derives independent, reproducible RNG streams from one master seed.
///
/// Every stochastic component of an experiment (topology placement,
/// cloud processes, MAC jitter, shadowing, …) takes its own named
/// stream, so adding a new consumer of randomness never perturbs the
/// draws seen by existing ones — experiments stay comparable across
/// code revisions.
///
/// # Examples
///
/// ```
/// use blam_des::RngSeeder;
/// use rand::Rng;
///
/// let seeder = RngSeeder::new(42);
/// let mut topo = seeder.stream("topology");
/// let mut clouds = seeder.stream("clouds");
/// let a: f64 = topo.gen();
/// let b: f64 = clouds.gen();
/// assert_ne!(a, b); // independent streams
///
/// // Same seed + name ⇒ same stream.
/// let mut again = RngSeeder::new(42).stream("topology");
/// assert_eq!(a, again.gen::<f64>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngSeeder {
    master: u64,
}

impl RngSeeder {
    /// Creates a seeder from a master seed.
    #[must_use]
    pub const fn new(master: u64) -> Self {
        RngSeeder { master }
    }

    /// The master seed.
    #[must_use]
    pub const fn master(&self) -> u64 {
        self.master
    }

    /// A deterministic stream for `name`.
    #[must_use]
    pub fn stream(&self, name: &str) -> ChaCha8Rng {
        self.stream_indexed(name, 0)
    }

    /// A deterministic stream for `(name, index)` — for per-node or
    /// per-region randomness.
    #[must_use]
    pub fn stream_indexed(&self, name: &str, index: u64) -> ChaCha8Rng {
        let mut seed = [0u8; 32];
        let h = fnv1a(name.as_bytes());
        seed[0..8].copy_from_slice(&self.master.to_le_bytes());
        seed[8..16].copy_from_slice(&h.to_le_bytes());
        seed[16..24].copy_from_slice(&index.to_le_bytes());
        seed[24..32].copy_from_slice(&splitmix(self.master ^ h ^ index).to_le_bytes());
        ChaCha8Rng::from_seed(seed)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_name_same_stream() {
        let s = RngSeeder::new(7);
        let a: Vec<u64> = s
            .stream("x")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u64> = s
            .stream("x")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_names_differ() {
        let s = RngSeeder::new(7);
        let a: u64 = s.stream("x").gen();
        let b: u64 = s.stream("y").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_indices_differ() {
        let s = RngSeeder::new(7);
        let a: u64 = s.stream_indexed("node", 0).gen();
        let b: u64 = s.stream_indexed("node", 1).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_masters_differ() {
        let a: u64 = RngSeeder::new(1).stream("x").gen();
        let b: u64 = RngSeeder::new(2).stream("x").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn master_accessor() {
        assert_eq!(RngSeeder::new(99).master(), 99);
    }
}
