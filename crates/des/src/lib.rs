//! Deterministic discrete-event simulation kernel.
//!
//! A minimal, fast replacement for the role NS-3 plays in the paper's
//! evaluation: a virtual clock, a calendar event queue with stable
//! FIFO tie-breaking and O(1) tombstone cancellation (the original
//! binary-heap queue stays available as a differential-test oracle via
//! [`EventQueue::reference`]), and named deterministic RNG streams so
//! every experiment is exactly reproducible from a single seed.
//!
//! * [`queue`] — [`EventQueue`]: schedule / cancel / pop.
//! * [`sim`] — [`Simulator`]: the run loop.
//! * [`rng`] — [`RngSeeder`]: independent ChaCha8 streams by name.
//!
//! # Examples
//!
//! ```
//! use blam_des::Simulator;
//! use blam_units::{Duration, SimTime};
//!
//! #[derive(Debug)]
//! enum Ev { Ping(u32) }
//!
//! let mut sim = Simulator::new();
//! sim.schedule_in(Duration::from_secs(5), Ev::Ping(1));
//! sim.schedule_in(Duration::from_secs(1), Ev::Ping(2));
//!
//! let mut order = Vec::new();
//! sim.run_until(SimTime::from_secs(10), |sim, _now, ev| {
//!     let Ev::Ping(id) = ev;
//!     order.push(id);
//!     if id == 2 {
//!         sim.schedule_in(Duration::from_secs(1), Ev::Ping(3));
//!     }
//! });
//! assert_eq!(order, vec![2, 3, 1]);
//! ```

// `forbid(unsafe_code)` comes from `[workspace.lints]` in the root
// manifest; only the doc requirement stays crate-local.
#![warn(missing_docs)]

pub mod queue;
pub mod rng;
pub mod sim;

pub use queue::{EventId, EventQueue, QueueSnapshot};
pub use rng::RngSeeder;
pub use sim::{SimSnapshot, Simulator};
