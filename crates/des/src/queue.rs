//! The event queue: a binary heap with stable ordering and cancellation.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use blam_units::SimTime;

/// Handle to a scheduled event, usable to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

struct Scheduled<E> {
    time: SimTime,
    id: EventId,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.id == other.id
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, id): earlier first, FIFO ties.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// A time-ordered event queue.
///
/// Events at equal timestamps pop in scheduling (FIFO) order, which
/// keeps simulations deterministic. Cancellation is tombstone-based:
/// O(1) at cancel time, skipped at pop time.
///
/// # Examples
///
/// ```
/// use blam_des::EventQueue;
/// use blam_units::SimTime;
///
/// let mut q = EventQueue::new();
/// let a = q.schedule(SimTime::from_secs(2), "a");
/// q.schedule(SimTime::from_secs(1), "b");
/// q.cancel(a);
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "b")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    cancelled: HashSet<EventId>,
    /// Ids delivered or cancelled out of scheduling order (drained into
    /// `settled_below` as the range becomes contiguous).
    settled: HashSet<EventId>,
    /// Every id below this has been delivered or cancelled.
    settled_below: u64,
    next_id: u64,
    /// Count of live (non-cancelled) events.
    live: usize,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            settled: HashSet::new(),
            settled_below: 0,
            next_id: 0,
            live: 0,
        }
    }

    /// Schedules `event` at absolute time `at` and returns its handle.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.heap.push(Scheduled {
            time: at,
            id,
            event,
        });
        self.live += 1;
        id
    }

    /// Cancels a previously scheduled event. Returns true if the event
    /// was still pending.
    ///
    /// Cancelling an id that was already delivered (or cancelled) is a
    /// no-op returning false — the queue tracks delivered ids in a
    /// compact range plus a small out-of-order set, so stale handles
    /// cannot corrupt the live count or leak tombstones.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_id || self.is_settled(id) {
            return false;
        }
        if self.cancelled.insert(id) {
            self.live = self.live.saturating_sub(1);
            true
        } else {
            false
        }
    }

    /// True if `id` has already been delivered or cancelled.
    fn is_settled(&self, id: EventId) -> bool {
        id.0 < self.settled_below || self.settled.contains(&id) || self.cancelled.contains(&id)
    }

    /// Records a delivered/cancelled id and advances the compact
    /// settled watermark.
    fn mark_settled(&mut self, id: EventId) {
        self.settled.insert(id);
        while self.settled.remove(&EventId(self.settled_below)) {
            self.settled_below += 1;
        }
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(s) = self.heap.pop() {
            if self.cancelled.remove(&s.id) {
                self.mark_settled(s.id);
                continue;
            }
            self.live -= 1;
            self.mark_settled(s.id);
            return Some((s.time, s.event));
        }
        None
    }

    /// The timestamp of the earliest live event.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop leading tombstones so the peek is accurate.
        while let Some(s) = self.heap.peek() {
            if self.cancelled.contains(&s.id) {
                let s = self.heap.pop().expect("peeked element exists");
                self.cancelled.remove(&s.id);
                self.mark_settled(s.id);
            } else {
                return Some(s.time);
            }
        }
        None
    }

    /// Number of live events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E: std::fmt::Debug> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("live", &self.live)
            .field("heap_size", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_secs(1), "x");
        q.schedule(SimTime::from_secs(2), "y");
        assert!(q.cancel(id));
        assert!(!q.cancel(id), "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "y")));
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn cancel_after_delivery_is_a_clean_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        // The handle is stale: cancelling must not disturb the count or
        // poison future pops.
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert!(q.is_empty());
        assert!(!q.cancel(a), "still a no-op after drain");
    }

    #[test]
    fn settled_tracking_stays_compact_under_churn() {
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        for round in 0..100u64 {
            for k in 0..10u64 {
                ids.push(q.schedule(SimTime::from_millis(round * 10 + k), round * 10 + k));
            }
            while q.pop().is_some() {}
        }
        // Every id settled in order: the out-of-order set must be empty.
        assert_eq!(q.settled.len(), 0);
        assert_eq!(q.settled_below, 1_000);
        for id in ids {
            assert!(!q.cancel(id));
        }
    }

    #[test]
    fn peek_time_skips_tombstones() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_secs(1), "x");
        q.schedule(SimTime::from_secs(2), "y");
        q.cancel(id);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "late");
        assert_eq!(q.pop().unwrap().1, "late");
        q.schedule(SimTime::from_secs(5), "next");
        q.schedule(SimTime::from_secs(4), "first");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "next");
        assert_eq!(q.pop(), None);
    }
}
