//! The event queue: a calendar (bucket) queue with stable FIFO
//! ordering and O(1) tombstone cancellation.
//!
//! The calendar layout is tuned for this simulator's event mix —
//! near-uniform horizons (airtimes of hundreds of milliseconds, window
//! timers of minutes) with occasional far-future events (daily
//! dissemination, monthly samples). Buckets adapt their width and
//! count to the live population; a scan that finds nothing within one
//! rotation falls back to a direct sweep, so pathological skews only
//! cost speed, never correctness.
//!
//! The original `BinaryHeap` implementation is retained behind
//! [`EventQueue::reference`] as the slow reference oracle for the
//! differential test battery: both backends must produce identical
//! pop sequences for any schedule/cancel interleaving.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use blam_units::SimTime;
use serde::{Deserialize, Serialize};

/// Handle to a scheduled event, usable to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EventId(u64);

impl EventId {
    /// The raw id value — only for checkpoint serialization, where
    /// stored handles (e.g. pending-deadline columns) must survive a
    /// snapshot/restore round trip. Not meaningful across queues.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a handle from [`raw`](EventId::raw) — only for
    /// checkpoint restore.
    #[must_use]
    pub const fn from_raw(raw: u64) -> Self {
        EventId(raw)
    }
}

struct Scheduled<E> {
    time: SimTime,
    id: EventId,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.id == other.id
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, id): earlier first, FIFO ties.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// Smallest bucket count the calendar shrinks to.
const MIN_BUCKETS: usize = 16;
/// Initial bucket width: 2^10 ms ≈ 1 s, a LoRa airtime scale.
const INITIAL_SHIFT: u32 = 10;
/// Widest bucket the resize heuristic will pick (2^40 ms ≈ 12.7 days);
/// beyond that the direct-sweep fallback is cheaper than rotations.
const MAX_SHIFT: u32 = 40;

/// Position of the minimum entry, memoized between `peek` and `pop`.
#[derive(Debug, Clone, Copy)]
struct MinPos {
    bucket: usize,
    idx: usize,
    time_ms: u64,
    id: EventId,
}

/// The calendar store: open bucket lists indexed by
/// `(time >> shift) & (buckets.len() - 1)`.
struct Calendar<E> {
    buckets: Vec<Vec<Scheduled<E>>>,
    /// log2 of the bucket width in milliseconds.
    shift: u32,
    /// Entries stored, tombstones included.
    stored: usize,
    /// Lower bound (ms) on every stored entry's time; the rotation
    /// scan starts from this slot.
    floor_ms: u64,
    /// Cached minimum position; valid until the store mutates in a
    /// way that could move or beat it.
    memo: Option<MinPos>,
}

impl<E> Calendar<E> {
    fn new() -> Self {
        Calendar {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            shift: INITIAL_SHIFT,
            stored: 0,
            floor_ms: 0,
            memo: None,
        }
    }

    fn bucket_of(&self, time_ms: u64) -> usize {
        ((time_ms >> self.shift) as usize) & (self.buckets.len() - 1)
    }

    fn push(&mut self, s: Scheduled<E>) {
        if self.stored + 1 > 2 * self.buckets.len() {
            self.rebuild(self.buckets.len() * 2);
        }
        let t = s.time.as_millis();
        if self.stored == 0 || t < self.floor_ms {
            self.floor_ms = t;
        }
        let b = self.bucket_of(t);
        let beats_memo = self.memo.is_some_and(|m| (t, s.id) < (m.time_ms, m.id));
        self.buckets[b].push(s);
        if beats_memo {
            // Appends never move existing entries, so the memo stays
            // positionally valid — it is only replaced when beaten.
            self.memo = Some(MinPos {
                bucket: b,
                idx: self.buckets[b].len() - 1,
                time_ms: t,
                // analyzer: allow(panic-hygiene, reason = "entry pushed on the line above; last() cannot be None")
                id: self.buckets[b].last().expect("just pushed").id,
            });
        }
        self.stored += 1;
    }

    /// Finds the stored minimum by `(time, id)` and memoizes it.
    fn find_min(&mut self) -> Option<MinPos> {
        if self.stored == 0 {
            return None;
        }
        if let Some(m) = self.memo {
            return Some(m);
        }
        let count = self.buckets.len();
        let start_slot = u128::from(self.floor_ms >> self.shift);
        let mut found: Option<MinPos> = None;
        // One rotation: visit (bucket, slot) pairs in increasing slot
        // order; the first bucket holding a qualifying entry holds the
        // global minimum (see the module docs for the argument).
        for step in 0..count as u128 {
            let slot = start_slot + step;
            let b = (slot as usize) & (count - 1);
            for (i, e) in self.buckets[b].iter().enumerate() {
                let t = e.time.as_millis();
                if u128::from(t >> self.shift) <= slot
                    && found.is_none_or(|m| (t, e.id) < (m.time_ms, m.id))
                {
                    found = Some(MinPos {
                        bucket: b,
                        idx: i,
                        time_ms: t,
                        id: e.id,
                    });
                }
            }
            if found.is_some() {
                break;
            }
        }
        if found.is_none() {
            // Sparse horizon: nothing within one rotation of the
            // floor. Sweep every entry directly instead of spinning
            // through empty rotations.
            for (b, bucket) in self.buckets.iter().enumerate() {
                for (i, e) in bucket.iter().enumerate() {
                    let t = e.time.as_millis();
                    if found.is_none_or(|m| (t, e.id) < (m.time_ms, m.id)) {
                        found = Some(MinPos {
                            bucket: b,
                            idx: i,
                            time_ms: t,
                            id: e.id,
                        });
                    }
                }
            }
        }
        // analyzer: allow(panic-hygiene, reason = "caller checks stored > 0, so the bucket scan must find a minimum")
        let m = found.expect("stored > 0 implies a minimum exists");
        // The minimum bounds every stored entry from below; advancing
        // the floor keeps later scans short.
        self.floor_ms = m.time_ms;
        self.memo = Some(m);
        Some(m)
    }

    /// Removes the entry at `pos` (as returned by [`find_min`]).
    fn remove_at(&mut self, pos: MinPos) -> Scheduled<E> {
        let s = self.buckets[pos.bucket].swap_remove(pos.idx);
        debug_assert_eq!(s.id, pos.id, "memoized position went stale");
        self.stored -= 1;
        self.memo = None;
        self.floor_ms = pos.time_ms;
        if self.stored < self.buckets.len() / 4 && self.buckets.len() > MIN_BUCKETS {
            self.rebuild(self.buckets.len() / 2);
        }
        s
    }

    /// Re-buckets every entry into `new_count` buckets, re-estimating
    /// the bucket width from the current spread (average inter-event
    /// gap, rounded to a power of two). Deterministic: depends only on
    /// the stored contents.
    fn rebuild(&mut self, new_count: usize) {
        let mut entries: Vec<Scheduled<E>> = Vec::with_capacity(self.stored);
        for bucket in &mut self.buckets {
            entries.append(bucket);
        }
        if !entries.is_empty() {
            let mut min_t = u64::MAX;
            let mut max_t = 0u64;
            for e in &entries {
                let t = e.time.as_millis();
                min_t = min_t.min(t);
                max_t = max_t.max(t);
            }
            let avg_gap = ((max_t - min_t) / entries.len() as u64).max(1);
            self.shift = (64 - avg_gap.leading_zeros()).min(MAX_SHIFT);
            self.floor_ms = min_t;
        }
        self.buckets = (0..new_count.max(MIN_BUCKETS))
            .map(|_| Vec::new())
            .collect();
        self.memo = None;
        for s in entries {
            let b = self.bucket_of(s.time.as_millis());
            self.buckets[b].push(s);
        }
    }
}

/// The time-ordered store behind an [`EventQueue`].
enum Store<E> {
    /// The optimized calendar queue (the default).
    Calendar(Calendar<E>),
    /// The original binary heap, kept as the differential-test oracle.
    Heap(BinaryHeap<Scheduled<E>>),
}

/// A time-ordered event queue.
///
/// Events at equal timestamps pop in scheduling (FIFO) order, which
/// keeps simulations deterministic. Cancellation is tombstone-based:
/// O(1) at cancel time, skipped at pop time. The default backend is a
/// calendar queue; [`EventQueue::reference`] builds the original
/// binary-heap backend, which must behave identically and serves as
/// the slow oracle in differential tests.
///
/// # Examples
///
/// ```
/// use blam_des::EventQueue;
/// use blam_units::SimTime;
///
/// let mut q = EventQueue::new();
/// let a = q.schedule(SimTime::from_secs(2), "a");
/// q.schedule(SimTime::from_secs(1), "b");
/// q.cancel(a);
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "b")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    store: Store<E>,
    cancelled: HashSet<EventId>,
    /// Ids delivered or cancelled out of scheduling order (drained into
    /// `settled_below` as the range becomes contiguous).
    settled: HashSet<EventId>,
    /// Every id below this has been delivered or cancelled.
    settled_below: u64,
    next_id: u64,
    /// Count of live (non-cancelled) events.
    live: usize,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue on the calendar backend.
    #[must_use]
    pub fn new() -> Self {
        Self::with_store(Store::Calendar(Calendar::new()))
    }

    /// Creates an empty queue on the original binary-heap backend —
    /// the reference oracle for differential tests. Semantically
    /// identical to [`EventQueue::new`], only slower.
    #[must_use]
    pub fn reference() -> Self {
        Self::with_store(Store::Heap(BinaryHeap::new()))
    }

    fn with_store(store: Store<E>) -> Self {
        EventQueue {
            store,
            cancelled: HashSet::new(),
            settled: HashSet::new(),
            settled_below: 0,
            next_id: 0,
            live: 0,
        }
    }

    /// True when this queue runs the reference (binary-heap) backend.
    #[must_use]
    pub fn is_reference(&self) -> bool {
        matches!(self.store, Store::Heap(_))
    }

    /// Schedules `event` at absolute time `at` and returns its handle.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        let s = Scheduled {
            time: at,
            id,
            event,
        };
        match &mut self.store {
            Store::Calendar(c) => c.push(s),
            Store::Heap(h) => h.push(s),
        }
        self.live += 1;
        id
    }

    /// Cancels a previously scheduled event. Returns true if the event
    /// was still pending.
    ///
    /// Cancelling an id that was already delivered (or cancelled) is a
    /// no-op returning false — the queue tracks delivered ids in a
    /// compact range plus a small out-of-order set, so stale handles
    /// cannot corrupt the live count or leak tombstones.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_id || self.is_settled(id) {
            return false;
        }
        if self.cancelled.insert(id) {
            self.live = self.live.saturating_sub(1);
            true
        } else {
            false
        }
    }

    /// True if `id` has already been delivered or cancelled.
    fn is_settled(&self, id: EventId) -> bool {
        id.0 < self.settled_below || self.settled.contains(&id) || self.cancelled.contains(&id)
    }

    /// Records a delivered/cancelled id and advances the compact
    /// settled watermark.
    fn mark_settled(&mut self, id: EventId) {
        self.settled.insert(id);
        while self.settled.remove(&EventId(self.settled_below)) {
            self.settled_below += 1;
        }
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let s = match &mut self.store {
                Store::Calendar(c) => {
                    let pos = c.find_min()?;
                    c.remove_at(pos)
                }
                Store::Heap(h) => h.pop()?,
            };
            if self.cancelled.remove(&s.id) {
                self.mark_settled(s.id);
                continue;
            }
            self.live -= 1;
            self.mark_settled(s.id);
            return Some((s.time, s.event));
        }
    }

    /// The timestamp of the earliest live event.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop leading tombstones so the peek is accurate. The
        // calendar memoizes the found minimum, so the peek-then-pop
        // pattern of the run loop costs a single scan.
        loop {
            let (time, id) = match &mut self.store {
                Store::Calendar(c) => {
                    let m = c.find_min()?;
                    (SimTime::from_millis(m.time_ms), m.id)
                }
                Store::Heap(h) => {
                    let s = h.peek()?;
                    (s.time, s.id)
                }
            };
            if !self.cancelled.contains(&id) {
                return Some(time);
            }
            match &mut self.store {
                Store::Calendar(c) => {
                    // analyzer: allow(panic-hygiene, reason = "peek on the line above proved the queue non-empty")
                    let m = c.find_min().expect("minimum just observed");
                    c.remove_at(m);
                }
                Store::Heap(h) => {
                    h.pop();
                }
            }
            self.cancelled.remove(&id);
            self.mark_settled(id);
        }
    }

    /// Number of live events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

/// A serializable image of an [`EventQueue`].
///
/// Entries are sorted by `(time, id)` — the queue's pop order — so the
/// snapshot bytes are a pure function of the queue's logical content,
/// independent of the backend's internal bucket/heap layout. Stored
/// tombstones (cancelled entries not yet popped) are exported too,
/// alongside the cancelled set, so a restored queue settles ids in
/// exactly the order the original would have.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueSnapshot<E> {
    /// Every stored entry (tombstones included), sorted by `(time, id)`.
    pub entries: Vec<(SimTime, EventId, E)>,
    /// Ids cancelled but not yet swept, sorted.
    pub cancelled: Vec<EventId>,
    /// Ids settled out of scheduling order, sorted.
    pub settled: Vec<EventId>,
    /// Every id below this has been delivered or cancelled.
    pub settled_below: u64,
    /// The next id to hand out.
    pub next_id: u64,
}

impl<E: Clone> EventQueue<E> {
    /// Captures the queue's logical state for checkpointing.
    ///
    /// The pop sequence of the restored queue — and the handles future
    /// [`schedule`](EventQueue::schedule) calls return — are identical
    /// to this queue's, on either backend.
    #[must_use]
    pub fn snapshot(&self) -> QueueSnapshot<E> {
        let mut entries: Vec<(SimTime, EventId, E)> = match &self.store {
            Store::Calendar(c) => c
                .buckets
                .iter()
                .flatten()
                .map(|s| (s.time, s.id, s.event.clone()))
                .collect(),
            Store::Heap(h) => h.iter().map(|s| (s.time, s.id, s.event.clone())).collect(),
        };
        entries.sort_by_key(|&(time, id, _)| (time, id));
        let mut cancelled: Vec<EventId> = self.cancelled.iter().copied().collect();
        cancelled.sort_unstable();
        let mut settled: Vec<EventId> = self.settled.iter().copied().collect();
        settled.sort_unstable();
        QueueSnapshot {
            entries,
            cancelled,
            settled,
            settled_below: self.settled_below,
            next_id: self.next_id,
        }
    }
}

impl<E> EventQueue<E> {
    /// Rebuilds a queue from a [`QueueSnapshot`] on the requested
    /// backend (`reference` selects the binary heap).
    #[must_use]
    pub fn restore(snapshot: QueueSnapshot<E>, reference: bool) -> Self {
        let mut queue = if reference {
            EventQueue::reference()
        } else {
            EventQueue::new()
        };
        let stored = snapshot.entries.len();
        for (time, id, event) in snapshot.entries {
            let s = Scheduled { time, id, event };
            match &mut queue.store {
                Store::Calendar(c) => c.push(s),
                Store::Heap(h) => h.push(s),
            }
        }
        // analyzer: allow(determinism, reason = "iterates the snapshot's sorted Vecs to refill hash sets; insertion order cannot affect set contents")
        queue.cancelled = snapshot.cancelled.into_iter().collect();
        queue.settled = snapshot.settled.into_iter().collect();
        queue.settled_below = snapshot.settled_below;
        queue.next_id = snapshot.next_id;
        queue.live = stored - queue.cancelled.len();
        queue
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E: std::fmt::Debug> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (backend, stored) = match &self.store {
            Store::Calendar(c) => ("calendar", c.stored),
            Store::Heap(h) => ("heap", h.len()),
        };
        f.debug_struct("EventQueue")
            .field("backend", &backend)
            .field("live", &self.live)
            .field("stored", &stored)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every behavioural test runs against both backends.
    fn both(test: impl Fn(EventQueue<i64>)) {
        test(EventQueue::new());
        test(EventQueue::reference());
    }

    #[test]
    fn pops_in_time_order() {
        both(|mut q| {
            q.schedule(SimTime::from_secs(3), 3);
            q.schedule(SimTime::from_secs(1), 1);
            q.schedule(SimTime::from_secs(2), 2);
            let order: Vec<i64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![1, 2, 3]);
        });
    }

    #[test]
    fn equal_times_pop_fifo() {
        both(|mut q| {
            let t = SimTime::from_secs(5);
            for i in 0..100 {
                q.schedule(t, i);
            }
            let order: Vec<i64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn cancel_removes_event() {
        both(|mut q| {
            let id = q.schedule(SimTime::from_secs(1), 10);
            q.schedule(SimTime::from_secs(2), 20);
            assert!(q.cancel(id));
            assert!(!q.cancel(id), "double cancel is a no-op");
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop(), Some((SimTime::from_secs(2), 20)));
        });
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        both(|mut q| {
            assert!(!q.cancel(EventId(42)));
        });
    }

    #[test]
    fn cancel_after_delivery_is_a_clean_noop() {
        both(|mut q| {
            let a = q.schedule(SimTime::from_secs(1), 1);
            q.schedule(SimTime::from_secs(2), 2);
            assert_eq!(q.pop(), Some((SimTime::from_secs(1), 1)));
            // The handle is stale: cancelling must not disturb the
            // count or poison future pops.
            assert!(!q.cancel(a));
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop(), Some((SimTime::from_secs(2), 2)));
            assert!(q.is_empty());
            assert!(!q.cancel(a), "still a no-op after drain");
        });
    }

    #[test]
    fn settled_tracking_stays_compact_under_churn() {
        both(|mut q| {
            let mut ids = Vec::new();
            for round in 0..100u64 {
                for k in 0..10u64 {
                    ids.push(q.schedule(SimTime::from_millis(round * 10 + k), 0));
                }
                while q.pop().is_some() {}
            }
            // Every id settled in order: the out-of-order set must be
            // empty.
            assert_eq!(q.settled.len(), 0);
            assert_eq!(q.settled_below, 1_000);
            for id in ids {
                assert!(!q.cancel(id));
            }
        });
    }

    #[test]
    fn peek_time_skips_tombstones() {
        both(|mut q| {
            let id = q.schedule(SimTime::from_secs(1), 1);
            q.schedule(SimTime::from_secs(2), 2);
            q.cancel(id);
            assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
            assert_eq!(q.len(), 1);
        });
    }

    #[test]
    fn len_tracks_live_events() {
        both(|mut q| {
            assert!(q.is_empty());
            let a = q.schedule(SimTime::from_secs(1), 1);
            q.schedule(SimTime::from_secs(2), 2);
            assert_eq!(q.len(), 2);
            q.cancel(a);
            assert_eq!(q.len(), 1);
            q.pop();
            assert!(q.is_empty());
        });
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        both(|mut q| {
            q.schedule(SimTime::from_secs(10), 100);
            assert_eq!(q.pop().unwrap().1, 100);
            // Scheduling below the last popped time is allowed at the
            // queue layer (the Simulator forbids it separately); the
            // calendar must lower its floor accordingly.
            q.schedule(SimTime::from_secs(5), 50);
            q.schedule(SimTime::from_secs(4), 40);
            assert_eq!(q.pop().unwrap().1, 40);
            assert_eq!(q.pop().unwrap().1, 50);
            assert_eq!(q.pop(), None);
        });
    }

    #[test]
    fn far_future_events_pop_correctly() {
        both(|mut q| {
            // Mix of millisecond-scale and month-scale horizons — the
            // sparse-horizon fallback path.
            q.schedule(SimTime::from_millis(3), 1);
            q.schedule(SimTime::from_secs(30 * 86_400), 3);
            q.schedule(SimTime::from_secs(86_400), 2);
            let order: Vec<i64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![1, 2, 3]);
        });
    }

    #[test]
    fn resize_churn_preserves_order() {
        both(|mut q| {
            // Grow well past the initial bucket count, then drain —
            // exercising both rebuild directions on the calendar.
            let mut expect = Vec::new();
            for i in 0..500u64 {
                let t = (i * 7919) % 1_000;
                q.schedule(SimTime::from_millis(t), i as i64);
                expect.push((t, i as i64));
            }
            expect.sort();
            let got: Vec<(u64, i64)> =
                std::iter::from_fn(|| q.pop().map(|(t, e)| (t.as_millis(), e))).collect();
            assert_eq!(got, expect);
        });
    }

    #[test]
    fn backends_report_their_identity() {
        assert!(!EventQueue::<()>::new().is_reference());
        assert!(EventQueue::<()>::reference().is_reference());
    }

    #[test]
    fn max_time_sentinel_is_storable() {
        both(|mut q| {
            q.schedule(SimTime::MAX, 9);
            q.schedule(SimTime::from_secs(1), 1);
            assert_eq!(q.pop().unwrap().1, 1);
            assert_eq!(q.pop(), Some((SimTime::MAX, 9)));
        });
    }

    #[test]
    fn snapshot_restore_preserves_pop_order_and_handles() {
        both(|mut q| {
            // Mixed churn: schedule, pop, cancel — leaving tombstones,
            // an out-of-order settled set, and a non-zero watermark.
            let mut ids = Vec::new();
            for i in 0..50u64 {
                ids.push(q.schedule(SimTime::from_millis((i * 37) % 200), i as i64));
            }
            for _ in 0..10 {
                q.pop();
            }
            q.cancel(ids[30]);
            q.cancel(ids[45]);

            let snap = q.snapshot();
            for backend_ref in [false, true] {
                let mut r = EventQueue::restore(snap.clone(), backend_ref);
                assert_eq!(r.is_reference(), backend_ref);
                let mut orig = EventQueue::restore(q.snapshot(), q.is_reference());
                assert_eq!(r.len(), q.len());
                // Identical pop sequences.
                loop {
                    let a = orig.pop();
                    let b = r.pop();
                    assert_eq!(a, b);
                    if a.is_none() {
                        break;
                    }
                }
                // Identical future handles.
                let mut r2 = EventQueue::restore(snap.clone(), backend_ref);
                assert_eq!(
                    r2.schedule(SimTime::from_secs(9), 0),
                    q.schedule(SimTime::from_secs(9), 0)
                );
                q.cancel(*ids.last().unwrap());
            }
        });
    }

    #[test]
    fn snapshot_bytes_are_backend_independent() {
        // The same schedule/cancel history must snapshot identically on
        // both backends: entries are sorted by (time, id), not by
        // internal layout.
        let mut fast = EventQueue::new();
        let mut slow = EventQueue::reference();
        for q in [&mut fast, &mut slow] {
            let a = q.schedule(SimTime::from_secs(3), 3i64);
            q.schedule(SimTime::from_secs(1), 1);
            q.schedule(SimTime::from_secs(2), 2);
            q.pop();
            q.cancel(a);
        }
        assert_eq!(fast.snapshot(), slow.snapshot());
    }

    #[test]
    fn event_id_raw_round_trip() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_secs(1), ());
        assert_eq!(EventId::from_raw(id.raw()), id);
    }
}
