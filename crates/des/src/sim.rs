//! The simulation run loop.

use blam_units::{Duration, SimTime};
use serde::{Deserialize, Serialize};

use crate::queue::{EventId, EventQueue, QueueSnapshot};

/// A discrete-event simulator: an [`EventQueue`] plus a virtual clock.
///
/// The handler passed to [`run_until`](Simulator::run_until) receives
/// the simulator itself, so it can schedule (and cancel) follow-up
/// events.
///
/// # Examples
///
/// ```
/// use blam_des::Simulator;
/// use blam_units::{Duration, SimTime};
///
/// let mut sim = Simulator::new();
/// sim.schedule_in(Duration::from_secs(1), ());
/// let processed = sim.run_until(SimTime::from_secs(10), |_sim, now, ()| {
///     assert_eq!(now, SimTime::from_secs(1));
/// });
/// assert_eq!(processed, 1);
/// assert_eq!(sim.now(), SimTime::from_secs(10));
/// ```
#[derive(Debug)]
pub struct Simulator<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
}

impl<E> Simulator<E> {
    /// Creates a simulator at time zero (calendar-queue backend).
    #[must_use]
    pub fn new() -> Self {
        Self::with_queue(EventQueue::new())
    }

    /// Creates a simulator on the reference (binary-heap) event queue
    /// — the slow oracle used by differential tests and the perf gate
    /// to prove the optimized backend changes nothing.
    #[must_use]
    pub fn reference() -> Self {
        Self::with_queue(EventQueue::reference())
    }

    fn with_queue(queue: EventQueue<E>) -> Self {
        Simulator {
            queue,
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// True when this simulator runs the reference event queue.
    #[must_use]
    pub fn is_reference(&self) -> bool {
        self.queue.is_reference()
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The timestamp of the earliest pending event, if any.
    ///
    /// Coordinators that drive several simulators through windowed
    /// [`run_until`](Self::run_until) barriers use this to assert that
    /// no simulator holds an event older than the barrier it just
    /// reached. Takes `&mut self` because peeking may first discard
    /// cancelled (tombstoned) entries at the queue head.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Schedules an event at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        self.queue.schedule(at, event)
    }

    /// Schedules an event `delay` from now.
    pub fn schedule_in(&mut self, delay: Duration, event: E) -> EventId {
        self.queue.schedule(self.now + delay, event)
    }

    /// Cancels a pending event; true if it was still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Runs events in time order until the queue empties or the next
    /// event lies at or beyond `horizon`. Advances the clock to
    /// `horizon` on return. Returns the number of events processed by
    /// this call.
    pub fn run_until(
        &mut self,
        horizon: SimTime,
        mut handler: impl FnMut(&mut Simulator<E>, SimTime, E),
    ) -> u64 {
        let before = self.processed;
        while let Some(t) = self.queue.peek_time() {
            if t >= horizon {
                break;
            }
            let (t, event) = self.queue.pop().expect("peeked event exists");
            debug_assert!(t >= self.now, "event time regressed");
            self.now = t;
            self.processed += 1;
            handler(self, t, event);
        }
        self.now = self.now.max(horizon);
        self.processed - before
    }

    /// Runs until the queue is exhausted. Returns events processed.
    pub fn run_to_completion(
        &mut self,
        mut handler: impl FnMut(&mut Simulator<E>, SimTime, E),
    ) -> u64 {
        let before = self.processed;
        while let Some((t, event)) = self.queue.pop() {
            debug_assert!(t >= self.now, "event time regressed");
            self.now = t;
            self.processed += 1;
            handler(self, t, event);
        }
        self.processed - before
    }
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Simulator::new()
    }
}

/// A serializable image of a [`Simulator`]: its queue, clock, and
/// processed-event counter. See [`QueueSnapshot`] for the determinism
/// contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimSnapshot<E> {
    /// The pending-event queue.
    pub queue: QueueSnapshot<E>,
    /// The virtual clock.
    pub now: SimTime,
    /// Total events processed so far.
    pub processed: u64,
}

impl<E: Clone> Simulator<E> {
    /// Captures the simulator's full state for checkpointing. Restoring
    /// with [`Simulator::restore`] resumes the run with an identical
    /// event sequence (same pop order, same future [`EventId`]s).
    #[must_use]
    pub fn snapshot(&self) -> SimSnapshot<E> {
        SimSnapshot {
            queue: self.queue.snapshot(),
            now: self.now,
            processed: self.processed,
        }
    }
}

impl<E> Simulator<E> {
    /// Rebuilds a simulator from a [`SimSnapshot`] on the requested
    /// backend (`reference` selects the binary-heap queue).
    #[must_use]
    pub fn restore(snapshot: SimSnapshot<E>, reference: bool) -> Self {
        Simulator {
            queue: EventQueue::restore(snapshot.queue, reference),
            now: snapshot.now,
            processed: snapshot.processed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_events() {
        let mut sim = Simulator::new();
        sim.schedule(SimTime::from_secs(5), "a");
        let mut seen_at = None;
        sim.run_to_completion(|sim, now, _| {
            seen_at = Some((sim.now(), now));
        });
        assert_eq!(
            seen_at,
            Some((SimTime::from_secs(5), SimTime::from_secs(5)))
        );
    }

    #[test]
    fn handler_can_schedule_followups() {
        let mut sim = Simulator::new();
        sim.schedule(SimTime::from_secs(1), 0u32);
        let mut count = 0;
        sim.run_to_completion(|sim, _, n| {
            count += 1;
            if n < 4 {
                sim.schedule_in(Duration::from_secs(1), n + 1);
            }
        });
        assert_eq!(count, 5);
        assert_eq!(sim.now(), SimTime::from_secs(5));
        assert_eq!(sim.processed(), 5);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = Simulator::new();
        sim.schedule(SimTime::from_secs(1), "in");
        sim.schedule(SimTime::from_secs(10), "out");
        let mut seen = Vec::new();
        let n = sim.run_until(SimTime::from_secs(5), |_, _, e| seen.push(e));
        assert_eq!(n, 1);
        assert_eq!(seen, vec!["in"]);
        assert_eq!(sim.now(), SimTime::from_secs(5));
        assert_eq!(sim.pending(), 1);
        // Event exactly at the horizon is NOT processed.
        let n = sim.run_until(SimTime::from_secs(10), |_, _, e| seen.push(e));
        assert_eq!(n, 0);
        let n = sim.run_until(SimTime::from_secs(11), |_, _, e| seen.push(e));
        assert_eq!(n, 1);
        assert_eq!(seen, vec!["in", "out"]);
    }

    #[test]
    fn cancel_through_simulator() {
        let mut sim = Simulator::new();
        let id = sim.schedule(SimTime::from_secs(1), "x");
        assert!(sim.cancel(id));
        let n = sim.run_to_completion(|_, _, _| panic!("cancelled event ran"));
        assert_eq!(n, 0);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulator::new();
        sim.schedule(SimTime::from_secs(10), ());
        sim.run_to_completion(|sim, _, ()| {
            sim.schedule(SimTime::from_secs(1), ());
        });
    }

    #[test]
    fn snapshot_mid_run_resumes_identically() {
        // Run to a barrier, snapshot, keep running both the original
        // and the restored copy: event sequences and clocks must match.
        let mut sim = Simulator::new();
        for i in 0..20u64 {
            sim.schedule(SimTime::from_millis(i * 150), i);
        }
        sim.run_until(SimTime::from_secs(1), |sim, now, n| {
            if n % 3 == 0 {
                sim.schedule(now + Duration::from_secs(2), 100 + n);
            }
        });
        let snap = sim.snapshot();
        let mut restored = Simulator::restore(snap, false);
        assert_eq!(restored.now(), sim.now());
        assert_eq!(restored.processed(), sim.processed());
        assert_eq!(restored.pending(), sim.pending());
        let mut a = Vec::new();
        let mut b = Vec::new();
        sim.run_to_completion(|_, now, n| a.push((now, n)));
        restored.run_to_completion(|_, now, n| b.push((now, n)));
        assert_eq!(a, b);
        assert_eq!(sim.processed(), restored.processed());
    }

    #[test]
    fn retransmission_timer_pattern() {
        // The lorawan crate's usage pattern: schedule a timeout, cancel
        // it when the ACK arrives first.
        let mut sim = Simulator::new();
        let timeout = sim.schedule(SimTime::from_secs(3), "timeout");
        sim.schedule(SimTime::from_secs(2), "ack");
        let mut log = Vec::new();
        sim.run_to_completion(|sim, _, e| {
            log.push(e);
            if e == "ack" {
                sim.cancel(timeout);
            }
        });
        assert_eq!(log, vec!["ack"]);
    }
}
