//! End-to-end integration tests across the whole workspace: build a
//! network, run it, and check cross-crate invariants on the results.

use lpwan_blam::netsim::{config::Protocol, RunResult, Scenario};
use lpwan_blam::units::Duration;

fn run(protocol: Protocol, nodes: usize, days: u64, seed: u64) -> RunResult {
    Scenario::large_scale(nodes, protocol, seed)
        .with_duration(Duration::from_days(days))
        .with_sample_interval(Duration::from_days(7))
        .run()
}

/// Every generated packet is accounted for exactly once.
fn check_accounting(r: &RunResult) {
    for (i, n) in r.nodes.iter().enumerate() {
        let concluded = n.delivered + n.failed_no_ack + n.dropped_no_window + n.dropped_brownout;
        assert!(
            concluded == n.concluded && n.concluded <= n.generated,
            "node {i}: generated {} concluded {} (delivered {} failed {} dropped {}/{})",
            n.generated,
            n.concluded,
            n.delivered,
            n.failed_no_ack,
            n.dropped_no_window,
            n.dropped_brownout
        );
        // At most one packet in flight at the end of the run.
        assert!(n.generated - concluded <= 1, "node {i} lost packets");
        // Transmissions cover every concluded exchange at least once.
        let exchanges = n.delivered + n.failed_no_ack;
        assert!(n.transmissions >= exchanges, "node {i} exchange accounting");
        assert!(
            n.retransmissions == n.transmissions.saturating_sub(exchanges)
                || n.transmissions >= n.retransmissions,
            "node {i} retransmission accounting"
        );
        // Window histogram counts planned packets.
        let planned: u64 = n.window_histogram.iter().sum();
        assert!(planned <= n.generated);
        assert!(
            planned >= exchanges,
            "node {i}: histogram {planned} < exchanges {exchanges}"
        );
        // Rates are well-formed.
        assert!((0.0..=1.0).contains(&n.prr()));
        assert!((0.0..=1.0).contains(&n.avg_utility()));
        assert!(n.final_degradation >= 0.0 && n.final_degradation < 1.0);
    }
}

#[test]
fn lorawan_run_is_consistent() {
    let r = run(Protocol::Lorawan, 30, 14, 1);
    check_accounting(&r);
    assert!(r.network.prr > 0.5, "PRR {}", r.network.prr);
    assert!(r.network.generated > 30 * 14 * 20, "too few packets");
    // LoRaWAN nodes never defer.
    for n in &r.nodes {
        assert!(n.window_histogram.len() <= 1);
    }
    // No piggyback → the gateway never learns any degradation.
    assert!(r.gateway_degradation_estimates.iter().all(|&d| d == 0.0));
}

#[test]
fn blam_run_is_consistent() {
    let r = run(Protocol::h(0.5), 30, 14, 1);
    check_accounting(&r);
    assert!(r.network.prr > 0.5, "PRR {}", r.network.prr);
    // The gateway reconstructed nonzero degradation from piggybacks.
    let known = r
        .gateway_degradation_estimates
        .iter()
        .filter(|&&d| d > 0.0)
        .count();
    assert!(known > 20, "gateway only learned {known} nodes");
}

#[test]
fn runs_are_deterministic_across_protocols() {
    for protocol in [Protocol::Lorawan, Protocol::h(0.5), Protocol::h50c()] {
        let a = run(protocol.clone(), 15, 7, 9);
        let b = run(protocol, 15, 7, 9);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.network.generated, b.network.generated);
        assert_eq!(a.network.delivered, b.network.delivered);
        assert_eq!(
            a.gateway_degradation_estimates,
            b.gateway_degradation_estimates
        );
    }
}

#[test]
fn theta_orders_degradation() {
    // Lower charge cap ⇒ lower calendar aging ⇒ lower degradation.
    let d100 = run(Protocol::h(1.0), 25, 45, 3).network.degradation.mean;
    let d50 = run(Protocol::h(0.5), 25, 45, 3).network.degradation.mean;
    let d5 = run(Protocol::h(0.05), 25, 45, 3).network.degradation.mean;
    assert!(
        d5 < d50 && d50 < d100,
        "θ ordering violated: {d5} {d50} {d100}"
    );
}

#[test]
fn blam_beats_lorawan_on_degradation() {
    let lorawan = run(Protocol::Lorawan, 40, 60, 5);
    let h50 = run(Protocol::h(0.5), 40, 60, 5);
    assert!(
        h50.network.degradation.mean < lorawan.network.degradation.mean * 0.95,
        "H-50 {} !< LoRaWAN {}",
        h50.network.degradation.mean,
        lorawan.network.degradation.mean
    );
    assert!(
        h50.network.degradation.variance < lorawan.network.degradation.variance,
        "variance should shrink"
    );
}

#[test]
fn testbed_matches_paper_setup() {
    let r = Scenario::testbed(Protocol::h(1.0), 7).run();
    check_accounting(&r);
    assert_eq!(r.nodes.len(), 10);
    assert!(r.network.prr > 0.95, "testbed PRR {}", r.network.prr);
    // ~144 packets per node in 24 h at 10-minute periods.
    for n in &r.nodes {
        assert!(
            (140..=146).contains(&(n.generated as i64)),
            "{}",
            n.generated
        );
    }
    // All nodes pinned to SF10 as in the paper.
    for p in &r.topology.placements {
        assert_eq!(p.sf, lpwan_blam::phy::SpreadingFactor::Sf10);
    }
}

#[test]
fn degradation_samples_are_monotone() {
    let r = run(Protocol::Lorawan, 20, 30, 11);
    for pair in r.samples.windows(2) {
        assert!(pair[1].at > pair[0].at);
        assert!(
            pair[1].mean_total() >= pair[0].mean_total() - 1e-12,
            "degradation regressed between samples"
        );
    }
}
