//! Hand-driven protocol-stack test: exercise the Class-A MAC, the
//! gateway radio and the network server together — below the full
//! simulator — for one collision-and-retry episode, checking that the
//! pieces compose the way the engine assumes.

use lpwan_blam::lorawan::{
    ClassAMac, DeviceAddr, GatewayRadio, MacAction, MacParams, NetworkServer, ReceptionOutcome,
    Uplink, UplinkTransmission,
};
use lpwan_blam::phy::{ChannelPlan, SpreadingFactor};
use lpwan_blam::units::{Dbm, Duration, SimTime};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn mac(device: u32) -> ClassAMac {
    ClassAMac::new(MacParams {
        device: DeviceAddr(device),
        plan: ChannelPlan::us915_single_channel(),
        ..MacParams::default()
    })
}

#[test]
fn collision_then_retry_then_ack() {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let plan = ChannelPlan::us915_single_channel();
    let mut gateway = GatewayRadio::new(8);
    let mut server = NetworkServer::new();
    let mut mac_a = mac(1);
    let mut mac_b = mac(2);

    // Both nodes transmit simultaneously on the single channel with
    // equal power: nobody captures.
    let t0 = SimTime::ZERO;
    let a_tx = match mac_a.send(t0, Uplink::confirmed(10), &mut rng)[0] {
        MacAction::Transmit(tx) => tx,
        _ => panic!("expected Transmit"),
    };
    let b_tx = match mac_b.send(t0, Uplink::confirmed(10), &mut rng)[0] {
        MacAction::Transmit(tx) => tx,
        _ => panic!("expected Transmit"),
    };
    let descriptor =
        |device: u32, tx: &lpwan_blam::lorawan::TransmitDescriptor| UplinkTransmission {
            device: DeviceAddr(device),
            channel: tx.channel,
            sf: tx.config.sf,
            rssi: Dbm(-100.0),
            start: t0,
            end: t0 + tx.airtime,
        };
    let a_id = gateway.begin_uplink(descriptor(1, &a_tx));
    let b_id = gateway.begin_uplink(descriptor(2, &b_tx));
    assert_eq!(gateway.end_uplink(a_id), ReceptionOutcome::Collided);
    assert_eq!(gateway.end_uplink(b_id), ReceptionOutcome::Collided);

    // Both MACs open their windows, see no ACK, and back off.
    let t1 = t0 + a_tx.airtime;
    let a_deadline = match mac_a.on_tx_completed(t1)[0] {
        MacAction::ScheduleRxDeadline(at) => at,
        _ => panic!("expected deadline"),
    };
    let _ = mac_b.on_tx_completed(t1);
    let a_retry_at = match mac_a.on_rx_deadline(a_deadline, &mut rng)[0] {
        MacAction::ScheduleRetransmit(at) => at,
        _ => panic!("expected retransmit"),
    };
    assert!(a_retry_at > a_deadline);

    // Node A retries alone this time: received, ACKed, done.
    let a_tx2 = match mac_a.on_retransmit_time(a_retry_at, &mut rng)[0] {
        MacAction::Transmit(tx) => tx,
        _ => panic!("expected Transmit"),
    };
    assert_eq!(a_tx2.attempt, 2);
    assert_eq!(a_tx2.frame.fcnt, 0, "retries keep the frame counter");
    let a_id2 = gateway.begin_uplink(UplinkTransmission {
        start: a_retry_at,
        end: a_retry_at + a_tx2.airtime,
        ..descriptor(1, &a_tx2)
    });
    assert_eq!(gateway.end_uplink(a_id2), ReceptionOutcome::Received);

    let decision = server.on_uplink(&a_tx2.frame, &a_tx2.channel, a_tx2.config.sf, &plan);
    assert!(decision.downlink.ack);
    assert!(!decision.duplicate);

    // The ACK downlink occupies the gateway, then reaches node A.
    let tx_end = a_retry_at + a_tx2.airtime;
    let actions = mac_a.on_tx_completed(tx_end);
    assert!(matches!(actions[0], MacAction::ScheduleRxDeadline(_)));
    let rx1 = tx_end + plan.rx1_delay;
    assert!(gateway.downlink_available(rx1));
    gateway.begin_downlink(rx1, rx1 + Duration::from_millis(100));
    let report = match mac_a.on_ack(rx1 + Duration::from_millis(100))[0] {
        MacAction::Complete(r) => r,
        _ => panic!("expected Complete"),
    };
    assert!(report.delivered);
    assert_eq!(report.transmissions, 2);
    assert!(mac_a.is_idle());

    // A duplicate retry from node B after its own backoff would still
    // be ACKed but flagged.
    let b_frame = b_tx.frame;
    let dup = server.on_uplink(&b_frame, &b_tx.channel, b_tx.config.sf, &plan);
    assert!(!dup.duplicate, "first copy of B's frame is new");
    let dup2 = server.on_uplink(&b_frame, &b_tx.channel, b_tx.config.sf, &plan);
    assert!(dup2.duplicate, "second copy must be flagged");
}

#[test]
fn sf12_ack_fits_receive_window_model() {
    // Regression for the SF12 bug the simulator hit: the ACK's preamble
    // must land before the RX2-close deadline for every SF the plan can
    // assign.
    let plan = ChannelPlan::eu868();
    for sf in [
        SpreadingFactor::Sf7,
        SpreadingFactor::Sf10,
        SpreadingFactor::Sf12,
    ] {
        let ack_cfg = lpwan_blam::phy::TxConfig::new(
            plan.rx1_sf(sf),
            plan.downlink[0].bandwidth,
            lpwan_blam::phy::CodingRate::Cr4_5,
        );
        let preamble_secs =
            lpwan_blam::phy::symbol_duration_secs(ack_cfg.sf, ack_cfg.bw) * (8.0 + 4.25);
        let rx1_open = plan.rx1_delay.as_secs_f64();
        let deadline = plan.rx2_delay.as_secs_f64() + 0.05;
        assert!(
            rx1_open + preamble_secs < deadline,
            "{sf}: ACK preamble lock at {:.3}s misses deadline {:.3}s",
            rx1_open + preamble_secs,
            deadline
        );
    }
}
