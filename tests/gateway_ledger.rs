//! Cross-crate fidelity test for the paper's trace-compression claim:
//! the gateway, seeing only the 4-byte compressed SoC trace each
//! period, reconstructs per-node degradation close to the ground truth
//! of the node's own battery.

use lpwan_blam::netsim::{config::Protocol, Scenario};
use lpwan_blam::units::Duration;

#[test]
fn gateway_estimate_tracks_ground_truth() {
    let r = Scenario::large_scale(30, Protocol::h(0.5), 21)
        .with_duration(Duration::from_days(45))
        .with_sample_interval(Duration::from_days(7))
        .run();

    let mut relative_errors = Vec::new();
    for (i, n) in r.nodes.iter().enumerate() {
        let truth = n.final_degradation;
        let estimate = r.gateway_degradation_estimates[i];
        // Nodes the gateway heard from must have nonzero estimates.
        if n.delivered > 10 {
            assert!(estimate > 0.0, "node {i} delivered but unestimated");
            relative_errors.push((estimate - truth).abs() / truth.max(1e-9));
        }
    }
    assert!(
        relative_errors.len() >= 25,
        "too few estimated nodes: {}",
        relative_errors.len()
    );
    let mean_err = relative_errors.iter().sum::<f64>() / relative_errors.len() as f64;
    // The compressed trace quantizes SoC to 1/255 and samples twice per
    // period; the paper relies on this being accurate enough to rank
    // nodes. Allow a modest bias but not an order-of-magnitude error.
    assert!(mean_err < 0.35, "mean relative error {mean_err}");
}

#[test]
fn gateway_ranking_is_faithful() {
    // What the dissemination actually needs is the *ranking* (w_u is
    // normalized by the maximum): check rank correlation between
    // estimate and truth.
    let r = Scenario::large_scale(40, Protocol::h(0.5), 33)
        .with_duration(Duration::from_days(45))
        .with_sample_interval(Duration::from_days(7))
        .run();
    let mut pairs: Vec<(f64, f64)> = r
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.delivered > 10)
        .map(|(i, n)| (r.gateway_degradation_estimates[i], n.final_degradation))
        .collect();
    assert!(pairs.len() >= 30);

    // Spearman-ish: correlation of ranks.
    let rank = |values: Vec<f64>| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..values.len()).collect();
        idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
        let mut ranks = vec![0.0; values.len()];
        for (r, &i) in idx.iter().enumerate() {
            ranks[i] = r as f64;
        }
        ranks
    };
    let est_ranks = rank(pairs.iter().map(|p| p.0).collect());
    let truth_ranks = rank(pairs.iter().map(|p| p.1).collect());
    let n = pairs.len() as f64;
    let mean = (n - 1.0) / 2.0;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for i in 0..pairs.len() {
        let (a, b) = (est_ranks[i] - mean, truth_ranks[i] - mean);
        cov += a * b;
        var_a += a * a;
        var_b += b * b;
    }
    let rho = cov / (var_a.sqrt() * var_b.sqrt());
    // Degradations across same-age nodes are nearly tied, so exact rank
    // order is noisy; the dissemination only needs the normalized
    // magnitude w_u = D/D_max to be right.
    assert!(rho > 0.5, "rank correlation too weak: {rho}");
    let est_max = pairs.iter().map(|p| p.0).fold(0.0f64, f64::max);
    let truth_max = pairs.iter().map(|p| p.1).fold(0.0f64, f64::max);
    let mean_w_error = pairs
        .iter()
        .map(|&(e, t)| (e / est_max - t / truth_max).abs())
        .sum::<f64>()
        / pairs.len() as f64;
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    assert!(
        mean_w_error < 0.15,
        "normalized-weight error too large: {mean_w_error}"
    );
}
