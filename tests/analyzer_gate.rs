//! The analyzer gate: `cargo test` fails when any workspace source
//! violates the determinism, panic-hygiene, unit-safety,
//! telemetry-guard, or float-eq invariants beyond what
//! `analyzer-baseline.toml` already budgets. Same battery as
//! `blam-analyze` and the `scripts/check.sh` step, run in-process so
//! a plain `cargo test` catches regressions too.

use std::path::Path;

#[test]
fn workspace_passes_the_blam_analyze_battery() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let outcome = blam_analyzer::analyze_workspace(root, &blam_analyzer::Config::default())
        .expect("workspace scan");
    assert!(
        outcome.clean(),
        "blam-analyze found violations; fix them or waive with a reasoned \
         `// analyzer: allow(...)` pragma:\n{}",
        outcome.render_human(false)
    );
    assert!(
        outcome.files_scanned > 100,
        "suspiciously few files scanned ({}); did the walk break?",
        outcome.files_scanned
    );
}
