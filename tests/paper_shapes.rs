//! The paper's headline result shapes, asserted at small scale — a
//! regression guard for the reproduction itself. (EXPERIMENTS.md records
//! the full-scale numbers; these tests protect the *direction* of every
//! claim on every commit.)
//!
//! The simulation-heavy tests are release-gated: run with
//! `cargo test --release --test paper_shapes`.

use lpwan_blam::netsim::{config::Protocol, RunResult, Scenario};
use lpwan_blam::units::Duration;

fn run(protocol: Protocol, nodes: usize, days: u64) -> RunResult {
    Scenario::large_scale(nodes, protocol, 424_242)
        .with_duration(Duration::from_days(days))
        .with_sample_interval(Duration::from_days(15))
        .run()
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
fn fig5_shape_retx_energy_degradation() {
    let lorawan = run(Protocol::Lorawan, 80, 60);
    let h50 = run(Protocol::h(0.5), 80, 60);
    // Fig. 5a: fewer retransmissions.
    assert!(
        h50.network.avg_retx < lorawan.network.avg_retx,
        "RETX: {} !< {}",
        h50.network.avg_retx,
        lorawan.network.avg_retx
    );
    // Fig. 5b: less TX energy.
    assert!(h50.network.total_tx_energy_eq6 < lorawan.network.total_tx_energy_eq6);
    // Fig. 5c: lower mean degradation and much lower variance.
    assert!(h50.network.degradation.mean < lorawan.network.degradation.mean * 0.9);
    assert!(h50.network.degradation.variance < lorawan.network.degradation.variance);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
fn fig4_shape_window_spread() {
    let lorawan = run(Protocol::Lorawan, 60, 45);
    let h50 = run(Protocol::h(0.5), 60, 45);
    // LoRaWAN never leaves window 0.
    assert!(lorawan
        .nodes
        .iter()
        .all(|n| n.majority_window().unwrap_or(0) == 0));
    // H-50 moves a meaningful share of nodes to later windows.
    let moved = h50
        .nodes
        .iter()
        .filter(|n| n.majority_window().unwrap_or(0) > 0)
        .count();
    assert!(moved >= 6, "only {moved}/60 nodes moved off window 0");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
fn fig6_shape_utility_prr_latency() {
    let lorawan = run(Protocol::Lorawan, 80, 60);
    let h5 = run(Protocol::h(0.05), 80, 60);
    let h50 = run(Protocol::h(0.5), 80, 60);
    // H-5 loses packets to battery depletion.
    assert!(h5.network.prr < h50.network.prr - 0.1);
    assert!(h5.network.prr < lorawan.network.prr - 0.1);
    // H-50 keeps PRR at least on par with LoRaWAN.
    assert!(h50.network.prr >= lorawan.network.prr - 0.02);
    // Deferral costs latency (Fig. 6c's direction).
    assert!(h50.network.avg_latency_delivered_secs > lorawan.network.avg_latency_delivered_secs);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
fn fig7_shape_degradation_rate_ordering() {
    // Over the same horizon LoRaWAN's worst battery degrades fastest.
    let lorawan = run(Protocol::Lorawan, 40, 120);
    let h50 = run(Protocol::h(0.5), 40, 120);
    let h50c = run(Protocol::h50c(), 40, 120);
    let max_deg = |r: &RunResult| r.samples.last().unwrap().max_total();
    assert!(max_deg(&h50) < max_deg(&lorawan));
    assert!(max_deg(&h50c) < max_deg(&lorawan));
    // H-50 ≈ H-50C (window selection refines, the clamp dominates).
    assert!((max_deg(&h50) / max_deg(&h50c) - 1.0).abs() < 0.1);
}

#[test]
fn fig3_shape_weight_splits_decisions() {
    // Protocol-level (no simulation): the degraded node defers to the
    // sunny window, the fresh node does not.
    use lpwan_blam::protocol::select::{select_window, SelectInput, SelectOutcome};
    use lpwan_blam::protocol::utility::Utility;
    use lpwan_blam::units::Joules;

    let mut green = vec![Joules(0.6); 10]; // sun covers the transmission
    for g in green.iter_mut().take(2) {
        *g = Joules(0.01);
    }
    let tx = vec![Joules(0.5); 10];
    let pick = |w_u: f64| match select_window(&SelectInput {
        battery_energy: Joules(5.0),
        normalized_degradation: w_u,
        degradation_weight: 1.0,
        green_energy: &green,
        tx_energy: &tx,
        max_tx_energy: Joules(0.55),
        utility: &Utility::Linear,
    }) {
        SelectOutcome::Selected { window, .. } => window,
        SelectOutcome::Fail => usize::MAX,
    };
    assert_eq!(pick(0.02), 0, "fresh node transmits immediately");
    assert!(pick(1.0) >= 2, "degraded node waits for green energy");
}
