//! Wire-level integration: the protocol's piggyback payloads survive a
//! real encode → transmit → decode round trip into the gateway ledger,
//! producing the same degradation estimate as handing the structured
//! data over directly.

use lpwan_blam::lorawan::codec::{decode, encode, MType, WireFrame};
use lpwan_blam::lorawan::DeviceAddr;
use lpwan_blam::protocol::dissemination::{dequantize_weight, quantize_weight};
use lpwan_blam::protocol::{CompressedSocTrace, DegradationLedger, SocSample};
use lpwan_blam::units::{Duration, SimTime};

#[test]
fn piggyback_survives_the_wire() {
    let window = Duration::from_mins(1);
    let mut direct = DegradationLedger::new(window);
    let mut via_wire = DegradationLedger::new(window);

    // A node ships 120 periods of compressed traces over real frames.
    for period in 0..120u64 {
        let start = SimTime::ZERO + Duration::from_mins(30) * period;
        let trace = CompressedSocTrace {
            discharge: SocSample::new((period % 7) as u8, 0.42 + 0.002 * (period % 20) as f64),
            recharge: SocSample::new(25, 0.5),
        };
        // The protocol always ships the quantized form; the "direct"
        // reference applies the same 1/255 SoC quantization locally.
        direct.record_trace(9, start, &CompressedSocTrace::decode(trace.encode()));

        let frame = WireFrame {
            mtype: MType::ConfirmedUp,
            device: DeviceAddr(9),
            ack: false,
            fcnt: period as u16,
            fopts: trace.encode().to_vec(),
            fport: 1,
            payload: vec![0u8; 10],
        };
        let bytes = encode(&frame);
        // …airtime happens…
        let received = decode(&bytes).expect("clean channel");
        assert_eq!(received.device, DeviceAddr(9));
        let mut fopts = [0u8; CompressedSocTrace::ENCODED_LEN];
        fopts.copy_from_slice(&received.fopts);
        via_wire.record_trace(9, start, &CompressedSocTrace::decode(fopts));
    }

    let now = SimTime::ZERO + Duration::from_days(60);
    let d_direct = direct.degradation_of(9, now);
    let d_wire = via_wire.degradation_of(9, now);
    assert!(d_direct > 0.0);
    assert!(
        (d_direct - d_wire).abs() < 1e-15,
        "wire path diverged: {d_direct} vs {d_wire}"
    );
}

#[test]
fn quantization_cost_is_negligible() {
    // The 1/255 SoC quantization of the 4-byte piggyback perturbs the
    // gateway's degradation estimate by well under a percent.
    let window = Duration::from_mins(1);
    let mut exact = DegradationLedger::new(window);
    let mut quantized = DegradationLedger::new(window);
    for period in 0..200u64 {
        let start = SimTime::ZERO + Duration::from_mins(30) * period;
        let trace = CompressedSocTrace {
            discharge: SocSample::new((period % 9) as u8, 0.37 + 0.0013 * (period % 31) as f64),
            recharge: SocSample::new(25, 0.493),
        };
        exact.record_trace(1, start, &trace);
        quantized.record_trace(1, start, &CompressedSocTrace::decode(trace.encode()));
    }
    let now = SimTime::ZERO + Duration::from_days(90);
    let (de, dq) = (
        exact.degradation_of(1, now),
        quantized.degradation_of(1, now),
    );
    assert!(de > 0.0);
    assert!(
        (de - dq).abs() / de < 0.01,
        "quantization cost too high: {de} vs {dq}"
    );
}

#[test]
fn weight_byte_survives_the_ack() {
    // The gateway's normalized degradation rides one byte in the ACK's
    // FOpts; the node must recover w_u within quantization error.
    for w in [0.0, 0.123, 0.5, 0.997, 1.0] {
        let byte = quantize_weight(w);
        let ack = WireFrame {
            mtype: MType::UnconfirmedDown,
            device: DeviceAddr(3),
            ack: true,
            fcnt: 7,
            fopts: vec![byte],
            fport: 0,
            payload: Vec::new(),
        };
        let received = decode(&encode(&ack)).expect("clean channel");
        let recovered = dequantize_weight(received.fopts[0]);
        assert!(
            (recovered - w).abs() <= 0.5 / 255.0 + 1e-12,
            "w {w} -> {recovered}"
        );
    }
}
