//! # lpwan-blam
//!
//! A battery lifespan-aware MAC protocol for LPWAN (LoRa), with the full
//! simulation stack needed to study it: a reproduction of *"A Battery
//! Lifespan-Aware Protocol for LPWAN"* (ICDCS 2024).
//!
//! This umbrella crate re-exports the workspace:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`units`] | `blam-units` | time, energy, power, RF quantities |
//! | [`phy`] | `blam-lora-phy` | LoRa airtime, energy, link budget, channel plans |
//! | [`battery`] | `blam-battery` | rainflow counting, degradation model, SoC, switch |
//! | [`harvest`] | `blam-energy-harvest` | solar model, traces, forecasters, EWMA |
//! | [`des`] | `blam-des` | deterministic discrete-event kernel |
//! | [`lorawan`] | `blam-lorawan` | Class-A MAC, gateway radio, network server |
//! | [`protocol`] | `blam` | **the contribution**: DIF, utility, Algorithm 1, dissemination, clairvoyant reference |
//! | [`netsim`] | `blam-netsim` | whole-network battery-lifespan simulator |
//! | [`telemetry`] | `blam-telemetry` | zero-overhead tracing, streaming metrics, flight recorder, replay validation |
//!
//! # Quickstart
//!
//! Compare the battery lifespan-aware MAC against plain LoRaWAN on a
//! small network:
//!
//! ```no_run
//! use lpwan_blam::netsim::{config::Protocol, Scenario};
//! use lpwan_blam::units::Duration;
//!
//! for protocol in [Protocol::Lorawan, Protocol::h(0.5)] {
//!     let result = Scenario::large_scale(50, protocol, 42)
//!         .with_duration(Duration::from_days(30))
//!         .run();
//!     println!(
//!         "{:8} PRR {:5.1}%  mean degradation {:.4}",
//!         result.label,
//!         100.0 * result.network.prr,
//!         result.network.degradation.mean,
//!     );
//! }
//! ```
//!
//! See `examples/` for richer scenarios and `crates/bench` for the
//! binaries that regenerate every figure and table of the paper.

// `forbid(unsafe_code)` comes from `[workspace.lints]` in the root
// manifest; only the doc requirement stays crate-local.
#![warn(missing_docs)]

pub use blam as protocol;
pub use blam_battery as battery;
pub use blam_des as des;
pub use blam_energy_harvest as harvest;
pub use blam_lora_phy as phy;
pub use blam_lorawan as lorawan;
pub use blam_netsim as netsim;
pub use blam_telemetry as telemetry;
pub use blam_units as units;
